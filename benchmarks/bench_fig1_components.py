"""Figure 1 / sections 2.1-2.2: core components vs business information entities.

Paper artifact: the Person/Address ACCs with their US_-qualified ABIE
restrictions, and the two derived element sets the paper enumerates.
Measured: model construction + element-set derivation; the sets must equal
the paper's lists verbatim.
"""

from repro.catalog.figure1 import (
    PAPER_PERSON_SET,
    PAPER_US_PERSON_SET,
    build_figure1_model,
)


def test_fig1_build_and_enumerate(benchmark):
    """Build the Figure-1 model and derive both element sets."""

    def run():
        built = build_figure1_model()
        return built.person.component_set(), built.us_person.component_set()

    person_set, us_person_set = benchmark(run)
    assert person_set == PAPER_PERSON_SET
    assert us_person_set == PAPER_US_PERSON_SET


def test_fig1_restriction_drops_country(benchmark):
    """US_Address must miss the Country attribute (derivation by restriction)."""

    def run():
        built = build_figure1_model()
        return (
            [bcc.name for bcc in built.address.bccs],
            [bbie.name for bbie in built.us_address.bbies],
        )

    core_fields, restricted_fields = benchmark(run)
    assert "Country" in core_fields
    assert "Country" not in restricted_fields
    assert set(restricted_fields) < set(core_fields)


def test_fig1_based_on_traceability(benchmark, figure1):
    """Every business entity traces to its core component via basedOn."""

    def run():
        return {
            "abie": figure1.us_person.based_on.name,
            "asbie": figure1.us_person.asbie("US_Private").based_on.role,
        }

    links = benchmark(run)
    assert links == {"abie": "Person", "asbie": "Private"}
