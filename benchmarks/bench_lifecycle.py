"""Lifecycle benches: binding, reverse engineering, compatibility checking.

These measure the adoption-path features around the paper's core pipeline:
application data binding (dict <-> message), schema-set reverse engineering
(the paper's related-work direction) and version-compatibility checking.
"""

import pytest

from repro.binding import marshal, unmarshal
from repro.instances import InstanceGenerator
from repro.reverse import reverse_engineer
from repro.validation import validate_model
from repro.xsd.compat import check_compatibility
from repro.xsdgen import SchemaGenerator


@pytest.fixture(scope="module")
def order_pipeline(ecommerce):
    result = SchemaGenerator(ecommerce.model).generate(ecommerce.doc_library, root="PurchaseOrder")
    return result, result.schema_set()


_ORDER = {
    "Identification": "PO-1",
    "IssueDate": "2007-04-15",
    "BuyerParty": {
        "Identification": "B-1", "Name": "Buyer",
        "PostalAddress": {"Street": "s", "CityName": "c"},
    },
    "SellerParty": {
        "Identification": "S-1", "Name": "Seller",
        "PostalAddress": {"Street": "s", "CityName": "c"},
    },
    "OrderedLineItem": [
        {"Identification": f"L-{i}", "Quantity": str(i + 1), "UnitPrice": "9.99"}
        for i in range(10)
    ],
}


def test_marshal_order(benchmark, order_pipeline):
    """Dict -> validated purchase-order document (10 line items)."""
    _, schema_set = order_pipeline
    document = benchmark(marshal, schema_set, "PurchaseOrder", _ORDER)
    assert len(document.element_children) >= 13


def test_unmarshal_order(benchmark, order_pipeline):
    """Document -> dict."""
    _, schema_set = order_pipeline
    document = marshal(schema_set, "PurchaseOrder", _ORDER)
    data = benchmark(unmarshal, schema_set, document)
    assert data == _ORDER


def test_reverse_engineer_easybiz(benchmark, easybiz):
    """Schema set -> validating core-components model."""
    result = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
    schema_set = result.schema_set()
    report = benchmark(reverse_engineer, schema_set)
    assert validate_model(report.model).ok
    assert report.root_elements == ["HoardingPermit"]


def test_reverse_and_regenerate(benchmark, easybiz):
    """Full round trip: schemas -> model -> schemas."""
    result = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
    schema_set = result.schema_set()

    def run():
        report = reverse_engineer(schema_set)
        doc_library = report.model.library_named(report.doc_library_names[0])
        return SchemaGenerator(report.model).generate(doc_library, root=report.root_elements[0])

    regenerated = benchmark(run)
    message = InstanceGenerator(schema_set).generate("HoardingPermit")
    from repro.xsd.validator import validate_instance

    assert validate_instance(regenerated.schema_set(), message) == []


def test_compatibility_check(benchmark, easybiz):
    """Version comparison of two full schema sets."""
    old = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit").schema_set()
    from repro.catalog.easybiz import build_easybiz_model

    evolved = build_easybiz_model()
    text = evolved.cdt_library.cdt("Text")
    evolved.model.acc("HoardingPermit").add_bcc("Remark", text, "0..1")
    evolved.hoarding_permit.add_bbie("Remark", text, "0..1")
    new = SchemaGenerator(evolved.model).generate(evolved.doc_library, root="HoardingPermit").schema_set()
    report = benchmark(check_compatibility, old, new)
    assert report.is_backward_compatible
