"""Figure 5: the XSD generator dialog.

Paper artifact: the generator workflow -- select a root element from the
DOCLibrary's candidates, toggle annotation, generate into a folder while
status messages stream back, and abort with an error message on an
erroneous model.
Measured: the dialog-equivalent operations; every behavioural contract of
the figure is asserted.
"""

import pytest

from repro.ccts.model import CctsModel
from repro.errors import GenerationError
from repro.xsdgen import GenerationOptions, SchemaGenerator


def test_fig5_root_candidates(benchmark, easybiz):
    """The root dropdown lists the DOCLibrary's ABIEs."""
    candidates = benchmark(lambda: [a.name for a in easybiz.doc_library.root_candidates()])
    assert candidates == ["HoardingPermit", "HoardingDetails"]


def test_fig5_generate_with_status_messages(benchmark, easybiz, tmp_path):
    """Generate Schema: schemas land in the chosen folder, status streams."""

    def run():
        options = GenerationOptions(target_directory=tmp_path / "out")
        generator = SchemaGenerator(easybiz.model, options)
        generator.generate(easybiz.doc_library, root="HoardingPermit")
        return generator.session.messages

    messages = benchmark(run)
    assert any("Selected root element 'HoardingPermit'" in m for m in messages)
    assert any(m.startswith("Generation finished") for m in messages)
    assert any(m.startswith("Wrote 6 schema file(s)") for m in messages)
    assert len(list((tmp_path / "out").rglob("*.xsd"))) == 6


def test_fig5_annotation_toggle(benchmark, easybiz):
    """The annotation checkbox switches CCTS documentation on and off."""

    def run():
        plain = SchemaGenerator(easybiz.model, GenerationOptions(annotated=False)).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        annotated = SchemaGenerator(easybiz.model, GenerationOptions(annotated=True)).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        return plain.root.to_string(), annotated.root.to_string()

    plain_text, annotated_text = benchmark(run)
    # Both declare xmlns:ccts (Figure 6 line 1); only one carries content.
    assert "ccts:AcronymCode" not in plain_text
    assert "ccts:AcronymCode" in annotated_text
    assert len(annotated_text) > len(plain_text)


def test_fig5_erroneous_model_aborts(benchmark):
    """'In case the UML model is erroneous, the generation aborts and the
    user is presented an error message.'"""

    def run():
        model = CctsModel("Broken")
        business = model.add_business_library("B", "urn:broken")
        bies = business.add_bie_library("L")
        bies.add_abie("Orphan")
        generator = SchemaGenerator(model)
        with pytest.raises(GenerationError):
            generator.generate(bies)
        return generator.session.messages

    messages = benchmark(run)
    assert any(message.startswith("ERROR:") for message in messages)
