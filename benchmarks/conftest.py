"""Shared fixtures for the benchmark harness.

Each ``bench_figN_*`` file regenerates one artifact of the paper and
asserts the facts visible in that figure; pytest-benchmark measures the
regeneration.  Session-scoped model fixtures keep setup out of the timed
regions (the timed callables rebuild whatever they measure).

Set ``REPRO_BENCH_OBS=/path/to/report.json`` to run the whole session
under tracing and export the span trees plus the metrics snapshot next to
the bench numbers (see docs/observability.md).  Pass
``--profile-out FILE`` (and optionally ``--profile-format
table|json|collapsed``) to additionally fold every traced span into one
call-tree profile written at session end -- collapsed output feeds
straight into ``flamegraph.pl``.  Tracing stays off without either
switch so timings remain uninstrumented; profiled timings are for
shape-reading, not for comparing against untraced baselines.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.catalog.easybiz import build_easybiz_model
from repro.catalog.ecommerce import build_ecommerce_model
from repro.catalog.figure1 import build_figure1_model


def pytest_addoption(parser):
    """Benchmark profiling switches (tracing implied when either is used)."""
    group = parser.getgroup("repro profiling")
    group.addoption(
        "--profile-out",
        default=None,
        metavar="FILE",
        help="trace the benchmark session and write a span-tree profile to FILE",
    )
    group.addoption(
        "--profile-format",
        default="collapsed",
        choices=["table", "json", "collapsed"],
        help="profile rendering for --profile-out (default: collapsed)",
    )


@pytest.fixture(scope="session", autouse=True)
def export_observability(request):
    """Export spans/metrics (REPRO_BENCH_OBS) and/or a profile (--profile-out)."""
    out = os.environ.get("REPRO_BENCH_OBS")
    profile_out = request.config.getoption("--profile-out")
    if not out and not profile_out:
        yield
        return
    import repro.obs as obs

    tracer = obs.configure(trace=True, ring_capacity=4096, reset_metrics=True)
    yield
    ring = tracer.ring_buffer()
    if out:
        payload = {
            "metrics": obs.get_metrics().snapshot(),
            "spans": [root.to_dict() for root in (ring.roots if ring is not None else [])],
        }
        Path(out).write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    if profile_out:
        from repro.obs.prof import profile_from_tracer

        profile = profile_from_tracer(tracer)
        Path(profile_out).write_text(
            profile.render(request.config.getoption("--profile-format"), top=40) + "\n",
            encoding="utf-8",
        )
    obs.disable()


@pytest.fixture(scope="session")
def easybiz():
    """One shared EasyBiz model (read-only in benchmarks)."""
    return build_easybiz_model()


@pytest.fixture(scope="session")
def figure1():
    """One shared Figure-1 model (read-only in benchmarks)."""
    return build_figure1_model()


@pytest.fixture(scope="session")
def ecommerce():
    """One shared purchase-order model (read-only in benchmarks)."""
    return build_ecommerce_model()
