"""Shared fixtures for the benchmark harness.

Each ``bench_figN_*`` file regenerates one artifact of the paper and
asserts the facts visible in that figure; pytest-benchmark measures the
regeneration.  Session-scoped model fixtures keep setup out of the timed
regions (the timed callables rebuild whatever they measure).
"""

from __future__ import annotations

import pytest

from repro.catalog.easybiz import build_easybiz_model
from repro.catalog.ecommerce import build_ecommerce_model
from repro.catalog.figure1 import build_figure1_model


@pytest.fixture(scope="session")
def easybiz():
    """One shared EasyBiz model (read-only in benchmarks)."""
    return build_easybiz_model()


@pytest.fixture(scope="session")
def figure1():
    """One shared Figure-1 model (read-only in benchmarks)."""
    return build_figure1_model()


@pytest.fixture(scope="session")
def ecommerce():
    """One shared purchase-order model (read-only in benchmarks)."""
    return build_ecommerce_model()
