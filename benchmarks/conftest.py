"""Shared fixtures for the benchmark harness.

Each ``bench_figN_*`` file regenerates one artifact of the paper and
asserts the facts visible in that figure; pytest-benchmark measures the
regeneration.  Session-scoped model fixtures keep setup out of the timed
regions (the timed callables rebuild whatever they measure).

Set ``REPRO_BENCH_OBS=/path/to/report.json`` to run the whole session
under tracing and export the span trees plus the metrics snapshot next to
the bench numbers (see docs/observability.md).  Tracing stays off
otherwise so timings remain uninstrumented.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.catalog.easybiz import build_easybiz_model
from repro.catalog.ecommerce import build_ecommerce_model
from repro.catalog.figure1 import build_figure1_model


@pytest.fixture(scope="session", autouse=True)
def export_observability():
    """Export span timings and metrics when REPRO_BENCH_OBS names a file."""
    out = os.environ.get("REPRO_BENCH_OBS")
    if not out:
        yield
        return
    import repro.obs as obs

    tracer = obs.configure(trace=True, ring_capacity=4096, reset_metrics=True)
    yield
    ring = tracer.ring_buffer()
    payload = {
        "metrics": obs.get_metrics().snapshot(),
        "spans": [root.to_dict() for root in (ring.roots if ring is not None else [])],
    }
    Path(out).write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    obs.disable()


@pytest.fixture(scope="session")
def easybiz():
    """One shared EasyBiz model (read-only in benchmarks)."""
    return build_easybiz_model()


@pytest.fixture(scope="session")
def figure1():
    """One shared Figure-1 model (read-only in benchmarks)."""
    return build_figure1_model()


@pytest.fixture(scope="session")
def ecommerce():
    """One shared purchase-order model (read-only in benchmarks)."""
    return build_ecommerce_model()
