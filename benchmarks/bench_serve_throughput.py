"""Serve-daemon throughput: concurrent validate requests against warm caches.

The ISSUE-8 serving claims, measured against an in-process
:class:`~repro.serve.UpccServer`:

* sustained request throughput and tail latency for ``/validate`` over
  the 200-document corpus (the ``serve_validate`` trajectory arm),
* >=200 *concurrent* validate requests with a >90% warm-cache hit rate
  after warmup,
* graceful drain under load with zero dropped responses,
* request-level output byte-identical to the batch pipeline.

The HTTP hop, queue admission and worker handoff are all inside the
timed region -- this measures the daemon, not the pipeline (the pipeline
arms live in ``bench_instance_throughput.py``).
"""

import json
import threading
import time

import pytest

from repro.instances import InstanceGenerator, ValidationPipeline, add_unknown_child
from repro.obs.metrics import get_registry
from repro.serve import ServeApp, ServeConfig, UpccServer
from repro.serve.loadgen import request_json, run_load
from repro.xmlutil.writer import XmlWriter
from repro.xsdgen import GenerationOptions, SchemaGenerator

CORPUS_SIZE = 200
ROOT_NAME = "HoardingPermit"
DOCS_PER_REQUEST = 4


@pytest.fixture(scope="module")
def corpus(easybiz):
    """The schema set plus 200 in-memory messages (a few invalid)."""
    result = SchemaGenerator(easybiz.model, GenerationOptions()).generate(
        easybiz.doc_library, root=ROOT_NAME
    )
    schema_set = result.schema_set()
    writer = XmlWriter()
    documents = []
    for index in range(CORPUS_SIZE):
        generator = InstanceGenerator(
            schema_set,
            fill_optional=True,
            repeat_unbounded=3 + index % 3,
        )
        document = generator.generate(ROOT_NAME)
        if index % 40 == 39:
            add_unknown_child(document)
        documents.append((f"doc{index:04d}.xml", writer.to_string(document)))
    return result, schema_set, documents


@pytest.fixture(scope="module")
def server(corpus):
    """One warm daemon per module; schemas registered via the wire."""
    result, _schema_set, _documents = corpus
    config = ServeConfig(workers=8, queue_size=256, timeout_s=60, drain_timeout_s=30)
    with UpccServer(ServeApp(), config) as running:
        schemas = {
            f"{item.namespace.folder}/{item.namespace.file_name}": item.to_string()
            for item in result.schemas.values()
        }
        status, registered = request_json(
            running.url,
            "/validate",
            {"schemas": list(schemas.values()), "documents": ["<warmup/>"]},
        )
        assert status == 200, registered
        running.schema_set_id = registered["schema_set"]
        yield running


def _payload(server, documents, offset=0, count=DOCS_PER_REQUEST):
    picked = [documents[(offset + i) % len(documents)] for i in range(count)]
    return {
        "schema_set": server.schema_set_id,
        "documents": [{"name": name, "xml": text} for name, text in picked],
    }


def test_serve_validate_throughput(benchmark, server, corpus):
    """The trajectory arm: 100 requests x 4 docs from 16 client threads."""
    _result, _schema_set, documents = corpus
    payload = _payload(server, documents)

    def fire():
        outcome = run_load(
            server.url, "/validate", payload, requests=100, concurrency=16
        )
        assert outcome.ok == 100, outcome.to_json()
        assert outcome.dropped == 0
        return outcome

    outcome = benchmark(fire)
    assert outcome.percentile(99) >= outcome.percentile(50)


def test_200_concurrent_validates_hit_warm_cache(server, corpus):
    """>=200 in-flight requests; the compiled-plan cache absorbs them all."""
    _result, _schema_set, documents = corpus
    payload = _payload(server, documents)
    registry = get_registry()
    # Warmup: the schema set is registered and compiled; these requests
    # must all be plan-cache hits already.
    warmup = run_load(server.url, "/validate", payload, requests=16, concurrency=8)
    assert warmup.ok == 16
    hits_before = registry.counter("instances.compile_hits").value
    misses_before = registry.counter("instances.compile_misses").value
    outcome = run_load(
        server.url, "/validate", payload, requests=200, concurrency=200,
        timeout_s=120,
    )
    assert outcome.ok == 200, outcome.to_json()
    assert outcome.dropped == 0
    assert outcome.failed == 0
    hits = registry.counter("instances.compile_hits").value - hits_before
    misses = registry.counter("instances.compile_misses").value - misses_before
    assert hits > 0
    hit_rate = hits / (hits + misses)
    assert hit_rate > 0.90, f"warm hit rate {hit_rate:.2%} (hits={hits} misses={misses})"


def test_served_report_byte_identical_to_pipeline(server, corpus):
    """One request over the whole corpus == the batch pipeline's report."""
    _result, schema_set, documents = corpus
    status, served = request_json(
        server.url,
        "/validate",
        {
            "schema_set": server.schema_set_id,
            "documents": [{"name": name, "xml": text} for name, text in documents],
        },
    )
    assert status == 200
    served.pop("schema_set")
    pipeline = ValidationPipeline(schema_set, engine="compiled")
    local = pipeline.run_strings(documents).to_json()
    assert json.dumps(served, sort_keys=True) == json.dumps(local, sort_keys=True)
    assert served["docs_total"] == CORPUS_SIZE
    assert served["docs_invalid"] == CORPUS_SIZE // 40


def test_metric_increments_do_not_contend_across_instruments(benchmark):
    """Per-instrument locks: 8 threads on 8 *different* counters.

    Before ISSUE 9 every instrument shared the registry-wide lock, so
    increments on unrelated counters from different serve workers
    serialized on one mutex.  With per-instrument locks this workload has
    no shared state at all; the benchmark pins that property (and the
    perf gate would flag a regression back to a global lock, which
    roughly doubles this timing on a multi-core box).
    """
    from repro.obs.metrics import MetricsRegistry

    threads_n, increments = 8, 20_000
    registry = MetricsRegistry()
    counters = [
        registry.counter("bench.contention", worker=index)
        for index in range(threads_n)
    ]

    def hammer():
        barrier = threading.Barrier(threads_n)

        def work(instrument):
            barrier.wait()
            for _ in range(increments):
                instrument.inc()

        workers = [
            threading.Thread(target=work, args=(instrument,))
            for instrument in counters
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()

    benchmark(hammer)
    for instrument in counters:
        assert instrument.value % increments == 0
        assert instrument.value >= increments


def test_metrics_scrape_under_load_is_consistent(server, corpus):
    """A /metrics scrape during a barrage parses and is internally sane."""
    from repro.obs.export import parse_prometheus_text
    from repro.serve.loadgen import request_text

    _result, _schema_set, documents = corpus
    payload = _payload(server, documents)
    scraped: list[str] = []

    def scrape_mid_load():
        time.sleep(0.05)
        status, text = request_text(server.url, "/metrics")
        assert status == 200
        scraped.append(text)

    scraper = threading.Thread(target=scrape_mid_load)
    scraper.start()
    outcome = run_load(server.url, "/validate", payload, requests=50, concurrency=8)
    scraper.join()
    assert outcome.ok == 50
    families = parse_prometheus_text(scraped[0])  # raises on malformed payload
    buckets = families["serve_request_ms"].buckets()
    counts = [count for _, count in buckets]
    assert counts == sorted(counts), "bucket series must stay cumulative mid-load"


def test_graceful_drain_under_load_zero_dropped(corpus):
    """Drain mid-barrage: every connected client gets a real response."""
    result, _schema_set, documents = corpus
    config = ServeConfig(workers=4, queue_size=128, timeout_s=30, drain_timeout_s=30)
    server = UpccServer(ServeApp(), config).start()
    schemas = [item.to_string() for item in result.schemas.values()]
    status, registered = request_json(
        server.url, "/validate", {"schemas": schemas, "documents": ["<warmup/>"]}
    )
    assert status == 200
    payload = {
        "schema_set": registered["schema_set"],
        "documents": [{"name": name, "xml": text} for name, text in documents[:4]],
    }
    body = json.dumps(payload).encode("utf-8")
    clients = 64
    # Every client connects BEFORE the drain starts (the barrier includes
    # the main thread): the zero-drop contract covers connected clients;
    # a connect() attempted after the listener closes is an ordinary
    # refusal, not a drop.
    barrier = threading.Barrier(clients + 1)
    outcomes = []
    lock = threading.Lock()

    def fire():
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port, timeout=60)
        try:
            connection.connect()
            barrier.wait()
            connection.request(
                "POST", "/validate", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            response.read()
            status = response.status
        except OSError:
            status = -1  # dropped: connection died without a response
        finally:
            connection.close()
        with lock:
            outcomes.append(status)

    threads = [threading.Thread(target=fire) for _ in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    time.sleep(0.1)  # let the in-flight requests reach the queue
    assert server.drain() is True
    for thread in threads:
        thread.join()
    assert len(outcomes) == clients
    assert -1 not in outcomes, "a connected client was dropped during drain"
    assert set(outcomes) <= {200, 503}
    assert outcomes.count(200) >= clients // 2  # admitted work completed, not shed
