"""Figure 7: compositions vs aggregations -- defining the ASBIE globally.

Paper artifact: the CommonAggregates BIELibrary schema fragment where the
shared-aggregation ASBIE ``AssignedAddress`` is declared as a global
element and referenced, while the composition ``PersonalSignature`` is
typed inline.
Measured: BIELibrary generation; the fragment's structure is asserted, and
the DESIGN.md ablation (always-inline) is timed alongside.
"""

from repro.xmlutil.qname import QName
from repro.xsdgen import GenerationOptions, SchemaGenerator

COMMON_NS = "urn:au:gov:vic:easybiz:data:draft:CommonAggregates"


def test_fig7_generate_bie_library(benchmark, easybiz):
    """Generate from the BIELibrary and check the Figure-7 fragment."""

    def run():
        return SchemaGenerator(easybiz.model).generate("CommonAggregates")

    result = benchmark(run)
    schema = result.root.schema

    # Line 21: global element for the aggregation-connected ASBIE.
    shared = schema.global_element("AssignedAddress")
    assert shared.type == QName(COMMON_NS, "AddressType")

    # Lines 22-28: Person_IdentificationType.
    particles = schema.complex_type("Person_IdentificationType").particle.particles
    assert particles[0].name == "Designation"
    assert particles[1].name == "PersonalSignature"          # composition: inline
    assert particles[1].type == QName(COMMON_NS, "SignatureType")
    assert particles[2].is_ref                               # aggregation: ref
    assert particles[2].ref == QName(COMMON_NS, "AssignedAddress")


def test_fig7_rendered_fragment(benchmark, easybiz):
    """The rendered lines 21-28 of Figure 7."""
    result = SchemaGenerator(easybiz.model).generate("CommonAggregates")
    text = benchmark(result.root.to_string)
    assert '<xsd:element name="AssignedAddress" type="commonAggregates:AddressType"/>' in text
    assert '<xsd:complexType name="Person_IdentificationType">' in text
    assert '<xsd:element name="PersonalSignature" type="commonAggregates:SignatureType"/>' in text
    assert '<xsd:element ref="commonAggregates:AssignedAddress"/>' in text


def test_fig7_ablation_inline_aggregations(benchmark, easybiz):
    """Ablation arm: inline every ASBIE instead of global element + ref."""

    def run():
        options = GenerationOptions(shared_aggregation_as_ref=False)
        return SchemaGenerator(easybiz.model, options).generate("CommonAggregates")

    result = benchmark(run)
    schema = result.root.schema
    assert schema.global_elements == []
    particles = schema.complex_type("Person_IdentificationType").particle.particles
    assert particles[2].name == "AssignedAddress" and not particles[2].is_ref
