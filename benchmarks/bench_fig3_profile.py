"""Figure 3: the UML profile for core components.

Paper artifact: the stereotype inventory -- 8 library stereotypes in the
Management package, 6 in DataTypes, 9 in Common.
Measured: profile construction plus a profile-conformance sweep over the
EasyBiz model; the inventory must match Figure 3 name for name.
"""

from repro.profile import build_upcc_profile


def test_fig3_profile_inventory(benchmark):
    """Build the profile; the three packages hold exactly the Figure-3 names."""
    profile = benchmark(build_upcc_profile)
    assert sorted(profile.stereotype_names("Management")) == [
        "BIELibrary", "BusinessLibrary", "CCLibrary", "CDTLibrary",
        "DOCLibrary", "ENUMLibrary", "PRIMLibrary", "QDTLibrary",
    ]
    assert sorted(profile.stereotype_names("DataTypes")) == [
        "CDT", "CON", "ENUM", "PRIM", "QDT", "SUP",
    ]
    assert sorted(profile.stereotype_names("Common")) == [
        "ABIE", "ACC", "ASBIE", "ASCC", "BBIE", "BCC", "BIE", "CC", "basedOn",
    ]
    assert len(profile.stereotype_names()) == 8 + 6 + 9


def test_fig3_conformance_sweep(benchmark, easybiz):
    """Check every stereotype application in the model against the profile."""
    problems = benchmark(easybiz.model.profile_problems)
    assert problems == []


def test_fig3_application_rejects_misuse(benchmark):
    """The profile rejects a BCC applied to a class (metaclass mismatch)."""
    from repro.profile import UPCC
    from repro.uml.classifier import Class

    def run():
        cls = Class("Wrong")
        cls.apply_stereotype("BCC")
        return UPCC.check_element(cls)

    problems = benchmark(run)
    assert problems and "Property" in problems[0]
