"""Interchange: XMI registry format vs the spreadsheet baseline.

Paper claim (section 1): harmonization "is based on spread sheets" and the
UML-profile effort exists "to use XMI for registering and exchanging core
components".
Measured: round-trip time and *fidelity* of both formats over the Figure-4
model -- XMI must be lossless, the spreadsheet demonstrably lossy.
"""

from repro.ccts.model import CctsModel
from repro.interchange import diff_models, export_csv, import_csv
from repro.registry import Registry
from repro.xmi import read_xmi, write_xmi


def test_xmi_round_trip(benchmark, easybiz):
    """XMI write -> read; zero structural differences."""

    def run():
        reloaded = CctsModel(model=read_xmi(write_xmi(easybiz.model.model)))
        return diff_models(easybiz.model, reloaded)

    assert benchmark(run) == []


def test_spreadsheet_round_trip(benchmark, easybiz):
    """CSV export -> import; the losses the paper criticizes show up."""

    def run():
        imported = import_csv(export_csv(easybiz.model))
        return diff_models(easybiz.model, imported)

    differences = benchmark(run)
    assert differences, "the spreadsheet baseline must be lossy"
    assert any("tagged values differ" in d for d in differences)


def test_xmi_write_throughput(benchmark, easybiz):
    """Serialization cost of the registry format."""
    text = benchmark(write_xmi, easybiz.model.model)
    assert text.startswith("<?xml")


def test_xmi_read_throughput(benchmark, easybiz):
    """Deserialization cost of the registry format."""
    text = write_xmi(easybiz.model.model)
    model = benchmark(read_xmi, text)
    assert model.name == "EasyBiz"


def test_registry_store_and_search(benchmark, easybiz, tmp_path):
    """Registry workflow: store the model, then answer a DEN query."""

    def run():
        registry = Registry(tmp_path / "reg")
        registry.store("easybiz", easybiz.model, overwrite=True)
        return registry.search("Hoarding Permit")

    hits = benchmark(run)
    assert hits and all("Hoarding Permit" in den for _, den in hits)
