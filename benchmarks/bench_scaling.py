"""Scaling: "Due to the huge amount of core components ... a manual
transformation to a schema is unmanageable."  (paper, section 4)

Measured: generation and validation cost as the model grows -- the
automated pipeline stays near-linear in model size, which is the
quantitative backing for the paper's automation argument.
"""

import pytest

from repro.catalog.primitives import add_standard_prim_library
from repro.ccts.derivation import derive_abie
from repro.ccts.model import CctsModel
from repro.instances import InstanceGenerator
from repro.validation import validate_model
from repro.xsd.validator import validate_instance
from repro.xsdgen import SchemaGenerator


def build_synthetic_model(entity_count: int) -> tuple[CctsModel, object, str]:
    """A document over ``entity_count`` aggregates, each with 6 fields."""
    model = CctsModel(f"Synthetic{entity_count}")
    business = model.add_business_library("S", "urn:synthetic")
    prims = add_standard_prim_library(business)
    string = prims.primitive("String").element
    cdts = business.add_cdt_library("Cdts")
    text = cdts.add_cdt("Text")
    text.set_content(string)
    text.add_supplementary("LanguageIdentifier", string, "0..1")
    ccs = business.add_cc_library("Ccs")
    bies = business.add_bie_library("Bies")
    doc = business.add_doc_library("Doc")

    root_acc = ccs.add_acc("Root")
    root_acc.add_bcc("Title", text, "0..1")
    abies = []
    for index in range(entity_count):
        acc = ccs.add_acc(f"Entity{index}")
        for field in range(6):
            acc.add_bcc(f"Field{field}", text, "0..1")
        root_acc.add_ascc(f"Item{index}", acc, "0..*")
        derivation = derive_abie(bies, acc)
        derivation.include_all()
        abies.append((f"Item{index}", derivation.abie))

    root = derive_abie(doc, root_acc, name="Document")
    root.include("Title", "0..1")
    for role, abie in abies:
        root.connect(role, abie, "0..*")
    return model, doc, "Document"


@pytest.mark.parametrize("entity_count", [5, 20, 80])
def test_scaling_generation(benchmark, entity_count):
    """Schema generation time vs number of aggregates."""
    model, doc, root = build_synthetic_model(entity_count)

    def run():
        return SchemaGenerator(model).generate(doc, root=root)

    result = benchmark(run)
    bie_schema = next(g for g in result.schemas.values() if g.library.name == "Bies")
    assert len(bie_schema.schema.complex_types) == entity_count


@pytest.mark.parametrize("entity_count", [5, 20, 80])
def test_scaling_model_validation(benchmark, entity_count):
    """Rule-engine time vs model size."""
    model, _, _ = build_synthetic_model(entity_count)
    report = benchmark(validate_model, model)
    assert report.ok


@pytest.mark.parametrize("entity_count", [5, 20])
def test_scaling_instance_validation(benchmark, entity_count):
    """Message validation time vs document width."""
    model, doc, root = build_synthetic_model(entity_count)
    result = SchemaGenerator(model).generate(doc, root=root)
    schema_set = result.schema_set()
    message = InstanceGenerator(schema_set, repeat_unbounded=3).generate(root)
    problems = benchmark(validate_instance, schema_set, message)
    assert problems == []


def test_scaling_build_cost(benchmark):
    """Model-construction overhead for the largest synthetic size."""
    model, _, _ = benchmark(build_synthetic_model, 80)
    assert len(model.abies()) == 81
