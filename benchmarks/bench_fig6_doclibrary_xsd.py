"""Figure 6: the XSD schema generated for the HoardingPermit DOCLibrary.

Paper artifact: the complete schema document -- namespace declarations
(doc/cdt1/qdt1/commonAggregates/bie2), four imports in order, the
HoardingPermitType sequence (4 BBIE elements then 4 compound-named ASBIE
elements with the figure's multiplicities) and the global root element.
Measured: the full DOCLibrary generation run (the paper's headline
transformation); every line-level fact of Figure 6 is asserted.
"""

from repro.xmlutil.qname import QName
from repro.xsdgen import SchemaGenerator

DOC_NS = "urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit"
CDT_NS = "urn:au:gov:vic:easybiz:types:draft:coredatatypes"
QDT_NS = "urn:au:gov:vic:easybiz:types:draft:CommonDataTypes"
COMMON_NS = "urn:au:gov:vic:easybiz:data:draft:CommonAggregates"
LOCAL_LAW_NS = "urn:au:gov:vic:easybiz:data:draft:LocalLawAggregates"


def _generate(easybiz):
    return SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")


def test_fig6_generate_doc_schema(benchmark, easybiz):
    """The headline generation run: DOCLibrary + transitive closure."""
    result = benchmark(_generate, easybiz)
    schema = result.root.schema

    # Line 1: target namespace and prefix bindings.
    assert schema.target_namespace == DOC_NS
    assert schema.prefixes["doc"] == DOC_NS
    assert schema.prefixes["commonAggregates"] == COMMON_NS
    assert schema.prefixes["bie2"] == LOCAL_LAW_NS
    assert schema.prefixes["cdt1"] == CDT_NS
    assert schema.prefixes["qdt1"] == QDT_NS

    # Lines 2-5: the four imports, in order.
    assert [i.namespace for i in schema.imports] == [CDT_NS, QDT_NS, COMMON_NS, LOCAL_LAW_NS]

    # Lines 6-16: HoardingPermitType, BBIEs first, then compound ASBIEs.
    particles = schema.complex_type("HoardingPermitType").particle.particles
    assert [p.name for p in particles] == [
        "ClosureReason", "IsClosedFootpath", "IsClosedRoad", "SafetyPrecaution",
        "IncludedAttachment", "CurrentApplication", "IncludedRegistration",
        "BillingPerson_Identification",
    ]
    by_name = {p.name: p for p in particles}
    assert by_name["IncludedAttachment"].max_occurs is None          # maxOccurs="unbounded"
    assert by_name["IncludedAttachment"].min_occurs == 0
    assert by_name["IncludedRegistration"].min_occurs == 1           # no minOccurs attr
    assert by_name["BillingPerson_Identification"].type == QName(COMMON_NS, "Person_IdentificationType")

    # Line 18: the root element.
    root = schema.global_element("HoardingPermit")
    assert root.type == QName(DOC_NS, "HoardingPermitType")


def test_fig6_rendered_lines(benchmark, easybiz):
    """Spot-check the rendered text against Figure 6's literal lines."""
    result = _generate(easybiz)
    text = benchmark(result.root.to_string)
    for expected in (
        'targetNamespace="urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit"',
        '<xsd:element minOccurs="0" name="ClosureReason" type="cdt1:TextType"/>',
        '<xsd:element minOccurs="0" name="SafetyPrecaution" type="cdt1:TextType"/>',
        '<xsd:element minOccurs="0" maxOccurs="unbounded" name="IncludedAttachment" '
        'type="commonAggregates:AttachmentType"/>',
        '<xsd:element minOccurs="0" name="CurrentApplication" type="commonAggregates:ApplicationType"/>',
        '<xsd:element name="IncludedRegistration" type="bie2:RegistrationType"/>',
        '<xsd:element minOccurs="0" name="BillingPerson_Identification" '
        'type="commonAggregates:Person_IdentificationType"/>',
        '<xsd:element name="HoardingPermit" type="doc:HoardingPermitType"/>',
    ):
        assert expected in text, expected


def test_fig6_file_layout(benchmark, easybiz, tmp_path):
    """schemaLocations match the paper's folder/file naming."""
    from repro.xsdgen import GenerationOptions

    def run():
        options = GenerationOptions(target_directory=tmp_path / "schemas")
        return SchemaGenerator(easybiz.model, options).generate(
            easybiz.doc_library, root="HoardingPermit"
        )

    result = benchmark(run)
    locations = {i.schema_location for i in result.root.schema.imports}
    assert "../urn_au_gov_vic_easybiz_/types_draft_coredatatypes_1.0.xsd" in locations
    assert "../urn_au_gov_vic_easybiz_/data_draft_CommonAggregates_0.1.xsd" in locations
    assert (tmp_path / "schemas" / "urn_au_gov_vic_easybiz_" /
            "data_draft_EB005-HoardingPermit_0.4.xsd").exists()
