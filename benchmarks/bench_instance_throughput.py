"""Instance-validation throughput: corpus in, reports out, engines compared.

Paper claim: the generated schemas "are used to validate XML messages
exchanged during a business process" -- a serving workload, not a one-shot.
Measured: batch validation of a 200-document corpus through the
:class:`~repro.instances.ValidationPipeline` in its three arms
(interpreted serial, compiled serial, compiled with a 4-thread pool),
plus the contract that makes the compiled engine deployable: identical
reports across engines and job counts, and >=3x throughput over the
uncompiled serial path.
"""

import json

import pytest

from repro.instances import InstanceGenerator, ValidationPipeline, add_unknown_child
from repro.xmlutil.writer import XmlWriter
from repro.xsdgen import GenerationOptions, SchemaGenerator

CORPUS_SIZE = 200
ROOT_NAME = "HoardingPermit"


@pytest.fixture(scope="module")
def corpus(easybiz, tmp_path_factory):
    """200 on-disk messages (valid mix plus a few invalid) and their schemas."""
    result = SchemaGenerator(easybiz.model, GenerationOptions()).generate(
        easybiz.doc_library, root=ROOT_NAME
    )
    schema_set = result.schema_set()
    corpus_dir = tmp_path_factory.mktemp("instance_corpus")
    writer = XmlWriter()
    for index in range(CORPUS_SIZE):
        generator = InstanceGenerator(
            schema_set,
            fill_optional=True,
            repeat_unbounded=3 + index % 3,
        )
        document = generator.generate(ROOT_NAME)
        if index % 40 == 39:
            add_unknown_child(document)
        (corpus_dir / f"doc{index:04d}.xml").write_text(
            writer.to_string(document), encoding="utf-8"
        )
    return schema_set, corpus_dir


def _canonical(report) -> str:
    """The report as the bytes a --report json run would emit."""
    return json.dumps(report.to_json(), sort_keys=True)


def test_interpreted_serial(benchmark, corpus):
    """Baseline arm: the uncompiled validate_instance path, one thread."""
    schema_set, corpus_dir = corpus
    pipeline = ValidationPipeline(schema_set, engine="interpreted", jobs=1)
    report = benchmark(pipeline.run, corpus_dir)
    assert report.docs_total == CORPUS_SIZE


def test_compiled_serial(benchmark, corpus):
    """The compiled engine, one thread: plan-walking instead of graph-walking."""
    schema_set, corpus_dir = corpus
    pipeline = ValidationPipeline(schema_set, engine="compiled", jobs=1)
    report = benchmark(pipeline.run, corpus_dir)
    assert report.docs_total == CORPUS_SIZE


def test_compiled_parallel_jobs4(benchmark, corpus):
    """The compiled engine fanned out over 4 worker threads."""
    schema_set, corpus_dir = corpus
    pipeline = ValidationPipeline(schema_set, engine="compiled", jobs=4)
    report = benchmark(pipeline.run, corpus_dir)
    assert report.docs_total == CORPUS_SIZE


def test_compiled_parallel_beats_uncompiled_serial_3x(corpus):
    """The ISSUE-7 acceptance bar, asserted outside pytest-benchmark.

    compiled+parallel must be >=3x faster than the uncompiled serial
    path on the 200-document corpus, with byte-identical reports across
    engines and job counts.  Best-of-N timing on both sides keeps the
    comparison about the engines, not about scheduler noise.
    """
    import time

    schema_set, corpus_dir = corpus
    interpreted = ValidationPipeline(schema_set, engine="interpreted", jobs=1)
    compiled_parallel = ValidationPipeline(schema_set, engine="compiled", jobs=4)

    def best_of(pipeline, repeats=3):
        best = None
        report = None
        for _ in range(repeats):
            start = time.perf_counter()
            report = pipeline.run(corpus_dir)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        return best, report

    interpreted_s, interpreted_report = best_of(interpreted)
    parallel_s, parallel_report = best_of(compiled_parallel)
    assert _canonical(parallel_report) == _canonical(interpreted_report)
    assert parallel_s * 3 <= interpreted_s, (
        f"compiled+parallel not >=3x faster: interpreted={interpreted_s * 1e3:.1f}ms "
        f"compiled_jobs4={parallel_s * 1e3:.1f}ms "
        f"({interpreted_s / parallel_s:.2f}x)"
    )


def test_reports_identical_across_engines_and_jobs(corpus):
    """Every engine x jobs combination serializes to the same report bytes."""
    schema_set, corpus_dir = corpus
    reports = {
        (engine, jobs): ValidationPipeline(
            schema_set, engine=engine, jobs=jobs
        ).run(corpus_dir)
        for engine in ("interpreted", "compiled")
        for jobs in (1, 4)
    }
    serialized = {_canonical(report) for report in reports.values()}
    assert len(serialized) == 1
    sample = next(iter(reports.values()))
    assert sample.docs_total == CORPUS_SIZE
    assert sample.docs_invalid == CORPUS_SIZE // 40
