"""Extension benches: the paper's future-work transfer syntaxes.

"the generation is not necessarily limited to XML schema and future
extensions could include the generation of RELAX NG or RDF schemas as
well" -- measured: grammar/ontology generation time plus RELAX NG
validation throughput compared with the XSD validator on the same message.
"""

import pytest

from repro.instances import InstanceGenerator, drop_required_child
from repro.rngen import RngValidator, compile_grammar, model_to_rdfs, result_to_rng
from repro.xsd.validator import validate_instance
from repro.xsdgen import SchemaGenerator


@pytest.fixture(scope="module")
def pipeline(easybiz):
    result = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
    schema_set = result.schema_set()
    return result, schema_set


def test_generate_relaxng_grammar(benchmark, pipeline):
    """XSD result -> one combined RELAX NG grammar."""
    result, _ = pipeline
    grammar = benchmark(result_to_rng, result, "HoardingPermit")
    assert grammar.tag == "grammar"
    assert grammar.find("start") is not None


def test_compile_relaxng_grammar(benchmark, pipeline):
    """Grammar XML -> derivative patterns."""
    result, _ = pipeline
    grammar_xml = result_to_rng(result, "HoardingPermit")
    grammar = benchmark(compile_grammar, grammar_xml)
    assert grammar.defines


def test_relaxng_validation_throughput(benchmark, pipeline):
    """Derivative-based validation of a hoarding-permit message."""
    result, schema_set = pipeline
    validator = RngValidator(compile_grammar(result_to_rng(result, "HoardingPermit")))
    message = InstanceGenerator(schema_set).generate("HoardingPermit")
    assert benchmark(validator.validate, message)


def test_xsd_validation_same_message(benchmark, pipeline):
    """The XSD validator on the identical message (comparison arm)."""
    _, schema_set = pipeline
    message = InstanceGenerator(schema_set).generate("HoardingPermit")
    assert benchmark(validate_instance, schema_set, message) == []


def test_relaxng_rejects_what_xsd_rejects(benchmark, pipeline):
    """Cross-engine agreement on an invalid message."""
    result, schema_set = pipeline
    validator = RngValidator(compile_grammar(result_to_rng(result, "HoardingPermit")))

    def run():
        message = InstanceGenerator(schema_set).generate("HoardingPermit")
        drop_required_child(message, "IncludedRegistration")
        return validator.validate(message), validate_instance(schema_set, message) == []

    rng_ok, xsd_ok = benchmark(run)
    assert rng_ok is False and xsd_ok is False


def test_generate_rdf_schema(benchmark, easybiz):
    """Model -> RDF Schema projection."""
    rdf = benchmark(model_to_rdfs, easybiz.model)
    classes = rdf.find_all("rdfs:Class")
    properties = rdf.find_all("rdf:Property")
    assert len(classes) >= 30 and len(properties) >= 40
