"""End to end: "The schemas are then used to validate XML messages."

Paper claim: the generated schemas validate business-document instances
exchanged during a business process.
Measured: the full round trip (generate schemas -> produce message ->
validate) plus validation throughput on valid and mutated messages for
both content-model engines.
"""

import pytest

from repro.instances import (
    InstanceGenerator,
    corrupt_enumeration_value,
    drop_required_child,
)
from repro.xsd.validator import validate_instance
from repro.xsdgen import SchemaGenerator


@pytest.fixture(scope="module")
def pipeline(easybiz):
    result = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
    schema_set = result.schema_set()
    generator = InstanceGenerator(schema_set)
    return schema_set, generator


def test_full_round_trip(benchmark, easybiz):
    """Model -> schemas -> message -> validation, all timed together."""

    def run():
        result = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
        schema_set = result.schema_set()
        message = InstanceGenerator(schema_set).generate("HoardingPermit")
        return validate_instance(schema_set, message)

    assert benchmark(run) == []


def test_validate_valid_message(benchmark, pipeline):
    """Validation throughput on a conformant hoarding-permit message."""
    schema_set, generator = pipeline
    message = generator.generate("HoardingPermit")
    problems = benchmark(validate_instance, schema_set, message)
    assert problems == []


def test_validate_rejects_missing_registration(benchmark, pipeline):
    """A message without the mandatory IncludedRegistration is rejected."""
    schema_set, generator = pipeline
    message = generator.generate("HoardingPermit")
    assert drop_required_child(message, "IncludedRegistration")
    problems = benchmark(validate_instance, schema_set, message)
    assert problems and "IncludedRegistration" in problems[0].message


def test_validate_rejects_bad_country_code(benchmark, pipeline):
    """A CountryName outside the CountryType_Code enumeration is rejected."""
    schema_set, generator = pipeline
    message = generator.generate("HoardingPermit")
    assert corrupt_enumeration_value(message, "CountryName")
    problems = benchmark(validate_instance, schema_set, message)
    assert any("enumerated" in p.message for p in problems)


def test_validate_with_backtracking_engine(benchmark, pipeline):
    """The reference engine validates the same message (slower is fine)."""
    schema_set, generator = pipeline
    message = generator.generate("HoardingPermit")
    problems = benchmark(lambda: validate_instance(schema_set, message, engine="backtracking"))
    assert problems == []


def test_message_parse_and_validate_from_text(benchmark, pipeline):
    """Wire-level: parse the serialized message, then validate."""
    schema_set, generator = pipeline
    text = generator.generate_string("HoardingPermit")
    problems = benchmark(validate_instance, schema_set, text)
    assert problems == []
