"""End to end: "The schemas are then used to validate XML messages."

Paper claim: the generated schemas validate business-document instances
exchanged during a business process.
Measured: the full round trip (generate schemas -> produce message ->
validate) plus validation throughput on valid and mutated messages for
both content-model engines.
"""

import time

import pytest

from repro.instances import (
    InstanceGenerator,
    corrupt_enumeration_value,
    drop_required_child,
)
from repro.xsd.validator import validate_instance
from repro.xsd.writer import schema_to_string
from repro.xsdgen import GenerationCache, GenerationOptions, SchemaGenerator


@pytest.fixture(scope="module")
def pipeline(easybiz):
    result = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
    schema_set = result.schema_set()
    generator = InstanceGenerator(schema_set)
    return schema_set, generator


def test_full_round_trip(benchmark, easybiz):
    """Model -> schemas -> message -> validation, all timed together."""

    def run():
        result = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
        schema_set = result.schema_set()
        message = InstanceGenerator(schema_set).generate("HoardingPermit")
        return validate_instance(schema_set, message)

    assert benchmark(run) == []


def test_warm_cache_regeneration(benchmark, easybiz):
    """Regeneration through a warm generation cache vs cold builds.

    Both arms skip pre-generation validation so the comparison isolates
    schema construction; the warm arm reuses a pre-warmed shared cache
    through fresh generator instances, the way a long-lived service or a
    second CLI invocation would.
    """
    cold_options = GenerationOptions(validate_first=False)
    cache = GenerationCache()
    warm_options = GenerationOptions(validate_first=False, use_cache=True)

    # Warm the cache once (a cold, miss-every-library run).
    SchemaGenerator(easybiz.model, warm_options, cache=cache).generate(
        easybiz.doc_library, root="HoardingPermit"
    )

    def cold():
        return SchemaGenerator(easybiz.model, cold_options).generate(
            easybiz.doc_library, root="HoardingPermit"
        )

    def warm():
        return SchemaGenerator(easybiz.model, warm_options, cache=cache).generate(
            easybiz.doc_library, root="HoardingPermit"
        )

    def best_of(fn, repeats=5):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    cold_s = best_of(cold)
    warm_s = best_of(warm)
    assert warm_s * 5 <= cold_s, (
        f"warm cache not >=5x faster: cold={cold_s * 1e3:.2f}ms warm={warm_s * 1e3:.2f}ms"
    )

    cold_schemas = {urn: schema_to_string(g.schema) for urn, g in cold().schemas.items()}
    warm_schemas = {urn: schema_to_string(g.schema) for urn, g in warm().schemas.items()}
    assert warm_schemas == cold_schemas

    benchmark(warm)


def test_parallel_generation_matches_serial(benchmark, easybiz):
    """--jobs 4 builds the library DAG concurrently, byte-identical output."""
    serial = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
    options = GenerationOptions(jobs=4)

    def parallel():
        return SchemaGenerator(easybiz.model, options).generate(
            easybiz.doc_library, root="HoardingPermit"
        )

    result = benchmark(parallel)
    serial_schemas = {urn: schema_to_string(g.schema) for urn, g in serial.schemas.items()}
    parallel_schemas = {urn: schema_to_string(g.schema) for urn, g in result.schemas.items()}
    assert parallel_schemas == serial_schemas


def test_validate_valid_message(benchmark, pipeline):
    """Validation throughput on a conformant hoarding-permit message."""
    schema_set, generator = pipeline
    message = generator.generate("HoardingPermit")
    problems = benchmark(validate_instance, schema_set, message)
    assert problems == []


def test_validate_rejects_missing_registration(benchmark, pipeline):
    """A message without the mandatory IncludedRegistration is rejected."""
    schema_set, generator = pipeline
    message = generator.generate("HoardingPermit")
    assert drop_required_child(message, "IncludedRegistration")
    problems = benchmark(validate_instance, schema_set, message)
    assert problems and "IncludedRegistration" in problems[0].message


def test_validate_rejects_bad_country_code(benchmark, pipeline):
    """A CountryName outside the CountryType_Code enumeration is rejected."""
    schema_set, generator = pipeline
    message = generator.generate("HoardingPermit")
    assert corrupt_enumeration_value(message, "CountryName")
    problems = benchmark(validate_instance, schema_set, message)
    assert any("enumerated" in p.message for p in problems)


def test_validate_with_backtracking_engine(benchmark, pipeline):
    """The reference engine validates the same message (slower is fine)."""
    schema_set, generator = pipeline
    message = generator.generate("HoardingPermit")
    problems = benchmark(lambda: validate_instance(schema_set, message, engine="backtracking"))
    assert problems == []


def test_message_parse_and_validate_from_text(benchmark, pipeline):
    """Wire-level: parse the serialized message, then validate."""
    schema_set, generator = pipeline
    text = generator.generate_string("HoardingPermit")
    problems = benchmark(validate_instance, schema_set, text)
    assert problems == []
