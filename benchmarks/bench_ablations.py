"""Ablation benches for the design choices DESIGN.md calls out.

* content-model matching: compiled NFA vs naive backtracking,
* annotated vs unannotated output (the Figure-5 toggle) -- size and time,
* import-closure memoization vs per-library regeneration.
"""

import pytest

from repro.instances import InstanceGenerator
from repro.xmlutil.qname import QName
from repro.xsd.components import ElementDecl, SequenceGroup
from repro.xsd.content_model import CompiledModel, match_backtracking
from repro.xsd.validator import validate_instance
from repro.xsdgen import GenerationOptions, SchemaGenerator

NS = "urn:bench"


def _wide_model(width: int):
    """A sequence of ``width`` optional elements -- worst case for backtracking."""
    particles = [ElementDecl(name=f"f{i}", min_occurs=0, max_occurs=2) for i in range(width)]
    model = SequenceGroup(particles)
    tokens = [QName(NS, f"f{i}") for i in range(width) for _ in range(2)]
    return model, tokens


def _symbol(decl: ElementDecl) -> QName:
    return QName(NS, decl.name)


@pytest.mark.parametrize("width", [8, 24])
def test_content_model_nfa(benchmark, width):
    """The production engine: compile once, match repeatedly."""
    model, tokens = _wide_model(width)
    compiled = CompiledModel(model, _symbol)
    result = benchmark(compiled.match, tokens)
    assert result.ok


@pytest.mark.parametrize("width", [8, 24])
def test_content_model_backtracking(benchmark, width):
    """The reference engine on the same workload."""
    model, tokens = _wide_model(width)
    result = benchmark(match_backtracking, model, tokens, _symbol)
    assert result.ok


def test_annotated_output(benchmark, easybiz):
    """Annotated generation: time plus output-size overhead."""

    def run():
        options = GenerationOptions(annotated=True)
        result = SchemaGenerator(easybiz.model, options).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        return sum(len(g.to_string()) for g in result.schemas.values())

    annotated_size = benchmark(run)
    plain = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
    plain_size = sum(len(g.to_string()) for g in plain.schemas.values())
    assert annotated_size > plain_size


def test_unannotated_output(benchmark, easybiz):
    """Unannotated generation, the comparison arm."""

    def run():
        result = SchemaGenerator(easybiz.model).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        return sum(len(g.to_string()) for g in result.schemas.values())

    assert benchmark(run) > 0


def test_import_closure_memoized(benchmark, easybiz):
    """One generator run produces the whole closure: each library built once."""

    def run():
        # validate_first off in both arms so only closure strategy differs.
        generator = SchemaGenerator(easybiz.model, GenerationOptions(validate_first=False))
        result = generator.generate(easybiz.doc_library, root="HoardingPermit")
        return generator.session.messages

    messages = benchmark(run)
    cdt_builds = [m for m in messages if m.startswith("Building CDTLibrary")]
    assert len(cdt_builds) == 1  # referenced from DOC, QDT and both BIE schemas


def test_import_closure_naive(benchmark, easybiz):
    """The naive arm: regenerate every library independently."""

    def run():
        count = 0
        for library_name in (
            "EB005-HoardingPermit", "CommonAggregates", "LocalLawAggregates",
            "CommonDataTypes", "coredatatypes", "EnumerationTypes",
        ):
            generator = SchemaGenerator(easybiz.model, GenerationOptions(validate_first=False))
            root = "HoardingPermit" if library_name == "EB005-HoardingPermit" else None
            result = generator.generate(library_name, root=root)
            count += len(result.schemas)
        return count

    # 6 independent runs regenerate shared dependencies repeatedly.
    assert benchmark(run) > 6


def test_shared_ref_vs_inline_equivalence(benchmark, easybiz):
    """Both Figure-7 readings accept the same instances (sanity for the ablation)."""

    def run():
        options = GenerationOptions(shared_aggregation_as_ref=False)
        result = SchemaGenerator(easybiz.model, options).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        schema_set = result.schema_set()
        message = InstanceGenerator(schema_set).generate("HoardingPermit")
        return validate_instance(schema_set, message)

    assert benchmark(run) == []


def test_indexed_connector_lookup(benchmark):
    """Index ablation, fast arm: whole-model ASBIE sweep under the snapshot index."""
    from benchmarks.bench_scaling import build_synthetic_model

    model, _, _ = build_synthetic_model(60)

    def run():
        with model.model.indexed():
            return sum(len(abie.asbies) for abie in model.abies())

    assert benchmark(run) == 60


def test_unindexed_connector_lookup(benchmark):
    """Index ablation, slow arm: the same sweep with per-query model scans."""
    from benchmarks.bench_scaling import build_synthetic_model

    model, _, _ = build_synthetic_model(60)

    def run():
        return sum(len(abie.asbies) for abie in model.abies())

    assert benchmark(run) == 60
