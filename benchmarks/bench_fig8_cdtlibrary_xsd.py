"""Figure 8: the XSD schema fraction for the CDTLibrary.

Paper artifact: ``CodeType`` -- a complexType with simpleContent extending
``xsd:string``, the supplementary components as attributes with the
figure's ``use`` values (three required, LanguageIdentifier optional).
Measured: CDTLibrary generation plus the QDT and ENUM library rules of
section 4.1.
"""

from repro.xmlutil.qname import QName
from repro.xsd.components import XSD_NS, AttributeUse
from repro.xsdgen import SchemaGenerator

ENUM_NS = "urn:au:gov:vic:easybiz:types:draft:EnumerationTypes"
CDT_NS = "urn:au:gov:vic:easybiz:types:draft:coredatatypes"


def test_fig8_generate_cdt_library(benchmark, easybiz):
    """Generate the CDTLibrary schema; CodeType matches lines 31-40."""
    result = benchmark(lambda: SchemaGenerator(easybiz.model).generate("coredatatypes"))
    code = result.root.schema.complex_type("CodeType")
    content = code.simple_content
    assert content.derivation == "extension"
    assert content.base == QName(XSD_NS, "string")
    uses = {a.name: a.use for a in content.attributes}
    assert uses == {
        "CodeListAgName": AttributeUse.REQUIRED,
        "CodeListName": AttributeUse.REQUIRED,
        "CodeListSchemeURI": AttributeUse.REQUIRED,
        "LanguageIdentifier": AttributeUse.OPTIONAL,
    }


def test_fig8_rendered_fragment(benchmark, easybiz):
    """The rendered Figure-8 lines."""
    result = SchemaGenerator(easybiz.model).generate("coredatatypes")
    text = benchmark(result.root.to_string)
    for expected in (
        '<xsd:complexType name="CodeType">',
        "<xsd:simpleContent>",
        '<xsd:extension base="xsd:string">',
        '<xsd:attribute name="CodeListAgName" type="xsd:string" use="required"/>',
        '<xsd:attribute name="CodeListName" type="xsd:string" use="required"/>',
        '<xsd:attribute name="CodeListSchemeURI" type="xsd:string" use="required"/>',
        '<xsd:attribute name="LanguageIdentifier" type="xsd:string" use="optional"/>',
    ):
        assert expected in text, expected


def test_qdt_generation_rules(benchmark, easybiz):
    """Section 4.1 QDTLibrary rules: enum extension vs CDT restriction."""
    result = benchmark(lambda: SchemaGenerator(easybiz.model).generate("CommonDataTypes"))
    schema = result.root.schema
    # Enum-restricted content: extension of the enumeration's simpleType.
    country = schema.complex_type("CountryTypeType")
    assert country.simple_content.derivation == "extension"
    assert country.simple_content.base == QName(ENUM_NS, "CountryType_CodeType")
    # No enumeration: restriction of the underlying core data type.
    indicator = schema.complex_type("Indicator_CodeType")
    assert indicator.simple_content.derivation == "restriction"
    assert indicator.simple_content.base == QName(CDT_NS, "CodeType")


def test_enum_generation_rules(benchmark, easybiz):
    """Section 4.1 ENUMLibrary rules: token restrictions with enumeration tags."""
    result = benchmark(lambda: SchemaGenerator(easybiz.model).generate("EnumerationTypes"))
    schema = result.root.schema
    country = schema.simple_type("CountryType_CodeType")
    assert country.base == QName(XSD_NS, "token")
    assert country.enumeration_values == ["USA", "AUT", "AUS"]
    council = schema.simple_type("CouncilType_CodeType")
    assert len(council.enumeration_values) == 5


def test_prim_library_not_generated(benchmark, easybiz):
    """Section 4.1: 'For PRIMLibraries currently no schema generation
    mechanism is implemented' -- the built-ins are used instead."""
    import pytest

    from repro.errors import GenerationError

    def run():
        generator = SchemaGenerator(easybiz.model)
        with pytest.raises(GenerationError):
            generator.generate(easybiz.prim_library)
        return generator.session.messages

    messages = benchmark(run)
    assert any("no schema generation mechanism" in m for m in messages)
