"""Figure 4: the EasyBiz EB005-HoardingPermit model (all seven packages).

Paper artifact: the CCTS example model -- its package inventory and element
census (11 BCCs on Application, 2 kept in the ABIE, 4 SUPs on Code, the
CountryType/CouncilType QDTs, 2 ENUMs with the listed literals, the
Figure-4 primitives, the DOCLibrary assembly with 4 ASBIEs).
Measured: building the full model and rendering the tree view; the census
must match the figure.
"""

from repro.catalog.easybiz import build_easybiz_model
from repro.uml.visitor import census, render_tree
from repro.validation import validate_model


def test_fig4_build_model(benchmark):
    """Construct all seven packages + LocalLawAggregates from scratch."""
    built = benchmark(build_easybiz_model)
    counts = census(built.model.model)
    assert counts["ACC"] == 9
    assert counts["ABIE"] == 8
    assert counts["ASBIE"] == 6
    assert counts["QDT"] == 4
    assert counts["CDT"] == 9
    assert counts["ENUM"] == 2
    assert counts["DOCLibrary"] == 1 and counts["BIELibrary"] == 2
    application = built.model.acc("Application")
    assert len(application.bccs) == 11
    assert len(built.common_aggregates.abie("Application").bbies) == 2


def test_fig4_tree_view(benchmark, easybiz):
    """Render the left-hand-side tree view of Figure 4."""
    text = benchmark(render_tree, easybiz.model.model)
    for expected in (
        "«DOCLibrary» EB005-HoardingPermit",
        "«BIELibrary» CommonAggregates",
        "«QDTLibrary» CommonDataTypes",
        "«CDTLibrary» coredatatypes",
        "«CCLibrary» CandidateCoreComponents",
        "«ENUMLibrary» EnumerationTypes",
        "«PRIMLibrary» Primitives",
        "«BIELibrary» LocalLawAggregates",
        "HoardingPermit -> +Billing Person_Identification [0..1] (composite)",
        "Person_Identification -> +Assigned Address [1] (shared)",
    ):
        assert expected in text, expected


def test_fig4_model_validation(benchmark, easybiz):
    """Run the full rule engine over the Figure-4 model."""
    report = benchmark(validate_model, easybiz.model)
    assert report.ok
    assert {d.code for d in report.warnings} <= {"UPCC-D09"}
