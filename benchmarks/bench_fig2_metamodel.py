"""Figure 2: the core components meta model.

Paper artifact: the dependency structure between the meta-model elements --
the business layer derives from the core layer (ABIE<-ACC, BBIE uses
CDT/QDT, ASBIE<-ASCC, QDT<-CDT), message assembly consumes ABIEs.
Measured: whole-model dependency extraction over the EasyBiz model; the
extracted edge kinds must match Figure 2 exactly.
"""

from repro.profile import ABIE, ACC, ASBIE, ASCC, CDT, QDT
from repro.uml.association import Association
from repro.uml.classifier import Classifier


def _metamodel_edges(model):
    """Extract (client kind, supplier kind) pairs for every basedOn + typing edge."""
    edges = set()
    for abie in model.abies():
        base = abie.based_on
        if base is not None:
            edges.add(("ABIE", "ACC"))
        for bbie in abie.bbies:
            type_ = bbie.element.type
            if type_ is not None and type_.has_stereotype(QDT):
                edges.add(("BBIE", "QDT"))
            elif type_ is not None and type_.has_stereotype(CDT):
                edges.add(("BBIE", "CDT"))
        for asbie in abie.asbies:
            if asbie.based_on is not None:
                edges.add(("ASBIE", "ASCC"))
    for qdt in model.qdts():
        if qdt.based_on is not None:
            edges.add(("QDT", "CDT"))
        if qdt.content_enum is not None:
            edges.add(("QDT", "ENUM"))
    for acc in model.accs():
        for bcc in acc.bccs:
            if bcc.cdt is not None:
                edges.add(("BCC", "CDT"))
        if acc.asccs:
            edges.add(("ASCC", "ACC"))
    for library in model.doc_libraries():
        if any(abie.asbies for abie in library.abies):
            edges.add(("MessageAssembly", "ABIE"))
    return edges


def test_fig2_dependency_structure(benchmark, easybiz):
    """The EasyBiz model instantiates every Figure-2 dependency."""
    edges = benchmark(_metamodel_edges, easybiz.model)
    assert edges == {
        ("ABIE", "ACC"),
        ("ASBIE", "ASCC"),
        ("BBIE", "CDT"),
        ("BBIE", "QDT"),
        ("BCC", "CDT"),
        ("ASCC", "ACC"),
        ("QDT", "CDT"),
        ("QDT", "ENUM"),
        ("MessageAssembly", "ABIE"),
    }


def test_fig2_layer_separation(benchmark, easybiz):
    """No core element references the business layer (downward only)."""

    def run():
        violations = []
        for element in easybiz.model.model.all_of_type(Association):
            if element.has_stereotype(ASCC):
                for end in (element.source, element.target):
                    if end.type.has_stereotype(ABIE):
                        violations.append(element)
        for classifier in easybiz.model.model.all_of_type(Classifier):
            if classifier.has_stereotype(ACC) and classifier.has_stereotype(ABIE):
                violations.append(classifier)
        return violations

    assert benchmark(run) == []


def test_fig2_business_entities_all_trace_to_core(benchmark, easybiz):
    """Every ABIE/ASBIE/QDT of the model carries its basedOn trace."""

    def run():
        missing = []
        missing.extend(a.name for a in easybiz.model.abies() if a.based_on is None)
        missing.extend(q.name for q in easybiz.model.qdts() if q.based_on is None)
        return missing

    assert benchmark(run) == []
