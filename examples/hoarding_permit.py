#!/usr/bin/env python
"""The paper's worked example, end to end (Figures 4-8).

Reproduces the full EasyBiz EB005-HoardingPermit scenario:

1. build the Figure-4 model (all seven packages + LocalLawAggregates),
2. print the tree view (the left hand side of Figure 4),
3. validate the model with the rule engine,
4. generate the schemas the paper shows in Figures 6-8 and write them to
   disk with the NDR folder/file layout,
5. round-trip the model through XMI (the registry/exchange format),
6. produce a hoarding-permit message and validate it -- plus one broken
   message to show the validator rejecting it.

Run with ``python examples/hoarding_permit.py [output-directory]``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import SchemaGenerator, validate_model
from repro.catalog import build_easybiz_model
from repro.ccts.model import CctsModel
from repro.instances import InstanceGenerator, drop_required_child
from repro.uml.visitor import census, render_tree
from repro.xmi import read_xmi, write_xmi
from repro.xsd.validator import validate_instance
from repro.xsdgen import GenerationOptions


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="easybiz-"))
    easybiz = build_easybiz_model()

    print("=== Tree view (Figure 4, left hand side) ===")
    print(render_tree(easybiz.model.model))
    print()
    print("=== Stereotype census ===")
    for stereotype, count in census(easybiz.model.model).items():
        print(f"  {stereotype:12} {count}")

    print()
    print("=== Validation ===")
    report = validate_model(easybiz.model)
    print(report.summary())
    for diagnostic in report.diagnostics:
        print(f"  {diagnostic}")
    if not report.ok:
        return 1

    print()
    print("=== Schema generation (Figures 6-8) ===")
    options = GenerationOptions(annotated=False, target_directory=out_dir)
    generator = SchemaGenerator(easybiz.model, options)
    result = generator.generate(easybiz.doc_library, root="HoardingPermit")
    for urn, generated in sorted(result.schemas.items()):
        print(f"  {urn}")
        print(f"    -> {out_dir / generated.namespace.folder / generated.namespace.file_name}")
    print()
    print(result.root.to_string())

    print("=== XMI round trip ===")
    xmi_path = out_dir / "easybiz.xmi"
    text = write_xmi(easybiz.model.model, xmi_path)
    reloaded = CctsModel(model=read_xmi(text))
    regenerated = SchemaGenerator(reloaded).generate(
        reloaded.library_named("EB005-HoardingPermit"), root="HoardingPermit"
    )
    identical = regenerated.root.to_string() == result.root.to_string()
    print(f"  wrote {xmi_path} ({len(text)} bytes); regenerated schema identical: {identical}")

    print()
    print("=== Instance validation ===")
    schema_set = result.schema_set()
    instances = InstanceGenerator(schema_set)
    message = instances.generate("HoardingPermit")
    problems = validate_instance(schema_set, message)
    print(f"  valid message: {len(problems)} problem(s)")
    broken = instances.generate("HoardingPermit")
    drop_required_child(broken, "IncludedRegistration")
    problems = validate_instance(schema_set, broken)
    print(f"  message without IncludedRegistration: {len(problems)} problem(s)")
    for problem in problems:
        print(f"    {problem}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
