#!/usr/bin/env python
"""The validation engine in action (the paper's top-priority future work).

"Even experienced core component modelers often get lost in a model because
the interdependencies between CDTs, QDTs etc. blur with the increasing
complexity of a model."  This example builds a model with seven deliberate
mistakes -- one per rule family -- runs the engine, and shows that the
generator refuses to produce schemas from the broken model (the Figure-5
error dialog behaviour) until the mistakes are fixed.

Run with ``python examples/validation_engine.py``.
"""

from __future__ import annotations

from repro import CctsModel, SchemaGenerator, validate_model
from repro.errors import GenerationError
from repro.profile import ABIE, BCC


def build_broken_model() -> CctsModel:
    """A model seeded with representative modeling mistakes."""
    model = CctsModel("Broken")
    business = model.add_business_library("Broken", "urn:example:broken")
    prims = business.add_prim_library("Primitives")
    string = prims.add_primitive("String")
    fancy = prims.add_primitive("FancyCustomThing")  # D07: no XSD mapping
    _ = fancy

    cdts = business.add_cdt_library("DataTypes")
    code = cdts.add_cdt("Code")
    code.set_content(string.element)
    # D01: a CDT with no content component at all.
    empty = cdts.add_cdt("Empty")
    _ = empty

    enums = business.add_enum_library("Enums")
    enums.add_enumeration("Hollow_Code")  # D05: no literals

    ccs = business.add_cc_library("CoreComponents")
    acc = ccs.add_acc("Thing")
    acc.add_bcc("Kind", code, "0..1")
    # P03/C01: an untyped BCC.
    acc.element.add_attribute("Mystery", None, "1", stereotype=BCC)

    bies = business.add_bie_library("Entities")
    # B01: an ABIE without any basedOn dependency.
    orphan = bies.add_abie("Orphan")
    orphan.element.add_attribute("Kind", code.element, "1", stereotype="BBIE")
    # B02: an ABIE that *widens* the BCC multiplicity (0..1 -> 1..*).
    cheater = bies.add_abie("Thing")
    bies.package.add_dependency(cheater.element, acc.element, stereotype="basedOn")
    cheater.element.add_attribute("Kind", code.element, "1..*", stereotype="BBIE")
    # L02: a library owning the wrong element kind.
    cdts.package.add_class("Smuggled", stereotype=ABIE)
    return model


def main() -> int:
    model = build_broken_model()
    report = validate_model(model)
    print("=== Validation report ===")
    for diagnostic in report.diagnostics:
        print(f"  {diagnostic}")
    print(report.summary())

    print()
    print("=== Generation attempt (must abort, Figure-5 style) ===")
    generator = SchemaGenerator(model)
    try:
        generator.generate("Entities")
    except GenerationError as error:
        print("generation aborted as expected:")
        print(f"  {error}")
        return 0
    print("ERROR: generation unexpectedly succeeded")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
