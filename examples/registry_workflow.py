#!/usr/bin/env python
"""Registry and harmonization workflow (the paper's section-1 motivation).

The paper criticizes the spreadsheet-based harmonization process and
proposes XMI-based registration.  This example plays both roles:

1. register the Figure-1 and EasyBiz models in a file-based registry,
2. search the registry by dictionary entry name (the lookup a modeler
   performs before minting a duplicate core component),
3. export a model to the CSV spreadsheet baseline, re-import it and diff --
   showing exactly what the spreadsheet drops and the XMI keeps.

Run with ``python examples/registry_workflow.py [registry-directory]``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.catalog import build_easybiz_model, build_figure1_model
from repro.interchange import diff_models, export_csv, import_csv
from repro.registry import Registry


def main() -> int:
    directory = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="registry-"))
    registry = Registry(directory)

    easybiz = build_easybiz_model()
    figure1 = build_figure1_model()
    registry.store("easybiz", easybiz.model, overwrite=True)
    registry.store("figure1", figure1.model, overwrite=True)
    print(f"registry at {directory} now holds:")
    for entry in registry.entries():
        print(f"  {entry.name}: {len(entry.libraries)} libraries, "
              f"{len(entry.dictionary_entries)} dictionary entries")

    print()
    print("search 'Person':")
    for model_name, den in registry.search("Person"):
        print(f"  [{model_name}] {den}")

    print()
    print("XMI fidelity: reload and diff")
    reloaded = registry.load("easybiz")
    differences = diff_models(easybiz.model, reloaded)
    print(f"  {len(differences)} difference(s) after XMI round trip")

    print()
    print("spreadsheet baseline: export to CSV, re-import and diff")
    csv_text = export_csv(easybiz.model, directory / "easybiz.csv")
    imported = import_csv(csv_text)
    differences = diff_models(easybiz.model, imported)
    print(f"  {len(differences)} difference(s) after CSV round trip:")
    for difference in differences:
        print(f"    {difference}")
    print()
    print("the spreadsheet drops namespace prefixes, versions, baseURNs and")
    print("basedOn traceability for associations -- the losses the paper's")
    print("XMI-based registry proposal eliminates.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
