#!/usr/bin/env python
"""Quickstart: model a tiny core-component library and generate its schemas.

Walks the full pipeline on a minimal model built from scratch with the
public API:

1. create a business library with primitives, one CDT and one ACC,
2. derive a business information entity by restriction,
3. assemble a document library,
4. validate the model,
5. generate the NDR-conformant XML schemas,
6. produce a sample instance and validate it against the schemas.

Run with ``python examples/quickstart.py [output-directory]``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import CctsModel, GenerationOptions, SchemaGenerator, validate_model
from repro.ccts.derivation import derive_abie
from repro.instances import InstanceGenerator
from repro.xsd.validator import validate_instance


def build_model() -> tuple[CctsModel, object]:
    """A minimal but complete core-components model."""
    model = CctsModel("Quickstart")
    business = model.add_business_library("Demo", "urn:example:demo")

    prims = business.add_prim_library("Primitives")
    string = prims.add_primitive("String")

    cdts = business.add_cdt_library("DataTypes")
    text = cdts.add_cdt("Text")
    text.set_content(string.element)
    text.add_supplementary("LanguageIdentifier", string.element, "0..1")
    date = cdts.add_cdt("Date")
    date.set_content(string.element)

    ccs = business.add_cc_library("CoreComponents")
    person = ccs.add_acc("Person")
    person.add_bcc("FirstName", text, "1")
    person.add_bcc("LastName", text, "1")
    person.add_bcc("DateOfBirth", date, "0..1")

    roster_acc = ccs.add_acc("Roster")
    roster_acc.add_bcc("Title", text, "0..1")
    roster_acc.add_ascc("Listed", person, "0..*")

    # Derive context-specific business information entities by restriction:
    # the contact-list context does not need the date of birth.
    bies = business.add_bie_library("ContactAggregates")
    contact = derive_abie(bies, person, qualifier="Contact")
    contact.include("FirstName")
    contact.include("LastName")

    doc = business.add_doc_library("ContactList")
    roster = derive_abie(doc, roster_acc)
    roster.include("Title", "0..1")
    roster.connect("Listed", contact.abie, "0..*", based_on="Listed")
    return model, doc


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="quickstart-"))
    model, doc_library = build_model()

    report = validate_model(model)
    print(f"validation: {report.summary()}")
    if not report.ok:
        print(report)
        return 1

    generator = SchemaGenerator(model, GenerationOptions(target_directory=out_dir))
    result = generator.generate(doc_library, root="Roster")
    print(f"generated {len(result.schemas)} schema(s) into {out_dir}")
    print()
    print(result.root.to_string())

    schema_set = result.schema_set()
    instance = InstanceGenerator(schema_set)
    document = instance.generate_string("Roster")
    print(document)
    problems = validate_instance(schema_set, document)
    print(f"instance validation: {'valid' if not problems else problems}")
    return 0 if not problems else 1


if __name__ == "__main__":
    raise SystemExit(main())
