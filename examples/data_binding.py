#!/usr/bin/env python
"""Application integration: exchanging business data as plain dicts.

The schemas exist so that systems can exchange messages; application code
should not hand-assemble XML.  This example shows the data-binding layer on
the purchase-order scenario:

1. the seller publishes schemas (as in ``ecommerce_order.py``),
2. the buyer's application *marshals* an order straight from a Python dict
   -- schema-driven, so typos and missing fields fail immediately,
3. the seller's application *unmarshals* the received document back into a
   dict and reads the fields,
4. a round-trip check proves nothing is lost on the wire,
5. schema evolution: the checker classifies a compatible and a breaking
   change between schema versions.

Run with ``python examples/data_binding.py``.
"""

from __future__ import annotations

from repro import SchemaGenerator
from repro.binding import marshal_string, unmarshal
from repro.catalog import build_ecommerce_model
from repro.errors import InstanceValidationError
from repro.xsd.compat import check_compatibility


def main() -> int:
    ecommerce = build_ecommerce_model()
    result = SchemaGenerator(ecommerce.model).generate(
        ecommerce.doc_library, root="PurchaseOrder"
    )
    schema_set = result.schema_set()

    order = {
        "Identification": "PO-2007-042",
        "IssueDate": "2007-07-06",
        "Currency": {"#value": "EUR", "@CodeListName": "ISO4217"},
        "BuyerParty": {
            "Identification": "VIE-001",
            "Name": "Vienna University of Technology",
            "PostalAddress": {"Street": "Favoritenstr. 9-11", "CityName": "Vienna",
                              "Country": "AT"},
        },
        "SellerParty": {
            "Identification": "MEL-009",
            "Name": "EasyBiz Pty Ltd",
            "PostalAddress": {"Street": "1 Collins St", "CityName": "Melbourne"},
        },
        "OrderedLineItem": [
            {"Identification": "L-1", "Description": "UML profile licences",
             "Quantity": "25", "UnitPrice": "120.00"},
            {"Identification": "L-2", "Quantity": "1", "UnitPrice": "480.00"},
        ],
    }

    print("=== buyer marshals the order ===")
    wire = marshal_string(schema_set, "PurchaseOrder", order)
    print(wire)

    print("=== seller unmarshals it ===")
    received = unmarshal(schema_set, wire)
    print(f"order {received['Identification']} from {received['BuyerParty']['Name']}: "
          f"{len(received['OrderedLineItem'])} line item(s)")
    assert received == order
    print("round trip lossless: True")

    print()
    print("=== typos fail before anything leaves the system ===")
    broken = dict(order)
    broken["Curency"] = broken.pop("Currency")
    try:
        marshal_string(schema_set, "PurchaseOrder", broken)
    except InstanceValidationError as error:
        print(f"rejected: {error}")

    print()
    print("=== schema evolution ===")
    evolved_model = build_ecommerce_model()
    order_acc = evolved_model.model.acc("Order")
    text = evolved_model.model.cdt_libraries()[0].cdt("Text")
    order_acc.add_bcc("Note", text, "0..1")
    evolved_model.purchase_order.add_bbie("Note", text, "0..1")
    evolved = SchemaGenerator(evolved_model.model).generate(
        evolved_model.doc_library, root="PurchaseOrder"
    )
    report = check_compatibility(schema_set, evolved.schema_set())
    print(f"v1 -> v2 (added optional Note): backward compatible = {report.is_backward_compatible}")
    reverse = check_compatibility(evolved.schema_set(), schema_set)
    print(f"v2 -> v1 (Note removed again): breaking change(s) = {len(reverse.breaking)}")
    for change in reverse.breaking:
        print(f"  {change}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
