#!/usr/bin/env python
"""Publishing a document standard: diagrams, docs, schemas, maintenance.

A standards body publishing the EasyBiz HoardingPermit exchange needs more
than raw XSD files.  This example produces the full publication bundle and
then performs a maintenance cycle:

1. class diagrams (Graphviz DOT) for the modeling appendix,
2. human-readable HTML documentation of every document type,
3. the schema files themselves plus a RELAX NG grammar for RNG shops,
4. maintenance: rename an entity, bump the document version, re-point the
   schema locations at the public server, and verify the new release is
   backward compatible with the old one.

Run with ``python examples/publication_workflow.py [output-directory]``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import GenerationOptions, SchemaGenerator
from repro.catalog import build_easybiz_model
from repro.console import bump_version, rename_classifier, set_global_schema_location
from repro.rngen import result_to_rng, rng_to_string
from repro.uml.diagram import model_to_dot, package_to_dot
from repro.xsd.compat import check_compatibility
from repro.xsdgen import write_documentation


def main() -> int:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="publication-"))
    easybiz = build_easybiz_model()

    print("=== release 0.4: the publication bundle ===")
    options = GenerationOptions(annotated=True, target_directory=out / "schemas-0.4")
    result = SchemaGenerator(easybiz.model, options).generate(
        easybiz.doc_library, root="HoardingPermit"
    )
    (out / "diagrams").mkdir(parents=True, exist_ok=True)
    (out / "diagrams" / "model.dot").write_text(
        model_to_dot(easybiz.model.model), encoding="utf-8"
    )
    (out / "diagrams" / "core_components.dot").write_text(
        package_to_dot(easybiz.cc_library.package, "CoreComponents"), encoding="utf-8"
    )
    write_documentation(result, out / "hoarding-permit-0.4.html",
                        title="EB005 HoardingPermit 0.4")
    (out / "hoarding-permit-0.4.rng").write_text(
        rng_to_string(result_to_rng(result, "HoardingPermit")), encoding="utf-8"
    )
    for artifact in ("schemas-0.4", "diagrams/model.dot", "hoarding-permit-0.4.html",
                     "hoarding-permit-0.4.rng"):
        print(f"  {out / artifact}")

    print()
    print("=== maintenance cycle -> release 0.5 ===")
    evolved = build_easybiz_model()
    # A business-requested rename: 'Attachment' becomes 'Enclosure'.
    rename_classifier(evolved.model, evolved.model.abie("Attachment"), "Enclosure")
    rename_classifier(evolved.model, evolved.model.acc("Attachment"), "Enclosure")
    previous = bump_version(evolved.doc_library, "0.5")
    print(f"  renamed Attachment -> Enclosure; version {previous} -> 0.5")
    evolved_result = SchemaGenerator(
        evolved.model, GenerationOptions(target_directory=out / "schemas-0.5")
    ).generate(evolved.doc_library, root="HoardingPermit")
    rewritten = set_global_schema_location(
        evolved_result, "https://schemas.example.org/easybiz/"
    )
    print(f"  re-pointed {rewritten} import locations at the public server")

    print()
    print("=== compatibility gate ===")
    report = check_compatibility(result.schema_set(), evolved_result.schema_set())
    print(f"  0.4 -> 0.5 backward compatible: {report.is_backward_compatible}")
    for change in report.breaking:
        print(f"  {change}")
    print()
    print("the rename is breaking (IncludedAttachment became IncludedEnclosure)")
    print("-- exactly what the gate exists to catch before publication.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
