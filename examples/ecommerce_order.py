#!/usr/bin/env python
"""B2B purchase-order exchange: the domain the paper's introduction motivates.

Simulates two trading partners:

* the **seller side** publishes a purchase-order document schema generated
  from a core-components model (built on the full CCTS 2.01 approved CDT
  catalog),
* the **buyer side** receives the schemas, produces an order message and
  has it validated -- then sends a malformed one (wrong currency code,
  missing buyer party) and watches it bounce.

This demonstrates the paper's central claim: the *model* is the single
source of truth, the transfer syntax (XSD here) is derived, and validation
of exchanged messages falls out of the pipeline.

Run with ``python examples/ecommerce_order.py [output-directory]``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import SchemaGenerator, validate_model
from repro.catalog import build_ecommerce_model
from repro.instances import (
    InstanceGenerator,
    corrupt_enumeration_value,
    drop_required_child,
)
from repro.xsd.validator import SchemaSet, validate_instance
from repro.xsdgen import GenerationOptions


def seller_publishes(out_dir: Path) -> Path:
    """The seller generates and publishes the order schemas."""
    ecommerce = build_ecommerce_model()
    report = validate_model(ecommerce.model)
    print(f"seller: model validation -> {report.summary()}")
    options = GenerationOptions(annotated=True, target_directory=out_dir)
    generator = SchemaGenerator(ecommerce.model, options)
    result = generator.generate(ecommerce.doc_library, root="PurchaseOrder")
    print(f"seller: published {len(result.schemas)} schema(s) to {out_dir}")
    return out_dir


def buyer_sends(schema_dir: Path) -> int:
    """The buyer loads the published schemas and exchanges messages."""
    schema_set = SchemaSet.from_directory(schema_dir)
    print(f"buyer: loaded schemas for {len(schema_set.namespaces)} namespace(s)")
    instances = InstanceGenerator(schema_set)

    order = instances.generate("PurchaseOrder")
    problems = validate_instance(schema_set, order)
    print(f"buyer: well-formed order -> {len(problems)} problem(s)")
    if problems:
        return 1

    bad_currency = instances.generate("PurchaseOrder")
    corrupt_enumeration_value(bad_currency, "Currency", "BTC")
    problems = validate_instance(schema_set, bad_currency)
    print(f"buyer: order paying in BTC -> rejected with {len(problems)} problem(s)")
    for problem in problems:
        print(f"  {problem}")

    no_buyer = instances.generate("PurchaseOrder")
    drop_required_child(no_buyer, "BuyerParty")
    problems = validate_instance(schema_set, no_buyer)
    print(f"buyer: order without BuyerParty -> rejected with {len(problems)} problem(s)")
    for problem in problems:
        print(f"  {problem}")
    return 0


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="order-"))
    seller_publishes(out_dir)
    return buyer_sends(out_dir)


if __name__ == "__main__":
    raise SystemExit(main())
