"""Model validation engine.

The paper names a validation engine as the top-priority extension of the
add-in: "allowing to check the syntactical and semantical correctness of a
core component model" -- and notes that at generation time "the transformer
performs a basic model validation allowing to track and report basic flaws".

This package implements that engine:

* :mod:`repro.validation.diagnostics` -- :class:`Diagnostic`,
  :class:`Severity` and :class:`ValidationReport`,
* :mod:`repro.validation.engine` -- the rule registry and runner,
* :mod:`repro.validation.rules` -- the UPCC well-formedness rules, grouped
  by concern (structure, data types, core components, BIEs, libraries,
  naming).

The generator runs the rules marked ``basic`` before producing schemas and
aborts on errors, reproducing the error dialog of the paper's Figure 5.
"""

from repro.validation.diagnostics import Diagnostic, Severity, SourceLocation, ValidationReport
from repro.validation.engine import ValidationEngine, default_engine, validate_model

__all__ = [
    "Diagnostic",
    "Severity",
    "SourceLocation",
    "ValidationEngine",
    "ValidationReport",
    "default_engine",
    "validate_model",
]
