"""The validation engine: a registry of rules and a runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.obs.logging_bridge import get_logger
from repro.obs.metrics import counter, histogram
from repro.obs.trace import span
from repro.validation.diagnostics import ValidationReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.ccts.model import CctsModel

_log = get_logger("repro.validation")

#: A rule is a callable writing findings into a report.
RuleFunc = Callable[["CctsModel", ValidationReport], None]


@dataclass(frozen=True)
class Rule:
    """One registered validation rule."""

    code: str
    description: str
    func: RuleFunc
    basic: bool = False


@dataclass
class ValidationEngine:
    """Runs a configurable set of rules over a model."""

    rules: list[Rule] = field(default_factory=list)

    def register(self, code: str, description: str, basic: bool = False) -> Callable[[RuleFunc], RuleFunc]:
        """Decorator registering a rule function under ``code``."""

        def decorate(func: RuleFunc) -> RuleFunc:
            if any(rule.code == code for rule in self.rules):
                raise ValueError(f"duplicate rule code {code!r}")
            self.rules.append(Rule(code, description, func, basic))
            return func

        return decorate

    def validate(self, model: "CctsModel", basic_only: bool = False) -> ValidationReport:
        """Run all (or only the basic) rules; returns the merged report.

        Rules only read the model, so the run executes under the model's
        snapshot index (O(1) association/dependency lookups).
        """
        import contextlib
        from time import perf_counter

        report = ValidationReport()
        context = model.model.indexed() if model is not None else contextlib.nullcontext()
        with span("validation.run", basic_only=basic_only) as run_span, context:
            fired = 0
            for rule in self.rules:
                if basic_only and not rule.basic:
                    continue
                before = len(report.diagnostics)
                with span("validation.rule", rule=rule.code) as rule_span:
                    started = perf_counter()
                    rule.func(model, report)
                    elapsed_ms = (perf_counter() - started) * 1000.0
                    rule_span.set(findings=len(report.diagnostics) - before)
                histogram("validation.rule_ms", rule=rule.code).observe(elapsed_ms)
                fired += 1
                for diagnostic in report.diagnostics[before:]:
                    counter("validation.findings", severity=diagnostic.severity.value).inc()
            counter("validation.rules_fired").inc(fired)
            run_span.set(rules=fired, findings=len(report.diagnostics))
            _log.info(
                "validation ran %d rule(s): %d finding(s)", fired, len(report.diagnostics)
            )
        return report

    def rule_codes(self) -> list[str]:
        """All registered rule codes, in registration order."""
        return [rule.code for rule in self.rules]


def default_engine() -> ValidationEngine:
    """The engine with the full UPCC rule set registered."""
    from repro.validation.rules import build_default_rules

    return build_default_rules()


def validate_model(model: "CctsModel", basic_only: bool = False) -> ValidationReport:
    """Validate ``model`` with the default rule set."""
    return default_engine().validate(model, basic_only=basic_only)
