"""Library rules: tagged values and allowed content per library kind."""

from __future__ import annotations

from repro.ccts.model import CctsModel
from repro.profile import (
    ABIE,
    ACC,
    BIE_LIBRARY,
    CC_LIBRARY,
    CDT,
    CDT_LIBRARY,
    DOC_LIBRARY,
    ENUM,
    ENUM_LIBRARY,
    PRIM,
    PRIM_LIBRARY,
    QDT,
    QDT_LIBRARY,
)
from repro.validation.diagnostics import ValidationReport
from repro.validation.engine import ValidationEngine

#: Library stereotype -> classifier stereotypes it may own.
_ALLOWED_CONTENT = {
    CC_LIBRARY: {ACC},
    BIE_LIBRARY: {ABIE},
    DOC_LIBRARY: {ABIE},
    CDT_LIBRARY: {CDT},
    QDT_LIBRARY: {QDT, CDT},  # a CDT may be *drawn* in a QDT diagram (Figure 4, package 3)
    ENUM_LIBRARY: {ENUM},
    PRIM_LIBRARY: {PRIM},
}


def register(engine: ValidationEngine) -> None:
    """Register the library rules."""

    @engine.register("UPCC-L01", "every library needs a baseURN for namespace generation", basic=True)
    def base_urn_present(model: CctsModel, report: ValidationReport) -> None:
        for library in model.libraries():
            if not library.base_urn:
                report.error(
                    "UPCC-L01",
                    f"library {library.name!r} has no baseURN tagged value; the generator "
                    f"cannot build its target namespace",
                    library.qualified_name,
                )

    @engine.register("UPCC-L02", "libraries may only own their designated element kind", basic=True)
    def allowed_content(model: CctsModel, report: ValidationReport) -> None:
        for library in model.libraries():
            allowed = _ALLOWED_CONTENT.get(library.stereotype)
            if allowed is None:
                continue
            for classifier in library.package.classifiers:
                stereotypes = set(classifier.stereotypes)
                if stereotypes and not (stereotypes & allowed):
                    report.error(
                        "UPCC-L02",
                        f"{library.stereotype} {library.name!r} owns "
                        f"{'/'.join(sorted(stereotypes))} element {classifier.name!r}; "
                        f"allowed here: {'/'.join(sorted(allowed))}",
                        classifier.qualified_name,
                    )

    @engine.register("UPCC-L03", "classifier names must be unique within a library", basic=True)
    def unique_names(model: CctsModel, report: ValidationReport) -> None:
        for library in model.libraries():
            seen: set[str] = set()
            for classifier in library.package.classifiers:
                if classifier.name in seen:
                    report.error(
                        "UPCC-L03",
                        f"library {library.name!r} defines {classifier.name!r} twice",
                        library.qualified_name,
                    )
                seen.add(classifier.name)

    @engine.register("UPCC-L04", "namespace prefixes should be unique across libraries")
    def unique_prefixes(model: CctsModel, report: ValidationReport) -> None:
        seen: dict[str, str] = {}
        for library in model.libraries():
            prefix = library.namespace_prefix
            if not prefix:
                continue
            if prefix in seen and seen[prefix] != library.qualified_name:
                report.warning(
                    "UPCC-L04",
                    f"namespace prefix {prefix!r} is used by both {seen[prefix]!r} and "
                    f"{library.qualified_name!r}; one of them will fall back to a "
                    f"generated prefix in importing schemas",
                    library.qualified_name,
                )
            seen.setdefault(prefix, library.qualified_name)

    @engine.register("UPCC-L06", "business libraries only aggregate other libraries")
    def business_library_purity(model: CctsModel, report: ValidationReport) -> None:
        for business in model.business_libraries():
            for classifier in business.package.classifiers:
                report.error(
                    "UPCC-L06",
                    f"BusinessLibrary {business.name!r} directly owns classifier "
                    f"{classifier.name!r}; business libraries aggregate libraries only",
                    classifier.qualified_name,
                )
            for package in business.package.packages:
                if not any(package.has_stereotype(s) for s in _ALLOWED_CONTENT) and not any(
                    package.has_stereotype(s)
                    for s in ("BusinessLibrary",)
                ):
                    report.warning(
                        "UPCC-L06",
                        f"package {package.name!r} inside BusinessLibrary "
                        f"{business.name!r} carries no library stereotype",
                        package.qualified_name,
                    )

    @engine.register("UPCC-L05", "stereotyped classifiers should live inside a library")
    def homeless_elements(model: CctsModel, report: ValidationReport) -> None:
        library_packages = {library.package for library in model.libraries()}
        for acc in model.accs():
            owner = model.model.owning_package_of(acc.element)
            if owner is not None and owner not in library_packages:
                report.warning(
                    "UPCC-L05",
                    f"ACC {acc.name!r} lives in plain package {owner.name!r}; the "
                    f"generator only processes libraries",
                    acc.qualified_name,
                )
