"""Core-component rules: ACC/BCC/ASCC well-formedness."""

from __future__ import annotations

from repro.ccts.model import CctsModel
from repro.profile import CDT
from repro.validation.diagnostics import ValidationReport
from repro.validation.engine import ValidationEngine


def register(engine: ValidationEngine) -> None:
    """Register the core-component rules."""

    @engine.register("UPCC-C01", "BCCs must be typed by core data types", basic=True)
    def bcc_types(model: CctsModel, report: ValidationReport) -> None:
        for acc in model.accs():
            for bcc in acc.bccs:
                type_ = bcc.element.type
                if type_ is None:
                    continue  # UPCC-P03 reports untyped attributes
                if not type_.has_stereotype(CDT):
                    report.error(
                        "UPCC-C01",
                        f"BCC {acc.name}.{bcc.name} is typed by {type_.name!r} which is "
                        f"not a CDT (core components never use QDTs)",
                        bcc.qualified_name,
                    )

    @engine.register("UPCC-C02", "ACCs should carry at least one BCC or ASCC")
    def acc_not_empty(model: CctsModel, report: ValidationReport) -> None:
        for acc in model.accs():
            if not acc.bccs and not acc.asccs:
                report.warning(
                    "UPCC-C02",
                    f"ACC {acc.name!r} has neither BCCs nor ASCCs; it carries no information",
                    acc.qualified_name,
                )

    @engine.register("UPCC-C03", "ASCC (role, target) pairs must be unique per source ACC", basic=True)
    def ascc_role_uniqueness(model: CctsModel, report: ValidationReport) -> None:
        # The key is (role, target): Figure 4's HoardingPermit legitimately has
        # two "Included" roles pointing at different targets, and the NDR
        # compound names (role + target) stay distinct.
        for acc in model.accs():
            seen: set[tuple[str, str]] = set()
            for ascc in acc.asccs:
                key = (ascc.role, ascc.target.name)
                if key in seen:
                    report.error(
                        "UPCC-C03",
                        f"ACC {acc.name!r} has two ASCCs with role {ascc.role!r} to "
                        f"{ascc.target.name!r}",
                        acc.qualified_name,
                    )
                seen.add(key)

    @engine.register("UPCC-C04", "core components must not reference the business layer", basic=True)
    def no_downward_references(model: CctsModel, report: ValidationReport) -> None:
        for acc in model.accs():
            for ascc in acc.asccs:
                # UPCC-P04 already checks the target is an ACC; this rule
                # adds the direction statement for mixed-stereotype targets.
                if ascc.element.target.type.has_stereotype("ABIE"):
                    report.error(
                        "UPCC-C04",
                        f"ASCC {acc.name}.{ascc.role} points at the business layer "
                        f"({ascc.element.target.type.name!r})",
                        acc.qualified_name,
                    )

    @engine.register("UPCC-C05", "ASCC graphs should stay acyclic through compositions")
    def no_composition_cycles(model: CctsModel, report: ValidationReport) -> None:
        for acc in model.accs():
            stack = [(acc, [acc.element])]
            while stack:
                current, path = stack.pop()
                for ascc in current.asccs:
                    if not ascc.element.is_composite:
                        continue
                    target = ascc.target
                    if target.element in path:
                        names = " -> ".join(element.name for element in path + [target.element])
                        report.warning(
                            "UPCC-C05",
                            f"composition cycle among ACCs: {names}; schema generation "
                            f"handles this, but instances can never terminate the nesting "
                            f"unless some step is optional",
                            acc.qualified_name,
                        )
                        continue
                    stack.append((target, path + [target.element]))
