"""Profile/structure rules: stereotype placement and typedness."""

from __future__ import annotations

from repro.ccts.model import CctsModel
from repro.profile import (
    ABIE,
    ACC,
    ASBIE,
    ASCC,
    BBIE,
    BCC,
    CDT,
    CON,
    QDT,
    SUP,
)
from repro.uml.association import Association
from repro.uml.classifier import Classifier
from repro.uml.property import Property
from repro.validation.diagnostics import ValidationReport
from repro.validation.engine import ValidationEngine

#: Property stereotype -> stereotypes its owning classifier must carry.
_PROPERTY_OWNERS = {
    BCC: (ACC,),
    BBIE: (ABIE,),
    CON: (CDT, QDT),
    SUP: (CDT, QDT),
}

#: Association stereotype -> required stereotype on both end classes.
_ASSOCIATION_ENDS = {ASCC: ACC, ASBIE: ABIE}


def register(engine: ValidationEngine) -> None:
    """Register the structure rules."""

    @engine.register("UPCC-P01", "stereotype applications must match the profile", basic=True)
    def profile_conformance(model: CctsModel, report: ValidationReport) -> None:
        for problem in model.profile_problems():
            report.error("UPCC-P01", problem)

    @engine.register("UPCC-P02", "stereotyped properties must sit in matching classifiers", basic=True)
    def property_placement(model: CctsModel, report: ValidationReport) -> None:
        for prop in model.model.all_of_type(Property):
            for stereotype, owners in _PROPERTY_OWNERS.items():
                if not prop.has_stereotype(stereotype):
                    continue
                owner = prop.owner
                if owner is None or not any(owner.has_stereotype(required) for required in owners):
                    owner_name = getattr(owner, "name", "?")
                    report.error(
                        "UPCC-P02",
                        f"<<{stereotype}>> attribute {prop.name!r} must be owned by a "
                        f"{'/'.join(owners)} classifier, found {owner_name!r}",
                        prop.qualified_name,
                    )

    @engine.register("UPCC-P03", "every BCC/BBIE/CON/SUP attribute must be typed", basic=True)
    def properties_typed(model: CctsModel, report: ValidationReport) -> None:
        for prop in model.model.all_of_type(Property):
            if any(prop.has_stereotype(stereotype) for stereotype in _PROPERTY_OWNERS):
                if prop.type is None:
                    report.error(
                        "UPCC-P03",
                        f"attribute {prop.name!r} has no type",
                        prop.qualified_name,
                    )

    @engine.register("UPCC-P04", "ASCC/ASBIE ends must connect matching aggregates", basic=True)
    def association_ends(model: CctsModel, report: ValidationReport) -> None:
        for association in model.model.all_of_type(Association):
            for stereotype, required in _ASSOCIATION_ENDS.items():
                if not association.has_stereotype(stereotype):
                    continue
                for end, label in ((association.source, "source"), (association.target, "target")):
                    if not end.type.has_stereotype(required):
                        report.error(
                            "UPCC-P04",
                            f"<<{stereotype}>> {label} end attaches to {end.type.name!r} "
                            f"which is not an {required}",
                            association.qualified_name,
                        )

    @engine.register("UPCC-P05", "ASCC/ASBIE associations must carry a role name", basic=True)
    def role_names(model: CctsModel, report: ValidationReport) -> None:
        for association in model.model.all_of_type(Association):
            if association.has_stereotype(ASCC) or association.has_stereotype(ASBIE):
                if not association.target.name:
                    report.error(
                        "UPCC-P05",
                        f"association from {association.source.type.name!r} to "
                        f"{association.target.type.name!r} has no role name; the NDR cannot "
                        f"build a compound element name without one",
                        association.qualified_name,
                    )

    @engine.register("UPCC-P06", "classes should not mix core and business stereotypes")
    def no_mixed_layers(model: CctsModel, report: ValidationReport) -> None:
        for classifier in model.model.all_of_type(Classifier):
            if classifier.has_stereotype(ACC) and classifier.has_stereotype(ABIE):
                report.error(
                    "UPCC-P06",
                    f"classifier {classifier.name!r} is stereotyped both ACC and ABIE",
                    classifier.qualified_name,
                )

    @engine.register("UPCC-P07", "basedOn must connect matching kinds", basic=True)
    def based_on_pairs(model: CctsModel, report: ValidationReport) -> None:
        """ABIE->ACC, ASBIE->ASCC, QDT->CDT -- never across kinds."""
        from repro.uml.dependency import Dependency

        expected = ((ABIE, ACC), (ASBIE, ASCC), (QDT, CDT))
        for dependency in model.model.all_of_type(Dependency):
            if not dependency.has_stereotype("basedOn"):
                continue
            client, supplier = dependency.client, dependency.supplier
            matched = False
            for client_kind, supplier_kind in expected:
                if client.has_stereotype(client_kind):
                    matched = True
                    if not supplier.has_stereotype(supplier_kind):
                        report.error(
                            "UPCC-P07",
                            f"<<{client_kind}>> {client.name!r} is basedOn "
                            f"{supplier.name!r} which is not a {supplier_kind}",
                            dependency.qualified_name,
                        )
                    break
            if not matched:
                report.warning(
                    "UPCC-P07",
                    f"basedOn from {client.name!r}: client carries none of "
                    f"ABIE/ASBIE/QDT",
                    dependency.qualified_name,
                )
