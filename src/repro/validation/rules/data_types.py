"""Data-type rules: CDT/QDT shape and derivation, ENUM content."""

from __future__ import annotations

from repro.ccts.derivation import check_qdt_restriction, qdt_widened_supplementaries
from repro.ccts.model import CctsModel
from repro.profile import CON, ENUM, PRIM
from repro.uml.classifier import Enumeration, PrimitiveType
from repro.validation.diagnostics import ValidationReport
from repro.validation.engine import ValidationEngine


def register(engine: ValidationEngine) -> None:
    """Register the data-type rules."""

    @engine.register("UPCC-D01", "a CDT has exactly one content component", basic=True)
    def cdt_content(model: CctsModel, report: ValidationReport) -> None:
        for cdt in model.cdts():
            count = len(cdt.element.attributes_with_stereotype(CON))
            if count != 1:
                report.error(
                    "UPCC-D01",
                    f"CDT {cdt.name!r} has {count} content components, expected exactly one",
                    cdt.qualified_name,
                )

    @engine.register("UPCC-D02", "a QDT has exactly one content component", basic=True)
    def qdt_content(model: CctsModel, report: ValidationReport) -> None:
        for qdt in model.qdts():
            count = len(qdt.element.attributes_with_stereotype(CON))
            if count != 1:
                report.error(
                    "UPCC-D02",
                    f"QDT {qdt.name!r} has {count} content components, expected exactly one",
                    qdt.qualified_name,
                )

    @engine.register("UPCC-D03", "a QDT must restrict its base CDT", basic=True)
    def qdt_restriction(model: CctsModel, report: ValidationReport) -> None:
        for qdt in model.qdts():
            for problem in check_qdt_restriction(qdt):
                report.error("UPCC-D03", problem, qdt.qualified_name)

    @engine.register("UPCC-D04", "CON/SUP components must be typed by PRIM or ENUM", basic=True)
    def component_types(model: CctsModel, report: ValidationReport) -> None:
        for data_type in list(model.cdts()) + list(model.qdts()):
            components = list(data_type.supplementary_components)
            content = data_type.content_component
            if content is not None:
                components.append(content)
            for component in components:
                type_ = component.element.type
                if type_ is None:
                    continue  # UPCC-P03 reports untyped attributes
                if not (type_.has_stereotype(PRIM) or type_.has_stereotype(ENUM)):
                    report.error(
                        "UPCC-D04",
                        f"component {component.name!r} of {data_type.name!r} is typed by "
                        f"{type_.name!r} which is neither a PRIM nor an ENUM",
                        component.qualified_name,
                    )

    @engine.register("UPCC-D05", "enumerations must define at least one literal")
    def enum_literals(model: CctsModel, report: ValidationReport) -> None:
        for element in model.model.all_with_stereotype(ENUM):
            if isinstance(element, Enumeration) and not element.literals:
                report.warning(
                    "UPCC-D05",
                    f"enumeration {element.name!r} has no literals; the generated "
                    f"simpleType would accept nothing",
                    element.qualified_name,
                )

    @engine.register("UPCC-D06", "enumeration literal names must be unique")
    def enum_literal_uniqueness(model: CctsModel, report: ValidationReport) -> None:
        for element in model.model.all_with_stereotype(ENUM):
            if not isinstance(element, Enumeration):
                continue
            seen: set[str] = set()
            for literal in element.literals:
                if literal.name in seen:
                    report.error(
                        "UPCC-D06",
                        f"enumeration {element.name!r} defines literal {literal.name!r} twice",
                        element.qualified_name,
                    )
                seen.add(literal.name)

    @engine.register("UPCC-D07", "primitive names should map to XSD built-ins")
    def prim_mapping(model: CctsModel, report: ValidationReport) -> None:
        from repro.xsdgen.primitives import builtin_for_primitive_name

        for element in model.model.all_with_stereotype(PRIM):
            if isinstance(element, PrimitiveType):
                if builtin_for_primitive_name(element.name) is None:
                    report.warning(
                        "UPCC-D07",
                        f"primitive {element.name!r} has no known XSD built-in mapping; "
                        f"the generator will fall back to xsd:string",
                        element.qualified_name,
                    )

    @engine.register("UPCC-D09", "widened QDT supplementary multiplicities are reported")
    def qdt_widening(model: CctsModel, report: ValidationReport) -> None:
        for qdt in model.qdts():
            for finding in qdt_widened_supplementaries(qdt):
                report.warning("UPCC-D09", finding, qdt.qualified_name)

    @engine.register("UPCC-D08", "QDT enum restrictions must reference ENUM elements")
    def qdt_enum_links(model: CctsModel, report: ValidationReport) -> None:
        for qdt in model.qdts():
            content = qdt.content_component
            if content is None:
                continue
            type_ = content.element.type
            if isinstance(type_, Enumeration) and not type_.has_stereotype(ENUM):
                report.error(
                    "UPCC-D08",
                    f"QDT {qdt.name!r} content is restricted by enumeration {type_.name!r} "
                    f"which lacks the <<ENUM>> stereotype",
                    qdt.qualified_name,
                )
