"""Naming rules: XML-name viability and qualifier conventions."""

from __future__ import annotations

from repro.ccts.model import CctsModel
from repro.ccts.naming import strip_qualifier
from repro.errors import NamingError
from repro.ndr.names import sanitize_ncname
from repro.uml.classifier import Classifier
from repro.uml.property import Property
from repro.validation.diagnostics import ValidationReport
from repro.validation.engine import ValidationEngine


def register(engine: ValidationEngine) -> None:
    """Register the naming rules."""

    @engine.register("UPCC-N01", "model names must yield valid XML names", basic=True)
    def xml_name_viability(model: CctsModel, report: ValidationReport) -> None:
        for element in model.model.all_of_type(Classifier):
            if not element.stereotypes:
                continue
            _check_name(element.name, element.qualified_name, report)
        for prop in model.model.all_of_type(Property):
            if not prop.stereotypes:
                continue
            _check_name(prop.name, prop.qualified_name, report)

    @engine.register("UPCC-N02", "ABIE names should qualify their base ACC's name")
    def abie_qualifier_convention(model: CctsModel, report: ValidationReport) -> None:
        for abie in model.abies():
            base = abie.based_on
            if base is None:
                continue
            qualifier, core_name = strip_qualifier(abie.name)
            if core_name != base.name and abie.name != base.name:
                report.warning(
                    "UPCC-N02",
                    f"ABIE {abie.name!r} is based on ACC {base.name!r} but its name is "
                    f"neither the ACC name nor a qualified form of it (expected e.g. "
                    f"{'X_' + base.name!r})",
                    abie.qualified_name,
                )
            _ = qualifier

    @engine.register("UPCC-N03", "qualifiers should be short upper-case tokens")
    def qualifier_shape(model: CctsModel, report: ValidationReport) -> None:
        for abie in model.abies():
            qualifier, _ = strip_qualifier(abie.name)
            if qualifier and not qualifier[0].isupper():
                report.info(
                    "UPCC-N03",
                    f"ABIE qualifier {qualifier!r} on {abie.name!r} is not capitalized; "
                    f"CCTS qualifiers conventionally are",
                    abie.qualified_name,
                )

    @engine.register("UPCC-N04", "library names become URN segments and should avoid colons", basic=True)
    def library_name_shape(model: CctsModel, report: ValidationReport) -> None:
        for library in model.libraries():
            if ":" in library.name or "/" in library.name or " " in library.name:
                report.error(
                    "UPCC-N04",
                    f"library name {library.name!r} contains characters that break URN or "
                    f"file-name construction (colon, slash or space)",
                    library.qualified_name,
                )


def _check_name(name: str, location: str, report: ValidationReport) -> None:
    if not name:
        report.error("UPCC-N01", "element has an empty name", location)
        return
    try:
        sanitize_ncname(name)
    except NamingError as exc:
        report.error("UPCC-N01", str(exc), location)
