"""Business-information-entity rules: derivation and document assembly."""

from __future__ import annotations

from repro.ccts.derivation import check_abie_restriction
from repro.ccts.model import CctsModel
from repro.profile import CDT, QDT
from repro.validation.diagnostics import ValidationReport
from repro.validation.engine import ValidationEngine


def register(engine: ValidationEngine) -> None:
    """Register the BIE rules."""

    @engine.register("UPCC-B01", "every ABIE must be based on an ACC", basic=True)
    def abie_based_on(model: CctsModel, report: ValidationReport) -> None:
        for abie in model.abies():
            if model.model.dependencies_of(abie.element, "basedOn"):
                continue
            report.error(
                "UPCC-B01",
                f"ABIE {abie.name!r} has no basedOn dependency; ABIEs are exclusively "
                f"derived from ACCs by restriction",
                abie.qualified_name,
            )

    @engine.register("UPCC-B02", "ABIE derivations must be genuine restrictions", basic=True)
    def abie_restriction(model: CctsModel, report: ValidationReport) -> None:
        for abie in model.abies():
            if not model.model.dependencies_of(abie.element, "basedOn"):
                continue  # UPCC-B01 reports the missing link
            for problem in check_abie_restriction(abie):
                report.error("UPCC-B02", problem, abie.qualified_name)

    @engine.register("UPCC-B03", "BBIEs must be typed by CDTs or QDTs", basic=True)
    def bbie_types(model: CctsModel, report: ValidationReport) -> None:
        for abie in model.abies():
            for bbie in abie.bbies:
                type_ = bbie.element.type
                if type_ is None:
                    continue  # UPCC-P03 reports untyped attributes
                if not (type_.has_stereotype(CDT) or type_.has_stereotype(QDT)):
                    report.error(
                        "UPCC-B03",
                        f"BBIE {abie.name}.{bbie.name} is typed by {type_.name!r} which is "
                        f"neither a CDT nor a QDT",
                        bbie.qualified_name,
                    )

    @engine.register("UPCC-B04", "ASBIE role names must be unique per source ABIE", basic=True)
    def asbie_role_uniqueness(model: CctsModel, report: ValidationReport) -> None:
        for abie in model.abies():
            seen: set[tuple[str, str]] = set()
            for asbie in abie.asbies:
                key = (asbie.role, asbie.target.name)
                if key in seen:
                    report.error(
                        "UPCC-B04",
                        f"ABIE {abie.name!r} has two ASBIEs with role {asbie.role!r} to "
                        f"{asbie.target.name!r}; their NDR compound names would collide",
                        abie.qualified_name,
                    )
                seen.add(key)

    @engine.register("UPCC-B05", "ASBIE compound element names must be unique per ABIE", basic=True)
    def asbie_compound_names(model: CctsModel, report: ValidationReport) -> None:
        for abie in model.abies():
            names = [bbie.name for bbie in abie.bbies]
            for asbie in abie.asbies:
                names.append(asbie.compound_name())
            duplicates = {name for name in names if names.count(name) > 1}
            for name in sorted(duplicates):
                report.error(
                    "UPCC-B05",
                    f"ABIE {abie.name!r} would generate element name {name!r} more than once",
                    abie.qualified_name,
                )

    @engine.register("UPCC-B06", "DOC libraries need at least one root candidate", basic=True)
    def doc_roots(model: CctsModel, report: ValidationReport) -> None:
        for library in model.doc_libraries():
            if not library.abies:
                report.error(
                    "UPCC-B06",
                    f"DOCLibrary {library.name!r} defines no ABIE; there is nothing to "
                    f"select as the schema root",
                    library.qualified_name,
                )

    @engine.register("UPCC-B07", "unused ABIEs in DOC libraries are reported")
    def doc_unused(model: CctsModel, report: ValidationReport) -> None:
        for library in model.doc_libraries():
            targeted = {
                asbie.target.element
                for abie in model.abies()
                for asbie in abie.asbies
            }
            for abie in library.abies:
                if abie.element not in targeted and not abie.asbies and not abie.bbies:
                    report.info(
                        "UPCC-B07",
                        f"ABIE {abie.name!r} in DOCLibrary {library.name!r} is empty and "
                        f"never referenced",
                        abie.qualified_name,
                    )
