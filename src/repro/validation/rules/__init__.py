"""The UPCC well-formedness rule set.

Rules are grouped by concern and carry stable codes:

* ``UPCC-Pxx`` -- profile/structure rules (:mod:`.structure`),
* ``UPCC-Dxx`` -- data-type rules (:mod:`.data_types`),
* ``UPCC-Cxx`` -- core-component rules (:mod:`.components`),
* ``UPCC-Bxx`` -- business-information-entity rules (:mod:`.bie`),
* ``UPCC-Lxx`` -- library rules (:mod:`.libraries`),
* ``UPCC-Nxx`` -- naming rules (:mod:`.naming`).

Rules flagged ``basic`` form the pre-generation check the paper describes
("the transformer performs a basic model validation").
"""

from repro.validation.engine import ValidationEngine
from repro.validation.rules import bie, components, data_types, libraries, naming, structure


def build_default_rules() -> ValidationEngine:
    """Assemble the engine with every rule module registered."""
    engine = ValidationEngine()
    structure.register(engine)
    data_types.register(engine)
    components.register(engine)
    bie.register(engine)
    libraries.register(engine)
    naming.register(engine)
    return engine


__all__ = ["build_default_rules"]
