"""Diagnostics produced by the validation engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings abort schema generation (the paper: "In case the UML
    model is erroneous, the generation aborts and the user is presented an
    error message"); ``WARNING`` findings are reported but non-fatal;
    ``INFO`` findings are advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class SourceLocation:
    """A 1-based line/column position in a source document.

    Used by located diagnostics such as the XMI reader's ``LoadIssue``
    records; ``column`` may be ``None`` when only the line is known.
    """

    line: int
    column: int | None = None

    def __str__(self) -> str:
        if self.column is None:
            return f"line {self.line}"
        return f"line {self.line}, column {self.column}"


@dataclass(frozen=True)
class Diagnostic:
    """One validation finding.

    ``location`` is a human-readable model location (a qualified name or
    element path); ``source`` optionally pins the finding to a position in
    the source document the model was loaded from.
    """

    severity: Severity
    code: str
    message: str
    location: str = ""
    source: SourceLocation | None = None

    def __str__(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        if self.source is not None:
            where += f" ({self.source})"
        return f"{self.severity.value.upper()} {self.code}: {self.message}{where}"


@dataclass
class ValidationReport:
    """The collected findings of one validation run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, severity: Severity, code: str, message: str, location: str = "") -> None:
        """Record one finding."""
        self.diagnostics.append(Diagnostic(severity, code, message, location))

    def error(self, code: str, message: str, location: str = "") -> None:
        """Record an error finding."""
        self.add(Severity.ERROR, code, message, location)

    def warning(self, code: str, message: str, location: str = "") -> None:
        """Record a warning finding."""
        self.add(Severity.WARNING, code, message, location)

    def info(self, code: str, message: str, location: str = "") -> None:
        """Record an info finding."""
        self.add(Severity.INFO, code, message, location)

    @property
    def errors(self) -> list[Diagnostic]:
        """All error findings."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        """All warning findings."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no error findings were recorded."""
        return not self.errors

    def extend(self, other: "ValidationReport") -> None:
        """Merge another report into this one."""
        self.diagnostics.extend(other.diagnostics)

    def summary(self) -> str:
        """One-line summary for status displays."""
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.diagnostics)} finding(s) total"
        )

    def __str__(self) -> str:
        if not self.diagnostics:
            return "validation passed with no findings"
        return "\n".join(str(diagnostic) for diagnostic in self.diagnostics)
