"""Instance-document validation against a set of generated schemas.

This is the consumer side of the paper's pipeline: "The schemas are then
used to validate XML messages exchanged during a business process."
:class:`SchemaSet` aggregates the schema documents a generation run
produced (one per library) and :func:`validate_instance` walks an instance
document, matching content models, attribute uses and simple-type facets.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Literal

from repro.errors import InstanceValidationError, SchemaError
from repro.xmlutil.qname import XML_NAMESPACE, QName, split_qname
from repro.xmlutil.writer import XmlElement, parse_xml
from repro.xsd import datatypes
from repro.xsd.components import (
    XSD_NS,
    AttributeDecl,
    AttributeUse,
    ComplexType,
    ElementDecl,
    Facet,
    Schema,
    SimpleType,
)
from repro.xsd.content_model import CompiledModel, MatchResult, match_backtracking
from repro.xsd.parser import parse_schema

Engine = Literal["nfa", "backtracking"]

#: Attributes the validator ignores on instance elements.  The XML
#: namespace is listed because ``xml:lang``/``xml:space`` are implicitly
#: available on any element without a schema declaration.
_IGNORED_ATTR_NAMESPACES = (
    "http://www.w3.org/2001/XMLSchema-instance",
    "http://www.w3.org/2000/xmlns/",
    XML_NAMESPACE,
)


@dataclass(frozen=True)
class ValidationProblem:
    """One validation finding: an element path plus a message."""

    path: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}: {self.message}"


@dataclass
class _ResolvedElement:
    """An instance element with names resolved to QNames."""

    qname: QName
    attributes: dict[QName, str]
    children: list["_ResolvedElement"]
    text: str


def _resolve_instance(element: XmlElement, inherited: dict[str | None, str]) -> _ResolvedElement:
    scope = dict(inherited)
    plain_attrs: list[tuple[str, str]] = []
    for name, value in element.attributes.items():
        if name == "xmlns":
            scope[None] = value
        elif name.startswith("xmlns:"):
            scope[name[len("xmlns:"):]] = value
        else:
            plain_attrs.append((name, value))
    try:
        prefix, local = split_qname(element.tag)
    except ValueError as error:
        raise InstanceValidationError(str(error)) from None
    if prefix == "xml":
        # The xml prefix is implicitly bound and needs no declaration.
        namespace = XML_NAMESPACE
    else:
        namespace = scope.get(prefix, "") if prefix is not None else scope.get(None, "")
        if prefix is not None and prefix not in scope:
            raise InstanceValidationError(
                f"undeclared prefix {prefix!r} on element {element.tag!r}"
            )
    attributes: dict[QName, str] = {}
    for name, value in plain_attrs:
        try:
            attr_prefix, attr_local = split_qname(name)
        except ValueError as error:
            raise InstanceValidationError(str(error)) from None
        # Unprefixed attributes live in no namespace per the XML spec;
        # xml:* attributes live in the implicitly declared XML namespace.
        if attr_prefix == "xml":
            attr_namespace = XML_NAMESPACE
        elif attr_prefix is not None:
            attr_namespace = scope.get(attr_prefix, "")
        else:
            attr_namespace = ""
        attributes[QName(attr_namespace, attr_local)] = value
    return _ResolvedElement(
        qname=QName(namespace, local),
        attributes=attributes,
        children=[_resolve_instance(child, scope) for child in element.element_children],
        text=element.text_content,
    )


class SchemaSet:
    """A namespace-indexed collection of schema documents."""

    def __init__(self, schemas: list[Schema] | None = None) -> None:
        self._by_namespace: dict[str, Schema] = {}
        self._model_cache: dict[int, CompiledModel] = {}
        for schema in schemas or []:
            self.add(schema)

    def add(self, schema: Schema) -> None:
        """Register a schema; later additions win on namespace collision."""
        self._by_namespace[schema.target_namespace] = schema

    @classmethod
    def from_files(cls, paths: list[str | Path]) -> "SchemaSet":
        """Load schema documents from disk."""
        schema_set = cls()
        for path in paths:
            schema_set.add(parse_schema(Path(path).read_text(encoding="utf-8")))
        return schema_set

    @classmethod
    def from_directory(cls, directory: str | Path) -> "SchemaSet":
        """Load every ``*.xsd`` under ``directory`` (recursively)."""
        return cls.from_files(sorted(Path(directory).rglob("*.xsd")))

    # -- lookups ---------------------------------------------------------------

    @property
    def namespaces(self) -> list[str]:
        """All registered target namespaces."""
        return list(self._by_namespace)

    def schema_for(self, namespace: str) -> Schema:
        """The schema with the given target namespace."""
        schema = self._by_namespace.get(namespace)
        if schema is None:
            raise SchemaError(f"no schema registered for namespace {namespace!r}")
        return schema

    def find_type(self, qname: QName) -> ComplexType | SimpleType | None:
        """The global type definition named ``qname``, if registered."""
        schema = self._by_namespace.get(qname.namespace)
        if schema is None:
            return None
        for item in schema.items:
            if isinstance(item, (ComplexType, SimpleType)) and item.name == qname.local:
                return item
        return None

    def find_global_element(self, qname: QName) -> ElementDecl | None:
        """The global element declaration named ``qname``, if registered."""
        schema = self._by_namespace.get(qname.namespace)
        if schema is None:
            return None
        for item in schema.global_elements:
            if item.name == qname.local:
                return item
        return None

    def compiled_model(self, complex_type: ComplexType, schema: Schema) -> CompiledModel:
        """The (cached) compiled content model of a complex type."""
        key = id(complex_type)
        model = self._model_cache.get(key)
        if model is None:
            model = CompiledModel(complex_type.particle, lambda decl: self.symbol_of(decl, schema))
            self._model_cache[key] = model
        return model

    def symbol_of(self, decl: ElementDecl, schema: Schema) -> QName:
        """The instance QName an element declaration matches."""
        if decl.is_ref:
            return decl.ref
        namespace = schema.target_namespace if schema.element_form_default == "qualified" else ""
        return QName(namespace, decl.name)


def validate_instance(
    schema_set: SchemaSet,
    document: XmlElement | str,
    engine: Engine = "nfa",
) -> list[ValidationProblem]:
    """Validate an instance document; returns all problems found (empty = valid)."""
    if isinstance(document, str):
        try:
            document = parse_xml(document)
        except Exception as error:
            raise InstanceValidationError(f"document is not well-formed XML: {error}") from error
    root = _resolve_instance(document, {})
    validator = _Validator(schema_set, engine)
    decl = schema_set.find_global_element(root.qname)
    if decl is None:
        return [
            ValidationProblem(
                f"/{root.qname.local}",
                f"no global element declaration for {root.qname.clark()}",
            )
        ]
    validator.validate_element(root, decl, schema_set.schema_for(root.qname.namespace), f"/{root.qname.local}")
    return validator.problems


def assert_valid(schema_set: SchemaSet, document: XmlElement | str) -> None:
    """Raise :class:`InstanceValidationError` when the document is invalid."""
    problems = validate_instance(schema_set, document)
    if problems:
        details = "; ".join(str(problem) for problem in problems[:10])
        raise InstanceValidationError(f"{len(problems)} validation problem(s): {details}")


class _Validator:
    """Stateful tree walker accumulating :class:`ValidationProblem` items."""

    def __init__(self, schema_set: SchemaSet, engine: Engine) -> None:
        self.schema_set = schema_set
        self.engine = engine
        self.problems: list[ValidationProblem] = []

    def _report(self, path: str, message: str) -> None:
        self.problems.append(ValidationProblem(path, message))

    # -- elements ----------------------------------------------------------------

    def validate_element(
        self, element: _ResolvedElement, decl: ElementDecl, schema: Schema, path: str
    ) -> None:
        if decl.is_ref:
            target = self.schema_set.find_global_element(decl.ref)
            if target is None:
                self._report(path, f"dangling element reference {decl.ref.clark()}")
                return
            self.validate_element(element, target, self.schema_set.schema_for(decl.ref.namespace), path)
            return
        if decl.type is None:
            return  # anyType: accept anything
        self.validate_against_type(element, decl.type, path)

    def validate_against_type(self, element: _ResolvedElement, type_name: QName, path: str) -> None:
        if type_name.namespace == XSD_NS:
            self._validate_simple(element, type_name, [], path)
            return
        definition = self.schema_set.find_type(type_name)
        if definition is None:
            self._report(path, f"unresolved type {type_name.clark()}")
            return
        if isinstance(definition, SimpleType):
            self._validate_simple(element, type_name, [], path)
            return
        if definition.simple_content is not None:
            self._validate_simple_content(element, definition, path)
            return
        self._validate_complex(element, definition, type_name, path)

    def _validate_simple(
        self, element: _ResolvedElement, type_name: QName, facets: list[Facet], path: str
    ) -> None:
        """An element whose type is a built-in or a global simple type."""
        if element.children:
            self._report(path, f"simple-typed element must not have children")
        self._check_attributes(element, [], path)
        self._validate_simple_value(element.text, type_name, facets, path)

    # -- complex content --------------------------------------------------------------

    def _validate_complex(
        self, element: _ResolvedElement, definition: ComplexType, type_name: QName, path: str
    ) -> None:
        schema = self.schema_set.schema_for(type_name.namespace)
        if element.text.strip():
            self._report(path, f"unexpected character content in complex type {definition.name!r}")
        self._check_attributes(element, definition.attributes, path)
        tokens = [child.qname for child in element.children]
        if definition.particle is None:
            if tokens:
                self._report(path, f"type {definition.name!r} allows no children, found {len(tokens)}")
            return
        result = self._match(definition, schema, tokens)
        if not result.ok:
            self._report(path, result.describe_failure())
            return
        for child, child_decl in zip(element.children, result.assignments):
            child_path = f"{path}/{child.qname.local}"
            self.validate_element(child, child_decl, schema, child_path)

    def _match(self, definition: ComplexType, schema: Schema, tokens: list[QName]) -> MatchResult:
        if self.engine == "backtracking":
            return match_backtracking(
                definition.particle, tokens, lambda decl: self.schema_set.symbol_of(decl, schema)
            )
        return self.schema_set.compiled_model(definition, schema).match(tokens)

    # -- simple content -------------------------------------------------------------------

    def _validate_simple_content(
        self, element: _ResolvedElement, definition: ComplexType, path: str
    ) -> None:
        if element.children:
            self._report(path, f"type {definition.name!r} has simple content but children were found")
        base, attributes, facets = self._flatten_simple_content(definition, path)
        self._check_attributes(element, attributes, path)
        if base is not None:
            self._validate_simple_value(element.text, base, facets, path)

    def _flatten_simple_content(
        self, definition: ComplexType, path: str
    ) -> tuple[QName | None, list[AttributeDecl], list[Facet]]:
        """Walk the simpleContent derivation chain; returns (base, attrs, facets)."""
        content = definition.simple_content
        assert content is not None
        base = content.base
        facets = list(content.facets)
        if base.namespace == XSD_NS:
            return base, list(content.attributes), facets
        base_definition = self.schema_set.find_type(base)
        if base_definition is None:
            self._report(path, f"unresolved simpleContent base {base.clark()}")
            return None, list(content.attributes), facets
        if isinstance(base_definition, SimpleType):
            return base, list(content.attributes), facets
        if base_definition.simple_content is None:
            self._report(path, f"simpleContent base {base.clark()} is not a simple-content type")
            return None, list(content.attributes), facets
        inherited_base, inherited_attrs, inherited_facets = self._flatten_simple_content(
            base_definition, path
        )
        if content.derivation == "extension":
            merged = inherited_attrs + content.attributes
        else:
            by_name = {attribute.name: attribute for attribute in inherited_attrs}
            for attribute in content.attributes:
                by_name[attribute.name] = attribute
            merged = list(by_name.values())
        return inherited_base, merged, inherited_facets + facets

    # -- simple values ----------------------------------------------------------------------

    def _validate_simple_value(
        self, value: str, type_name: QName, extra_facets: list[Facet], path: str
    ) -> None:
        base, facets = self._flatten_simple_type(type_name, path)
        facets = facets + extra_facets
        if base is None:
            return
        normalized = datatypes.normalize_whitespace(base, value)
        if not datatypes.check_builtin(base, normalized):
            self._report(path, f"value {value!r} is not a valid {base.local}")
            return
        for problem in datatypes.check_facets(facets, normalized, base):
            self._report(path, problem)

    def _flatten_simple_type(self, type_name: QName, path: str) -> tuple[QName | None, list[Facet]]:
        """Resolve a simple type to its built-in base plus accumulated facets."""
        if type_name.namespace == XSD_NS:
            return type_name, []
        definition = self.schema_set.find_type(type_name)
        if definition is None:
            self._report(path, f"unresolved simple type {type_name.clark()}")
            return None, []
        if isinstance(definition, ComplexType):
            self._report(path, f"type {type_name.clark()} is complex where a simple type is required")
            return None, []
        base, facets = self._flatten_simple_type(definition.base, path)
        return base, facets + list(definition.facets)

    # -- attributes --------------------------------------------------------------------------

    def _check_attributes(
        self, element: _ResolvedElement, declared: list[AttributeDecl], path: str
    ) -> None:
        by_name = {attribute.name: attribute for attribute in declared}
        seen: set[str] = set()
        for qname, value in element.attributes.items():
            if qname.namespace in _IGNORED_ATTR_NAMESPACES:
                continue
            declaration = by_name.get(qname.local) if not qname.namespace else None
            if declaration is None:
                self._report(path, f"undeclared attribute {qname.clark()!r}")
                continue
            if declaration.use is AttributeUse.PROHIBITED:
                self._report(path, f"attribute {qname.local!r} is prohibited here")
                continue
            seen.add(qname.local)
            self._validate_simple_value(value, declaration.type, [], f"{path}/@{qname.local}")
        for attribute in declared:
            if attribute.use is AttributeUse.REQUIRED and attribute.name not in seen:
                self._report(path, f"missing required attribute {attribute.name!r}")
