"""Compiled instance validation: zero schema-graph walking per document.

:func:`~repro.xsd.validator.validate_instance` re-resolves every type
reference, re-flattens every simple-type derivation chain and re-parses
every facet on every call -- fine for one document, wasteful for the
corpus-sized workloads the paper's pipeline ends in ("The schemas are then
used to validate XML messages exchanged during a business process").

:class:`CompiledSchemaSet` front-loads all of that at construction:

* global element and type lookups become dict hits (the interpreted
  ``find_type`` scans ``schema.items`` linearly per call),
* one :class:`~repro.xsd.content_model.CompiledModel` NFA is pre-built per
  complex type (the interpreted path builds them lazily per ``SchemaSet``),
* simple-type derivation chains and simpleContent hierarchies are
  flattened once, their facets pre-compiled via
  :func:`~repro.xsd.datatypes.compile_facets` (patterns compiled once,
  numeric bounds parsed once),
* every element declaration -- global or nested in a particle -- gets a
  resolved validation plan, including the diagnostic messages schema
  defects will produce (dangling references, unresolved types).

The compiled walk produces the *same* :class:`ValidationProblem` list, in
the same order, as ``validate_instance(..., engine="nfa")`` -- asserted
property-based in ``tests/test_instance_pipeline.py``.

Compiled sets are cached in a :class:`CompilationCache` (the LRU pattern
of :class:`~repro.xsdgen.cache.GenerationCache`) keyed by
:func:`fingerprint_schema_set`, so repeated pipeline runs over one schema
set compile once.  Observability: the ``instances.compile`` span,
``instances.compile_hits``/``compile_misses``/``compile_evictions``
counters and the ``instances.compile_cache_size`` gauge (see
docs/observability.md).
"""

from __future__ import annotations

import hashlib
import threading
import xml.etree.ElementTree as ET
import xml.parsers.expat
from collections import OrderedDict
from typing import Callable

from repro.errors import InstanceValidationError, SchemaError
from repro.obs.metrics import counter, gauge
from repro.obs.trace import span
from repro.xmlutil.qname import XML_NAMESPACE, QName, split_qname
from repro.xmlutil.writer import XmlElement
from repro.xsd import datatypes
from repro.xsd.components import (
    XSD_NS,
    AttributeDecl,
    AttributeUse,
    ComplexType,
    ElementDecl,
    Facet,
    Schema,
    SimpleType,
)
from repro.xsd.content_model import CompiledModel, DeterminizedModel, determinize
from repro.xsd.validator import (
    SchemaSet,
    ValidationProblem,
    _IGNORED_ATTR_NAMESPACES,
    _ResolvedElement,
    _resolve_instance,
)
from repro.xsd.writer import schema_to_string

__all__ = [
    "CompilationCache",
    "CompiledSchemaSet",
    "compile_schema_set",
    "fingerprint_schema_set",
    "get_compilation_cache",
    "set_compilation_cache",
]


def fingerprint_schema_set(schema_set: SchemaSet) -> str:
    """A stable content hash of a schema set (serialized schema bytes).

    Two sets holding structurally identical schemas fingerprint alike
    regardless of load order; any change that can alter validation
    behavior changes the serialized form and therefore the digest.
    """
    digest = hashlib.sha256()
    for namespace in sorted(schema_set.namespaces):
        digest.update(namespace.encode("utf-8"))
        digest.update(b"\x1f")
        digest.update(schema_to_string(schema_set.schema_for(namespace)).encode("utf-8"))
        digest.update(b"\x1e")
    return digest.hexdigest()


# -- parsing straight to resolved form ----------------------------------------
#
# The interpreted path parses into an XmlElement tree and then converts it
# into namespace-resolved form (two tree constructions per document).  The
# compiled path parses with expat directly into resolved nodes, with
# per-scope tag/attribute memos and process-wide QName interning -- and
# reproduces the interpreted path's behavior exactly: the same text-node
# rules, the same error messages, the same namespace fallbacks.

_qname_intern: dict[tuple[str, str], QName] = {}
_QNAME_INTERN_LIMIT = 8192


def _intern_qname(namespace: str, local: str) -> QName:
    key = (namespace, local)
    qname = _qname_intern.get(key)
    if qname is None:
        if len(_qname_intern) >= _QNAME_INTERN_LIMIT:
            _qname_intern.clear()
        qname = QName(namespace, local)
        _qname_intern[key] = qname
    return qname


class _Scope:
    """One in-scope prefix map plus per-scope name-resolution memos."""

    __slots__ = ("map", "tags", "attrs")

    def __init__(self, map: dict[str | None, str]) -> None:
        self.map = map
        self.tags: dict[str, QName] = {}
        self.attrs: dict[str, QName] = {}

    def resolve_tag(self, tag: str) -> QName:
        qname = self.tags.get(tag)
        if qname is None:
            try:
                prefix, local = split_qname(tag)
            except ValueError as error:
                raise InstanceValidationError(str(error)) from None
            if prefix == "xml":
                # Implicitly declared on every document (mirroring the
                # interpreted resolver and ElementTree's C parser).
                namespace = XML_NAMESPACE
            elif prefix is not None:
                namespace = self.map.get(prefix)
                if namespace is None:
                    raise InstanceValidationError(
                        f"undeclared prefix {prefix!r} on element {tag!r}"
                    )
            else:
                namespace = self.map.get(None, "")
            qname = _intern_qname(namespace, local)
            self.tags[tag] = qname
        return qname

    def resolve_attr(self, name: str) -> QName:
        qname = self.attrs.get(name)
        if qname is None:
            try:
                prefix, local = split_qname(name)
            except ValueError as error:
                raise InstanceValidationError(str(error)) from None
            # Unprefixed attributes live in no namespace per the XML spec;
            # xml:* lives in the implicit XML namespace; any other
            # undeclared prefix falls back to no namespace (mirroring the
            # interpreted resolver).
            if prefix == "xml":
                namespace = XML_NAMESPACE
            else:
                namespace = self.map.get(prefix, "") if prefix is not None else ""
            qname = _intern_qname(namespace, local)
            self.attrs[name] = qname
        return qname


class _Node:
    """A namespace-resolved instance element (the compiled walk's input)."""

    __slots__ = ("qname", "attributes", "children", "text")

    def __init__(self, qname: QName, attributes: dict[QName, str]) -> None:
        self.qname = qname
        self.attributes = attributes
        self.children: list[_Node] = []
        self.text = ""


class _Frame:
    __slots__ = ("node", "scope", "texts", "has_element_child")

    def __init__(self, node: _Node, scope: _Scope) -> None:
        self.node = node
        self.scope = scope
        self.texts: list[str] = []
        self.has_element_child = False


_clark_intern: dict[str, QName] = {}


def _intern_clark(name: str) -> QName:
    """The interned QName of an ElementTree ``{namespace}local`` name."""
    qname = _clark_intern.get(name)
    if qname is None:
        if len(_clark_intern) >= _QNAME_INTERN_LIMIT:
            _clark_intern.clear()
        if name.startswith("{"):
            namespace, _, local = name[1:].partition("}")
        else:
            namespace, local = "", name
        qname = _intern_qname(namespace, local)
        _clark_intern[name] = qname
    return qname


def _parse_document(text: str) -> _Node:
    """Parse ``text`` into resolved nodes, matching the interpreted path.

    Fast path: :func:`xml.etree.ElementTree.fromstring` resolves
    namespaces in C; its parse-error messages are identical to
    :func:`~repro.xmlutil.writer.parse_xml`'s.  The one divergence is an
    undeclared prefix -- ElementTree rejects the document outright where
    the interpreted resolver parses it and then reports the offending
    element -- so that case falls back to :func:`_parse_document_expat`,
    which reproduces the interpreted behavior exactly.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as error:
        if "unbound prefix" in str(error):
            return _parse_document_expat(text)
        raise InstanceValidationError(
            f"document is not well-formed XML: {error}"
        ) from error
    return _convert_tree(root)


_NO_ATTRS: dict = {}


def _convert_tree(element: "ET.Element") -> _Node:
    node = _Node.__new__(_Node)
    attrib = element.attrib
    if attrib:
        node.attributes = {_intern_clark(name): value for name, value in attrib.items()}
    else:
        # Plans never mutate attribute dicts, so attribute-less elements
        # (the common case) share one empty dict.
        node.attributes = _NO_ATTRS
    node.qname = _intern_clark(element.tag)
    children = [_convert_tree(child) for child in element]
    node.children = children
    text = element.text
    # Same text rules as the interpreted reader: only text before the
    # first child element counts, and whitespace-only text counts only in
    # childless elements (children's tail text never does).
    node.text = text if text and (not children or text.strip()) else ""
    return node


def _parse_document_expat(text: str) -> _Node:
    """Parse ``text`` directly into resolved nodes (expat, single pass).

    Raises :class:`InstanceValidationError` with exactly the messages the
    interpreted ``validate_instance`` path produces, for both malformed
    XML and undeclared element prefixes.
    """
    parser = xml.parsers.expat.ParserCreate()
    parser.ordered_attributes = True
    parser.buffer_text = True
    stack: list[_Frame] = []
    roots: list[_Node] = []
    root_scope = _Scope({})

    def handle_start(tag: str, raw_attributes: list[str]) -> None:
        scope = stack[-1].scope if stack else root_scope
        plain: list[tuple[str, str]] | None = None
        new_map: dict[str | None, str] | None = None
        for index in range(0, len(raw_attributes), 2):
            name = raw_attributes[index]
            if name.startswith("xmlns"):
                if name == "xmlns":
                    if new_map is None:
                        new_map = dict(scope.map)
                    new_map[None] = raw_attributes[index + 1]
                    continue
                if name[5] == ":":
                    if new_map is None:
                        new_map = dict(scope.map)
                    new_map[name[6:]] = raw_attributes[index + 1]
                    continue
            if plain is None:
                plain = []
            plain.append((name, raw_attributes[index + 1]))
        if new_map is not None:
            scope = _Scope(new_map)
        attributes: dict[QName, str] = {}
        if plain is not None:
            for name, value in plain:
                attributes[scope.resolve_attr(name)] = value
        node = _Node(scope.resolve_tag(tag), attributes)
        if stack:
            parent = stack[-1]
            parent.has_element_child = True
            parent.node.children.append(node)
        else:
            roots.append(node)
        stack.append(_Frame(node, scope))

    def handle_end(tag: str) -> None:
        frame = stack.pop()
        leading = "".join(frame.texts)
        # Same text rules as the XmlElement reader: only text before the
        # first child element survives; whitespace-only runs survive only
        # in childless elements.
        if leading.strip() or (leading and not frame.has_element_child):
            frame.node.text = leading

    def handle_text(data: str) -> None:
        if stack and not stack[-1].has_element_child:
            stack[-1].texts.append(data)

    parser.StartElementHandler = handle_start
    parser.EndElementHandler = handle_end
    parser.CharacterDataHandler = handle_text
    try:
        parser.Parse(text, True)
    except xml.parsers.expat.ExpatError as error:
        raise InstanceValidationError(
            f"document is not well-formed XML: {error}"
        ) from error
    if not roots:
        raise InstanceValidationError(
            "document is not well-formed XML: document contained no root element"
        )
    return roots[0]


# -- pre-compiled plan nodes ---------------------------------------------------
#
# Plans carry the element *path* as a mutable segment stack and only
# materialize the "/A/B/C" string when a problem is actually reported --
# valid content (the common case) allocates no path strings at all.


def _materialize(segments: list[str]) -> str:
    return "/" + "/".join(segments)


def _value_path(segments: list[str], attribute: str) -> str:
    path = "/" + "/".join(segments)
    if attribute:
        return f"{path}/@{attribute}"
    return path


class _ValueCheck:
    """A pre-flattened simple-value check (built-in base + compiled facets)."""

    __slots__ = ("messages", "base", "normalize", "lexical", "facet_check")

    def __init__(
        self,
        messages: tuple[str, ...],
        base: QName | None,
        facet_check: Callable[[str], list[str]] | None,
    ) -> None:
        self.messages = messages
        self.base = base
        self.facet_check = facet_check
        if base is not None:
            self.normalize, self.lexical = datatypes.compile_builtin(base)
        else:
            self.normalize = self.lexical = None

    def run(
        self,
        value: str,
        segments: list[str],
        attribute: str,
        problems: list[ValidationProblem],
    ) -> None:
        if self.messages:
            path = _value_path(segments, attribute)
            for message in self.messages:
                problems.append(ValidationProblem(path, message))
        base = self.base
        if base is None:
            return
        normalized = self.normalize(value)
        if not self.lexical(normalized):
            problems.append(
                ValidationProblem(
                    _value_path(segments, attribute),
                    f"value {value!r} is not a valid {base.local}",
                )
            )
            return
        check = self.facet_check
        if check is None:
            return
        facet_problems = check(normalized)
        if facet_problems:
            path = _value_path(segments, attribute)
            for problem in facet_problems:
                problems.append(ValidationProblem(path, problem))


class _AttrPlan:
    """Pre-indexed attribute uses of one type (lookup dict + required list)."""

    __slots__ = ("by_name", "declared", "required")

    def __init__(
        self,
        by_name: dict[str, tuple[AttributeDecl, _ValueCheck]],
        declared: tuple[tuple[str, bool], ...],
    ) -> None:
        self.by_name = by_name
        self.declared = declared
        # In declared order, so missing-required reports keep the
        # interpreted engine's ordering.
        self.required = tuple(name for name, required in declared if required)

    def run(
        self,
        element: _ResolvedElement,
        segments: list[str],
        problems: list[ValidationProblem],
    ) -> None:
        if not element.attributes and not self.declared:
            return
        required = self.required
        seen: set[str] | None = set() if required else None
        for qname, value in element.attributes.items():
            if qname.namespace in _IGNORED_ATTR_NAMESPACES:
                continue
            entry = self.by_name.get(qname.local) if not qname.namespace else None
            if entry is None:
                problems.append(
                    ValidationProblem(
                        _materialize(segments),
                        f"undeclared attribute {qname.clark()!r}",
                    )
                )
                continue
            declaration, check = entry
            if declaration.use is AttributeUse.PROHIBITED:
                problems.append(
                    ValidationProblem(
                        _materialize(segments),
                        f"attribute {qname.local!r} is prohibited here",
                    )
                )
                continue
            if seen is not None:
                seen.add(qname.local)
            check.run(value, segments, qname.local, problems)
        if required:
            for name in required:
                if name not in seen:
                    problems.append(
                        ValidationProblem(
                            _materialize(segments),
                            f"missing required attribute {name!r}",
                        )
                    )


_EMPTY_ATTRS = _AttrPlan({}, ())


class _AcceptPlan:
    """anyType: accept anything (declaration without a type)."""

    __slots__ = ()

    def run(
        self,
        element: _ResolvedElement,
        segments: list[str],
        problems: list[ValidationProblem],
    ) -> None:
        return


class _ErrorPlan:
    """A schema defect surfaced at every occurrence (e.g. unresolved type)."""

    __slots__ = ("message",)

    def __init__(self, message: str) -> None:
        self.message = message

    def run(
        self,
        element: _ResolvedElement,
        segments: list[str],
        problems: list[ValidationProblem],
    ) -> None:
        problems.append(ValidationProblem(_materialize(segments), self.message))


class _SimplePlan:
    """An element whose type is a built-in or a global simple type."""

    __slots__ = ("value",)

    def __init__(self, value: _ValueCheck) -> None:
        self.value = value

    def run(
        self,
        element: _ResolvedElement,
        segments: list[str],
        problems: list[ValidationProblem],
    ) -> None:
        if element.children:
            problems.append(
                ValidationProblem(
                    _materialize(segments),
                    "simple-typed element must not have children",
                )
            )
        if element.attributes:
            _EMPTY_ATTRS.run(element, segments, problems)
        self.value.run(element.text, segments, "", problems)


class _SimpleContentPlan:
    """A complex type with simpleContent: attributes plus a text value."""

    __slots__ = ("children_message", "content_messages", "attrs", "value")

    def __init__(
        self,
        children_message: str,
        content_messages: tuple[str, ...],
        attrs: _AttrPlan,
        value: _ValueCheck | None,
    ) -> None:
        self.children_message = children_message
        self.content_messages = content_messages
        self.attrs = attrs
        self.value = value

    def run(
        self,
        element: _ResolvedElement,
        segments: list[str],
        problems: list[ValidationProblem],
    ) -> None:
        if element.children:
            problems.append(
                ValidationProblem(_materialize(segments), self.children_message)
            )
        for message in self.content_messages:
            problems.append(ValidationProblem(_materialize(segments), message))
        self.attrs.run(element, segments, problems)
        if self.value is not None:
            self.value.run(element.text, segments, "", problems)


class _ComplexPlan:
    """A complex type: content-model NFA plus per-child compiled plans.

    Filled in two phases (registered before its children compile) so
    recursive types -- a type containing elements of itself -- terminate.
    """

    __slots__ = (
        "text_message",
        "attrs",
        "model",
        "dfa",
        "no_children_prefix",
        "child_plans",
    )

    def __init__(self) -> None:
        self.text_message = ""
        self.attrs = _EMPTY_ATTRS
        self.model: CompiledModel | DeterminizedModel | None = None
        self.dfa: list | None = None
        self.no_children_prefix = ""
        self.child_plans: dict[int, object] = {}

    def set_model(self, model: CompiledModel | DeterminizedModel) -> None:
        self.model = model
        # Keep the raw DFA tables at hand so run() can walk them inline
        # without allocating a MatchResult for every valid element.
        self.dfa = model._tables if isinstance(model, DeterminizedModel) else None

    def run(
        self,
        element: _ResolvedElement,
        segments: list[str],
        problems: list[ValidationProblem],
    ) -> None:
        if element.text.strip():
            problems.append(ValidationProblem(_materialize(segments), self.text_message))
        self.attrs.run(element, segments, problems)
        children = element.children
        model = self.model
        if model is None:
            if children:
                problems.append(
                    ValidationProblem(
                        _materialize(segments),
                        self.no_children_prefix + str(len(children)),
                    )
                )
            return
        dfa = self.dfa
        if dfa is not None:
            state = 0
            decls: list = []
            for child in children:
                entry = dfa[state][0].get(child.qname)
                if entry is None:
                    break
                state = entry[0]
                decls.append(entry[1])
            else:
                if dfa[state][1]:
                    child_plans = self.child_plans
                    for child, child_decl in zip(children, decls):
                        segments.append(child.qname.local)
                        child_plans[id(child_decl)].run(child, segments, problems)
                        segments.pop()
                    return
            # Slow path: rerun through match() for the exact failure report.
            result = model.match([child.qname for child in children])
            problems.append(
                ValidationProblem(_materialize(segments), result.describe_failure())
            )
            return
        result = model.match([child.qname for child in children])
        if not result.ok:
            problems.append(
                ValidationProblem(_materialize(segments), result.describe_failure())
            )
            return
        child_plans = self.child_plans
        for child, child_decl in zip(children, result.assignments):
            segments.append(child.qname.local)
            child_plans[id(child_decl)].run(child, segments, problems)
            segments.pop()


# -- the compiled schema set --------------------------------------------------


class CompiledSchemaSet:
    """A :class:`SchemaSet` compiled for repeated instance validation.

    Construction resolves every reference and pre-builds every content
    model; :meth:`validate` then walks documents against plan objects
    only.  Output is identical (same problems, same order) to
    ``validate_instance(schema_set, document)``.

    Instances are immutable after construction and safe to share across
    threads -- :meth:`validate` touches no mutable compiled state.
    """

    def __init__(self, schema_set: SchemaSet, fingerprint: str | None = None) -> None:
        self.schema_set = schema_set
        self.fingerprint = fingerprint or fingerprint_schema_set(schema_set)
        self._schemas: dict[str, Schema] = {
            namespace: schema_set.schema_for(namespace)
            for namespace in schema_set.namespaces
        }
        self._globals: dict[QName, ElementDecl] = {}
        self._types: dict[QName, ComplexType | SimpleType] = {}
        for namespace, schema in self._schemas.items():
            for item in schema.global_elements:
                self._globals.setdefault(QName(namespace, item.name), item)
            for item in schema.items:
                if isinstance(item, (ComplexType, SimpleType)):
                    self._types.setdefault(QName(namespace, item.name), item)
        self._type_plans: dict[QName, object] = {}
        self._decl_plans: dict[int, object] = {}
        with span(
            "instances.compile",
            namespaces=len(self._schemas),
            types=len(self._types),
            global_elements=len(self._globals),
            fingerprint=self.fingerprint[:12],
        ):
            # Compile every global type and element eagerly so validation
            # never pays a first-touch cost (and schema defects surface
            # deterministically, not input-dependently).
            for qname in self._types:
                self._type_plan(qname)
            for decl in self._globals.values():
                self._decl_plan(decl, frozenset())

    # -- validation ------------------------------------------------------------

    def validate(self, document: XmlElement | str) -> list[ValidationProblem]:
        """Validate one instance document; returns all problems (empty = valid)."""
        if isinstance(document, str):
            root: _Node | _ResolvedElement = _parse_document(document)
        else:
            root = _resolve_instance(document, {})
        decl = self._globals.get(root.qname)
        if decl is None:
            return [
                ValidationProblem(
                    f"/{root.qname.local}",
                    f"no global element declaration for {root.qname.clark()}",
                )
            ]
        problems: list[ValidationProblem] = []
        self._decl_plans[id(decl)].run(root, [root.qname.local], problems)
        return problems

    # -- compilation ------------------------------------------------------------

    def _decl_plan(self, decl: ElementDecl, resolving: frozenset[int]) -> object:
        plan = self._decl_plans.get(id(decl))
        if plan is not None:
            return plan
        if decl.is_ref:
            if id(decl) in resolving:
                raise SchemaError(f"cyclic element reference {decl.ref.clark()}")
            target = self._globals.get(decl.ref)
            if target is None:
                plan = _ErrorPlan(f"dangling element reference {decl.ref.clark()}")
            else:
                plan = self._decl_plan(target, resolving | {id(decl)})
        elif decl.type is None:
            plan = _AcceptPlan()
        else:
            plan = self._type_plan(decl.type)
        self._decl_plans[id(decl)] = plan
        return plan

    def _type_plan(self, type_name: QName) -> object:
        plan = self._type_plans.get(type_name)
        if plan is not None:
            return plan
        if type_name.namespace == XSD_NS:
            plan = _SimplePlan(self._value_check(type_name, []))
        else:
            definition = self._types.get(type_name)
            if definition is None:
                plan = _ErrorPlan(f"unresolved type {type_name.clark()}")
            elif isinstance(definition, SimpleType):
                plan = _SimplePlan(self._value_check(type_name, []))
            elif definition.simple_content is not None:
                plan = self._compile_simple_content(definition)
            else:
                return self._compile_complex(type_name, definition)
        self._type_plans[type_name] = plan
        return plan

    def _compile_complex(self, type_name: QName, definition: ComplexType) -> _ComplexPlan:
        plan = _ComplexPlan()
        # Register before compiling children: recursive types resolve to
        # this very plan object.
        self._type_plans[type_name] = plan
        schema = self._schemas[type_name.namespace]
        plan.text_message = (
            f"unexpected character content in complex type {definition.name!r}"
        )
        plan.attrs = self._attr_plan(definition.attributes)
        plan.no_children_prefix = (
            f"type {definition.name!r} allows no children, found "
        )
        if definition.particle is not None:
            nfa = CompiledModel(
                definition.particle, lambda decl: self._symbol_of(decl, schema)
            )
            # Determinize when provably result-identical; else keep the NFA.
            plan.set_model(determinize(nfa) or nfa)
            for decl in _particle_decls(definition.particle):
                plan.child_plans[id(decl)] = self._decl_plan(decl, frozenset())
        return plan

    def _compile_simple_content(self, definition: ComplexType) -> _SimpleContentPlan:
        messages: list[str] = []
        base, attributes, facets = self._flatten_simple_content(
            definition, messages, frozenset()
        )
        value = self._value_check(base, facets) if base is not None else None
        return _SimpleContentPlan(
            children_message=(
                f"type {definition.name!r} has simple content but children were found"
            ),
            content_messages=tuple(messages),
            attrs=self._attr_plan(attributes),
            value=value,
        )

    def _flatten_simple_content(
        self, definition: ComplexType, messages: list[str], resolving: frozenset[int]
    ) -> tuple[QName | None, list[AttributeDecl], list[Facet]]:
        content = definition.simple_content
        assert content is not None
        base = content.base
        facets = list(content.facets)
        if base.namespace == XSD_NS:
            return base, list(content.attributes), facets
        base_definition = self._types.get(base)
        if base_definition is None:
            messages.append(f"unresolved simpleContent base {base.clark()}")
            return None, list(content.attributes), facets
        if isinstance(base_definition, SimpleType):
            return base, list(content.attributes), facets
        if base_definition.simple_content is None:
            messages.append(
                f"simpleContent base {base.clark()} is not a simple-content type"
            )
            return None, list(content.attributes), facets
        if id(base_definition) in resolving:
            raise SchemaError(f"cyclic simpleContent derivation at {base.clark()}")
        inherited_base, inherited_attrs, inherited_facets = self._flatten_simple_content(
            base_definition, messages, resolving | {id(base_definition)}
        )
        if content.derivation == "extension":
            merged = inherited_attrs + content.attributes
        else:
            by_name = {attribute.name: attribute for attribute in inherited_attrs}
            for attribute in content.attributes:
                by_name[attribute.name] = attribute
            merged = list(by_name.values())
        return inherited_base, merged, inherited_facets + facets

    def _value_check(self, type_name: QName, extra_facets: list[Facet]) -> _ValueCheck:
        """The compiled form of ``_Validator._validate_simple_value``."""
        messages: list[str] = []
        base, facets = self._flatten_simple_type(type_name, messages, frozenset())
        facets = facets + extra_facets
        if base is None:
            return _ValueCheck(tuple(messages), None, None)
        # Facet-less values (plain xsd:string and friends) skip the facet
        # closure entirely on the hot path.
        check = datatypes.compile_facets(facets, base) if facets else None
        return _ValueCheck(tuple(messages), base, check)

    def _flatten_simple_type(
        self, type_name: QName, messages: list[str], resolving: frozenset[QName]
    ) -> tuple[QName | None, list[Facet]]:
        if type_name.namespace == XSD_NS:
            return type_name, []
        definition = self._types.get(type_name)
        if definition is None:
            messages.append(f"unresolved simple type {type_name.clark()}")
            return None, []
        if isinstance(definition, ComplexType):
            messages.append(
                f"type {type_name.clark()} is complex where a simple type is required"
            )
            return None, []
        if type_name in resolving:
            raise SchemaError(f"cyclic simple-type derivation at {type_name.clark()}")
        base, facets = self._flatten_simple_type(
            definition.base, messages, resolving | {type_name}
        )
        return base, facets + list(definition.facets)

    def _attr_plan(self, declared: list[AttributeDecl]) -> _AttrPlan:
        if not declared:
            return _EMPTY_ATTRS
        by_name = {
            attribute.name: (attribute, self._value_check(attribute.type, []))
            for attribute in declared
        }
        order = tuple(
            (attribute.name, attribute.use is AttributeUse.REQUIRED)
            for attribute in declared
        )
        return _AttrPlan(by_name, order)

    @staticmethod
    def _symbol_of(decl: ElementDecl, schema: Schema) -> QName:
        if decl.is_ref:
            return _intern_qname(decl.ref.namespace, decl.ref.local)
        namespace = (
            schema.target_namespace if schema.element_form_default == "qualified" else ""
        )
        # Interned so content-model transition keys are the same objects
        # the parser produces (dict lookups hit the identity fast path).
        return _intern_qname(namespace, decl.name)


def _particle_decls(particle: object) -> list[ElementDecl]:
    """Every element declaration nested anywhere in a particle tree."""
    found: list[ElementDecl] = []

    def walk(node: object) -> None:
        if isinstance(node, ElementDecl):
            found.append(node)
            return
        for child in getattr(node, "particles", ()):
            walk(child)

    walk(particle)
    return found


# -- compilation cache ---------------------------------------------------------


class CompilationCache:
    """Thread-safe LRU of compiled schema sets, keyed by fingerprint.

    The validate-side sibling of :class:`~repro.xsdgen.cache.GenerationCache`:
    one instance is safely shared across pipelines and threads, and a
    schema change misses (new fingerprint) instead of returning a stale
    compilation.  Counters: ``instances.compile_hits`` / ``compile_misses``
    / ``compile_evictions``; gauge: ``instances.compile_cache_size``.
    """

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries < 1:
            raise ValueError("CompilationCache needs max_entries >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, CompiledSchemaSet] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = counter("instances.compile_hits")
        self._misses = counter("instances.compile_misses")
        self._evictions = counter("instances.compile_evictions")
        self._size = gauge("instances.compile_cache_size")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> CompiledSchemaSet | None:
        """The compiled set for ``key``; None (and a miss) when absent."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits.inc()
                return entry
        self._misses.inc()
        return None

    def put(self, compiled: CompiledSchemaSet) -> None:
        """Insert (or refresh) a compiled set under its fingerprint."""
        with self._lock:
            self._entries[compiled.fingerprint] = compiled
            self._entries.move_to_end(compiled.fingerprint)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions.inc()
            self._size.set(len(self._entries))

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self._entries.clear()
            self._size.set(0)


_default_cache = CompilationCache()


def get_compilation_cache() -> CompilationCache:
    """The process-global compilation cache."""
    return _default_cache


def set_compilation_cache(cache: CompilationCache) -> CompilationCache:
    """Replace the process-global compilation cache; returns the previous one."""
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous


def compile_schema_set(
    schema_set: SchemaSet, cache: CompilationCache | None = None
) -> CompiledSchemaSet:
    """The compiled form of ``schema_set``, via the compilation cache.

    Fingerprints the set, returns the cached compilation on a hit and
    compiles (then caches) on a miss.  Pass ``cache=None`` to use the
    process-global cache.
    """
    cache = cache if cache is not None else get_compilation_cache()
    key = fingerprint_schema_set(schema_set)
    hit = cache.get(key)
    if hit is not None:
        return hit
    compiled = CompiledSchemaSet(schema_set, fingerprint=key)
    cache.put(compiled)
    return compiled
