"""Backward-compatibility checking between schema versions.

The paper's motivation includes schema evolution ("the uncertainty of
future developments"); a registry full of versioned libraries needs an
answer to "can consumers of version N validate messages produced against
version N+1?".  :func:`check_compatibility` compares two schema sets and
classifies every difference:

* **compatible** changes -- new optional elements/attributes, widened
  occurrences, added enumeration values, new global types/elements,
* **breaking** changes -- removed/renamed elements, narrowed occurrences,
  attributes turned required, removed enumeration values, type changes.

"Compatible" here means: every instance valid against the *old* set stays
valid against the *new* one (producer-side compatibility is the mirrored
call).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.xsd.components import (
    AttributeDecl,
    AttributeUse,
    ChoiceGroup,
    ComplexType,
    ElementDecl,
    SequenceGroup,
    SimpleType,
)
from repro.xsd.validator import SchemaSet

Kind = Literal["breaking", "compatible"]


@dataclass(frozen=True)
class Change:
    """One classified difference between schema versions."""

    kind: Kind
    location: str
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.location}: {self.message}"


@dataclass
class CompatibilityReport:
    """All classified differences between two schema sets."""

    changes: list[Change] = field(default_factory=list)

    def add(self, kind: Kind, location: str, message: str) -> None:
        self.changes.append(Change(kind, location, message))

    @property
    def breaking(self) -> list[Change]:
        """Changes that can invalidate previously valid instances."""
        return [change for change in self.changes if change.kind == "breaking"]

    @property
    def compatible(self) -> list[Change]:
        """Changes that preserve validity of old instances."""
        return [change for change in self.changes if change.kind == "compatible"]

    @property
    def is_backward_compatible(self) -> bool:
        """True when no breaking change was found."""
        return not self.breaking


def check_compatibility(old: SchemaSet, new: SchemaSet) -> CompatibilityReport:
    """Classify the differences between ``old`` and ``new`` schema sets."""
    report = CompatibilityReport()
    for namespace in old.namespaces:
        if namespace not in new.namespaces:
            report.add("breaking", namespace, "namespace removed")
            continue
        _compare_schema(old, new, namespace, report)
    for namespace in new.namespaces:
        if namespace not in old.namespaces:
            report.add("compatible", namespace, "namespace added")
    return report


def _compare_schema(old: SchemaSet, new: SchemaSet, namespace: str, report: CompatibilityReport) -> None:
    old_schema = old.schema_for(namespace)
    new_schema = new.schema_for(namespace)

    old_elements = {element.name: element for element in old_schema.global_elements}
    new_elements = {element.name: element for element in new_schema.global_elements}
    for name, element in old_elements.items():
        location = f"{namespace}#{name}"
        if name not in new_elements:
            report.add("breaking", location, "global element removed")
        elif element.type != new_elements[name].type:
            report.add("breaking", location, "global element retyped")
    for name in new_elements:
        if name not in old_elements:
            report.add("compatible", f"{namespace}#{name}", "global element added")

    old_types = {item.name: item for item in old_schema.items if isinstance(item, (ComplexType, SimpleType))}
    new_types = {item.name: item for item in new_schema.items if isinstance(item, (ComplexType, SimpleType))}
    for name, old_type in old_types.items():
        location = f"{namespace}#{name}"
        new_type = new_types.get(name)
        if new_type is None:
            report.add("breaking", location, "type removed")
            continue
        if type(old_type) is not type(new_type):
            report.add("breaking", location, "type changed category (simple/complex)")
            continue
        if isinstance(old_type, SimpleType):
            _compare_simple_type(old_type, new_type, location, report)
        else:
            _compare_complex_type(old_type, new_type, location, report)
    for name in new_types:
        if name not in old_types:
            report.add("compatible", f"{namespace}#{name}", "type added")


def _compare_simple_type(old: SimpleType, new: SimpleType, location: str, report: CompatibilityReport) -> None:
    if old.base != new.base:
        report.add("breaking", location, f"base changed {old.base.local} -> {new.base.local}")
    old_values = set(old.enumeration_values)
    new_values = set(new.enumeration_values)
    for value in sorted(old_values - new_values):
        report.add("breaking", location, f"enumeration value {value!r} removed")
    for value in sorted(new_values - old_values):
        report.add("compatible", location, f"enumeration value {value!r} added")


def _particle_elements(particle) -> list[ElementDecl]:
    if particle is None:
        return []
    elements: list[ElementDecl] = []
    for child in particle.particles:
        if isinstance(child, ElementDecl):
            elements.append(child)
        elif isinstance(child, (SequenceGroup, ChoiceGroup)):
            elements.extend(_particle_elements(child))
    return elements


def _element_key(element: ElementDecl) -> str:
    return element.name if element.name is not None else f"ref:{element.ref.local}"


def _compare_complex_type(old: ComplexType, new: ComplexType, location: str, report: CompatibilityReport) -> None:
    if (old.simple_content is None) != (new.simple_content is None):
        report.add("breaking", location, "content model changed between simple and complex")
        return
    if old.simple_content is not None:
        if old.simple_content.base != new.simple_content.base:
            report.add(
                "breaking", location,
                f"simpleContent base changed {old.simple_content.base.local} -> "
                f"{new.simple_content.base.local}",
            )
        _compare_attributes(
            old.simple_content.attributes, new.simple_content.attributes, location, report
        )
        return
    _compare_attributes(old.attributes, new.attributes, location, report)

    old_elements = {_element_key(e): e for e in _particle_elements(old.particle)}
    new_elements = {_element_key(e): e for e in _particle_elements(new.particle)}
    for key, old_element in old_elements.items():
        where = f"{location}/{key}"
        new_element = new_elements.get(key)
        if new_element is None:
            report.add("breaking", where, "element removed")
            continue
        if old_element.type != new_element.type:
            report.add("breaking", where, "element retyped")
        if new_element.min_occurs > old_element.min_occurs:
            report.add("breaking", where, f"minOccurs raised {old_element.min_occurs} -> {new_element.min_occurs}")
        elif new_element.min_occurs < old_element.min_occurs:
            report.add("compatible", where, "minOccurs lowered")
        old_max = float("inf") if old_element.max_occurs is None else old_element.max_occurs
        new_max = float("inf") if new_element.max_occurs is None else new_element.max_occurs
        if new_max < old_max:
            report.add("breaking", where, "maxOccurs narrowed")
        elif new_max > old_max:
            report.add("compatible", where, "maxOccurs widened")
    for key, new_element in new_elements.items():
        if key in old_elements:
            continue
        where = f"{location}/{key}"
        if new_element.min_occurs == 0:
            report.add("compatible", where, "optional element added")
        else:
            report.add("breaking", where, "required element added")


def _compare_attributes(
    old_attributes: list[AttributeDecl],
    new_attributes: list[AttributeDecl],
    location: str,
    report: CompatibilityReport,
) -> None:
    old_by_name = {attribute.name: attribute for attribute in old_attributes}
    new_by_name = {attribute.name: attribute for attribute in new_attributes}
    for name, old_attribute in old_by_name.items():
        where = f"{location}/@{name}"
        new_attribute = new_by_name.get(name)
        if new_attribute is None:
            if old_attribute.use is AttributeUse.PROHIBITED:
                continue
            report.add("breaking", where, "attribute removed (instances carrying it break)")
            continue
        if old_attribute.type != new_attribute.type:
            report.add("breaking", where, "attribute retyped")
        if (
            new_attribute.use is AttributeUse.REQUIRED
            and old_attribute.use is not AttributeUse.REQUIRED
        ):
            report.add("breaking", where, "attribute became required")
        elif (
            new_attribute.use is AttributeUse.PROHIBITED
            and old_attribute.use is not AttributeUse.PROHIBITED
        ):
            report.add("breaking", where, "attribute became prohibited")
        elif new_attribute.use is not old_attribute.use:
            report.add("compatible", where, f"attribute use relaxed to {new_attribute.use.value}")
    for name, new_attribute in new_by_name.items():
        if name in old_by_name:
            continue
        where = f"{location}/@{name}"
        if new_attribute.use is AttributeUse.REQUIRED:
            report.add("breaking", where, "required attribute added")
        else:
            report.add("compatible", where, "optional attribute added")
