"""An XSD 1.0 object model, writer, parser and instance validator.

The paper's pipeline ends in XML schemas "used to validate XML messages
exchanged during a business process".  With no external schema processor
available, this package is the from-scratch substrate that closes the loop:

* :mod:`repro.xsd.components` -- the schema component model (the subset the
  NDR produces: complex types with sequences, simpleContent
  extension/restriction, simple types with facets, global elements,
  attributes, imports, annotations),
* :mod:`repro.xsd.writer` -- deterministic serialization to the textual
  form shown in the paper's Figures 6-8,
* :mod:`repro.xsd.parser` -- the reverse direction, used by round-trip
  tests and by the validator when loading schema files,
* :mod:`repro.xsd.datatypes` -- built-in type lexical checks and facets,
* :mod:`repro.xsd.content_model` -- occurrence-aware content-model
  matching (a compiled NFA plus a reference backtracking matcher),
* :mod:`repro.xsd.validator` -- instance-document validation against a
  :class:`SchemaSet`.
"""

from repro.xsd.components import (
    XSD_NS,
    Annotation,
    AttributeDecl,
    AttributeUse,
    ChoiceGroup,
    ComplexType,
    ElementDecl,
    Facet,
    ImportDecl,
    Schema,
    SequenceGroup,
    SimpleContent,
    SimpleType,
)
from repro.xsd.compat import Change, CompatibilityReport, check_compatibility
from repro.xsd.compiled import (
    CompilationCache,
    CompiledSchemaSet,
    compile_schema_set,
    fingerprint_schema_set,
    get_compilation_cache,
    set_compilation_cache,
)
from repro.xsd.parser import parse_schema
from repro.xsd.validator import SchemaSet, ValidationProblem, validate_instance
from repro.xsd.writer import schema_to_string, schema_to_xml

__all__ = [
    "Annotation",
    "Change",
    "CompatibilityReport",
    "check_compatibility",
    "AttributeDecl",
    "AttributeUse",
    "ChoiceGroup",
    "ComplexType",
    "ElementDecl",
    "Facet",
    "ImportDecl",
    "Schema",
    "SchemaSet",
    "SequenceGroup",
    "SimpleContent",
    "SimpleType",
    "ValidationProblem",
    "XSD_NS",
    "CompilationCache",
    "CompiledSchemaSet",
    "compile_schema_set",
    "fingerprint_schema_set",
    "get_compilation_cache",
    "set_compilation_cache",
    "parse_schema",
    "schema_to_string",
    "schema_to_xml",
    "validate_instance",
]
