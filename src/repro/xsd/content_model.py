"""Occurrence-aware content-model matching.

Validating a ``sequence``/``choice`` particle against the children of an
instance element is regular-language matching.  Two interchangeable engines
are provided:

* :func:`match_nfa` -- a compiled Thompson-style NFA simulated with epsilon
  closures (linear in ``len(tokens) * states``), the production engine;
* :func:`match_backtracking` -- a direct recursive matcher used as the
  reference implementation in property-based equivalence tests and as the
  "naive" arm of the ablation benchmark in DESIGN.md.

Both return a :class:`MatchResult` whose ``assignments`` pin each child to
the element declaration that matched it, which the validator then uses for
type checking.  For schemas obeying the Unique Particle Attribution rule
(everything the NDR generator emits does) the assignment is unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.xmlutil.qname import QName
from repro.xsd.components import ChoiceGroup, ElementDecl, SequenceGroup

Particle = ElementDecl | SequenceGroup | ChoiceGroup
SymbolOf = Callable[[ElementDecl], QName]

#: Bounded maxOccurs above this are treated as unbounded to avoid blowup.
MAX_UNROLL = 64


@dataclass
class MatchResult:
    """Outcome of matching children against a content model."""

    ok: bool
    assignments: list[ElementDecl] = field(default_factory=list)
    failure_index: int | None = None
    expected: tuple[str, ...] = ()

    def describe_failure(self) -> str:
        """A human-readable account of where matching failed."""
        if self.ok:
            return "match succeeded"
        expected = " | ".join(sorted(self.expected)) or "(nothing)"
        where = "end of content" if self.failure_index is None else f"child #{self.failure_index + 1}"
        return f"content model mismatch at {where}; expected {expected}"


# ---------------------------------------------------------------------------
# Compiled NFA engine
# ---------------------------------------------------------------------------


class _Fragment:
    __slots__ = ("start", "accept")

    def __init__(self, start: int, accept: int) -> None:
        self.start = start
        self.accept = accept


class CompiledModel:
    """A Thompson NFA for one content-model particle."""

    def __init__(self, particle: Particle, symbol_of: SymbolOf) -> None:
        self._epsilon: list[list[int]] = []
        self._edges: list[list[tuple[QName, ElementDecl, int]]] = []
        self._symbol_of = symbol_of
        fragment = self._compile(particle)
        self.start = fragment.start
        self.accept = fragment.accept

    # -- construction ------------------------------------------------------------

    def _new_state(self) -> int:
        self._epsilon.append([])
        self._edges.append([])
        return len(self._epsilon) - 1

    def _compile(self, particle: Particle) -> _Fragment:
        if isinstance(particle, ElementDecl):
            base = self._element_fragment(particle)
        elif isinstance(particle, SequenceGroup):
            base = self._concat([self._compile(child) for child in particle.particles])
        else:
            base = self._alternate([self._compile(child) for child in particle.particles])
        min_occurs = particle.min_occurs if not isinstance(particle, ElementDecl) else particle.min_occurs
        max_occurs = particle.max_occurs
        if isinstance(particle, ElementDecl):
            # The element fragment itself is a single occurrence; apply occurs.
            return self._apply_occurs_factory(lambda: self._element_fragment(particle), base, min_occurs, max_occurs)
        return self._apply_occurs_factory(lambda: self._compile_copy(particle), base, min_occurs, max_occurs)

    def _compile_copy(self, particle: SequenceGroup | ChoiceGroup) -> _Fragment:
        copy = (
            SequenceGroup(particle.particles, 1, 1)
            if isinstance(particle, SequenceGroup)
            else ChoiceGroup(particle.particles, 1, 1)
        )
        return self._compile(copy)

    def _element_fragment(self, element: ElementDecl) -> _Fragment:
        start = self._new_state()
        accept = self._new_state()
        self._edges[start].append((self._symbol_of(element), element, accept))
        return _Fragment(start, accept)

    def _concat(self, fragments: list[_Fragment]) -> _Fragment:
        if not fragments:
            state = self._new_state()
            return _Fragment(state, state)
        for left, right in zip(fragments, fragments[1:]):
            self._epsilon[left.accept].append(right.start)
        return _Fragment(fragments[0].start, fragments[-1].accept)

    def _alternate(self, fragments: list[_Fragment]) -> _Fragment:
        start = self._new_state()
        accept = self._new_state()
        if not fragments:
            self._epsilon[start].append(accept)
        for fragment in fragments:
            self._epsilon[start].append(fragment.start)
            self._epsilon[fragment.accept].append(accept)
        return _Fragment(start, accept)

    def _apply_occurs_factory(
        self,
        make_copy: Callable[[], _Fragment],
        first: _Fragment,
        min_occurs: int,
        max_occurs: int | None,
    ) -> _Fragment:
        """Wire ``min..max`` occurrences out of fresh copies of a fragment."""
        if max_occurs is not None and max_occurs > MAX_UNROLL:
            max_occurs = None
        if min_occurs == 1 and max_occurs == 1:
            return first
        if max_occurs == 0:
            # A prohibited particle matches only the empty string.
            state = self._new_state()
            return _Fragment(state, state)
        start = self._new_state()
        accept = self._new_state()
        if min_occurs == 0:
            self._epsilon[start].append(accept)
        required = [first] + [make_copy() for _ in range(max(min_occurs - 1, 0))]
        cursor = start
        for index, fragment in enumerate(required):
            self._epsilon[cursor].append(fragment.start)
            cursor = fragment.accept
            if index + 1 >= min_occurs:
                self._epsilon[cursor].append(accept)
        if max_occurs is None:
            loop = required[-1] if required else make_copy()
            if not required:
                self._epsilon[cursor].append(loop.start)
                cursor = loop.accept
                self._epsilon[cursor].append(accept)
            self._epsilon[loop.accept].append(loop.start)
        else:
            optional_count = max_occurs - max(min_occurs, 1)
            for _ in range(optional_count):
                fragment = make_copy()
                self._epsilon[cursor].append(fragment.start)
                cursor = fragment.accept
                self._epsilon[cursor].append(accept)
        return _Fragment(start, accept)

    # -- simulation ----------------------------------------------------------------

    def _closure(self, states: set[int]) -> set[int]:
        stack = list(states)
        seen = set(states)
        while stack:
            state = stack.pop()
            for nxt in self._epsilon[state]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def _expected_at(self, states: set[int]) -> tuple[str, ...]:
        names = {symbol.local for state in states for symbol, _, _ in self._edges[state]}
        return tuple(sorted(names))

    def match(self, tokens: list[QName]) -> MatchResult:
        """Match ``tokens`` (children element QNames) against the model."""
        current = self._closure({self.start})
        assignments: list[ElementDecl] = []
        for index, token in enumerate(tokens):
            next_states: set[int] = set()
            matched: ElementDecl | None = None
            for state in current:
                for symbol, decl, target in self._edges[state]:
                    if symbol == token:
                        next_states.add(target)
                        if matched is None:
                            matched = decl
            if not next_states or matched is None:
                return MatchResult(
                    ok=False,
                    assignments=assignments,
                    failure_index=index,
                    expected=self._expected_at(current),
                )
            assignments.append(matched)
            current = self._closure(next_states)
        if self.accept in current:
            return MatchResult(ok=True, assignments=assignments)
        return MatchResult(
            ok=False,
            assignments=assignments,
            failure_index=None,
            expected=self._expected_at(current),
        )


def match_nfa(particle: Particle, tokens: list[QName], symbol_of: SymbolOf) -> MatchResult:
    """Match using a freshly compiled NFA (see :class:`CompiledModel`)."""
    return CompiledModel(particle, symbol_of).match(tokens)


# ---------------------------------------------------------------------------
# Determinized (DFA) engine
# ---------------------------------------------------------------------------

#: Subset-construction ceiling; larger models fall back to NFA simulation.
MAX_DFA_STATES = 512


class DeterminizedModel:
    """A table-driven DFA determinized from a :class:`CompiledModel`.

    Matching is one dict lookup per token instead of an epsilon-closure
    sweep, and produces byte-identical :class:`MatchResult` values (same
    assignments, failure index and expected set).  Built ahead of time by
    :func:`determinize`; the compiled-validator layer uses it on the
    per-document hot path.
    """

    __slots__ = ("_tables",)

    def __init__(
        self,
        tables: list[tuple[dict[QName, tuple[int, ElementDecl]], bool, tuple[str, ...]]],
    ) -> None:
        self._tables = tables

    def match(self, tokens: list[QName]) -> MatchResult:
        """Match ``tokens`` against the determinized model."""
        tables = self._tables
        state = 0
        assignments: list[ElementDecl] = []
        for index, token in enumerate(tokens):
            entry = tables[state][0].get(token)
            if entry is None:
                return MatchResult(
                    ok=False,
                    assignments=assignments,
                    failure_index=index,
                    expected=tables[state][2],
                )
            assignments.append(entry[1])
            state = entry[0]
        transitions, accepting, expected = tables[state]
        if accepting:
            return MatchResult(ok=True, assignments=assignments)
        return MatchResult(
            ok=False, assignments=assignments, failure_index=None, expected=expected
        )


def determinize(model: CompiledModel) -> DeterminizedModel | None:
    """The DFA form of ``model``, or None when not safely determinizable.

    Safe means provably result-identical to :meth:`CompiledModel.match`:
    construction bails out (returns None, caller keeps the NFA) when a
    state set offers the *same* token through *different* declarations --
    a Unique Particle Attribution violation, where the NFA's pick depends
    on set iteration order -- or when subset construction exceeds
    :data:`MAX_DFA_STATES`.  Everything the NDR generator emits
    determinizes.
    """
    start = model._closure({model.start})
    state_ids: dict[frozenset[int], int] = {frozenset(start): 0}
    representatives: list[set[int]] = [start]
    tables: list[tuple[dict[QName, tuple[int, ElementDecl]], bool, tuple[str, ...]]] = []
    cursor = 0
    while cursor < len(representatives):
        representative = representatives[cursor]
        cursor += 1
        targets: dict[QName, set[int]] = {}
        matched: dict[QName, ElementDecl] = {}
        for state in representative:
            for symbol, decl, target in model._edges[state]:
                bucket = targets.get(symbol)
                if bucket is None:
                    targets[symbol] = {target}
                    matched[symbol] = decl
                else:
                    bucket.add(target)
                    if matched[symbol] is not decl:
                        return None  # UPA violation: NFA pick is order-dependent
        transitions: dict[QName, tuple[int, ElementDecl]] = {}
        for symbol, next_states in targets.items():
            closure = model._closure(next_states)
            key = frozenset(closure)
            next_id = state_ids.get(key)
            if next_id is None:
                if len(representatives) >= MAX_DFA_STATES:
                    return None
                next_id = len(representatives)
                state_ids[key] = next_id
                representatives.append(closure)
            transitions[symbol] = (next_id, matched[symbol])
        tables.append(
            (transitions, model.accept in representative, model._expected_at(representative))
        )
    return DeterminizedModel(tables)


# ---------------------------------------------------------------------------
# Reference backtracking engine
# ---------------------------------------------------------------------------


def match_backtracking(particle: Particle, tokens: list[QName], symbol_of: SymbolOf) -> MatchResult:
    """Match by direct recursive backtracking (reference implementation)."""

    def match_particle(node: Particle, pos: int):
        """Yield (end position, assignment slice) for every way to match."""
        min_occurs = node.min_occurs
        max_occurs = node.max_occurs
        if max_occurs is not None and max_occurs > MAX_UNROLL:
            max_occurs = None

        def match_once(start: int):
            if isinstance(node, ElementDecl):
                if start < len(tokens) and symbol_of(node) == tokens[start]:
                    yield start + 1, [node]
                return
            if isinstance(node, SequenceGroup):
                def seq(idx: int, at: int, acc: list[ElementDecl]):
                    if idx == len(node.particles):
                        yield at, acc
                        return
                    for end, sub in match_particle(node.particles[idx], at):
                        yield from seq(idx + 1, end, acc + sub)

                yield from seq(0, start, [])
                return
            for child in node.particles:  # ChoiceGroup
                yield from match_particle(child, start)

        def repeat(count: int, at: int, acc: list[ElementDecl]):
            if count >= min_occurs:
                yield at, acc
            if max_occurs is not None and count >= max_occurs:
                return
            for end, sub in match_once(at):
                if end == at:
                    # An empty occurrence: only worth counting while the
                    # minimum is unmet (it can never consume input, so
                    # repeating it further would loop forever).
                    if count < min_occurs:
                        yield from repeat(count + 1, end, acc + sub)
                    continue
                yield from repeat(count + 1, end, acc + sub)

        yield from repeat(0, pos, [])

    best_failure = -1
    for end, assignment in match_particle(particle, 0):
        if end == len(tokens):
            return MatchResult(ok=True, assignments=assignment)
        best_failure = max(best_failure, end)
    failure_index = best_failure if 0 <= best_failure < len(tokens) else (None if best_failure >= len(tokens) else 0)
    return MatchResult(ok=False, failure_index=failure_index, expected=())
