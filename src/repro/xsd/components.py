"""The XSD schema component model.

This models the subset of XML Schema 1.0 the NDR generator emits -- which is
also the subset the validator consumes:

* global ``element`` declarations,
* ``complexType`` with either a ``sequence``/``choice`` particle plus
  attributes, or ``simpleContent`` (extension/restriction) plus attributes,
* ``simpleType`` with a facet-bearing ``restriction``,
* ``import`` declarations,
* ``annotation``/``documentation`` blocks carrying CCTS metadata.

Type references are :class:`repro.xmlutil.QName` values so cross-namespace
references stay unambiguous regardless of prefixes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.xmlutil.qname import QName

#: The XML Schema namespace.
XSD_NS = "http://www.w3.org/2001/XMLSchema"


def xsd(local: str) -> QName:
    """Shorthand for a QName in the XSD namespace (``xsd("string")``)."""
    return QName(XSD_NS, local)


@dataclass
class Annotation:
    """An ``xsd:annotation`` holding CCTS documentation entries.

    ``entries`` are (ccts element name, text) pairs rendered inside one
    ``xsd:documentation`` element in the ``ccts`` namespace.
    """

    entries: list[tuple[str, str]] = field(default_factory=list)

    def is_empty(self) -> bool:
        """True when there is nothing to write."""
        return not self.entries


class AttributeUse(enum.Enum):
    """The ``use`` of an attribute declaration."""

    OPTIONAL = "optional"
    REQUIRED = "required"
    PROHIBITED = "prohibited"


@dataclass
class AttributeDecl:
    """An ``xsd:attribute`` (supplementary components map onto these)."""

    name: str
    type: QName
    use: AttributeUse = AttributeUse.OPTIONAL
    annotation: Annotation | None = None


@dataclass
class ElementDecl:
    """An ``xsd:element`` -- either named (with a type) or a ``ref``.

    ``min_occurs``/``max_occurs`` follow XSD conventions (``max_occurs``
    None = unbounded).  Global element declarations always have
    ``min_occurs == max_occurs == 1``.
    """

    name: str | None = None
    type: QName | None = None
    ref: QName | None = None
    min_occurs: int = 1
    max_occurs: int | None = 1
    annotation: Annotation | None = None

    def __post_init__(self) -> None:
        if (self.name is None) == (self.ref is None):
            raise SchemaError("an element declaration needs exactly one of name/ref")
        if self.min_occurs < 0:
            raise SchemaError(f"minOccurs must be >= 0, got {self.min_occurs}")
        if self.max_occurs is not None and self.max_occurs < self.min_occurs:
            raise SchemaError(
                f"maxOccurs {self.max_occurs} < minOccurs {self.min_occurs} on element "
                f"{self.name or self.ref}"
            )

    @property
    def is_ref(self) -> bool:
        """True for a ``ref=`` declaration."""
        return self.ref is not None


@dataclass
class SequenceGroup:
    """An ``xsd:sequence`` of particles (elements or nested groups)."""

    particles: list["ElementDecl | SequenceGroup | ChoiceGroup"] = field(default_factory=list)
    min_occurs: int = 1
    max_occurs: int | None = 1


@dataclass
class ChoiceGroup:
    """An ``xsd:choice`` of particles."""

    particles: list["ElementDecl | SequenceGroup | ChoiceGroup"] = field(default_factory=list)
    min_occurs: int = 1
    max_occurs: int | None = 1


@dataclass
class SimpleContent:
    """``xsd:simpleContent`` with an extension or restriction.

    ``derivation`` is ``"extension"`` or ``"restriction"``; ``base`` is the
    base type QName; ``attributes`` are the (re)declared attributes; facets
    apply only to restrictions.
    """

    base: QName
    derivation: str = "extension"
    attributes: list[AttributeDecl] = field(default_factory=list)
    facets: list["Facet"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.derivation not in ("extension", "restriction"):
            raise SchemaError(f"invalid simpleContent derivation {self.derivation!r}")


@dataclass
class ComplexType:
    """An ``xsd:complexType``: a particle + attributes, or simple content."""

    name: str
    particle: SequenceGroup | ChoiceGroup | None = None
    simple_content: SimpleContent | None = None
    attributes: list[AttributeDecl] = field(default_factory=list)
    annotation: Annotation | None = None

    def __post_init__(self) -> None:
        if self.particle is not None and self.simple_content is not None:
            raise SchemaError(f"complexType {self.name!r} cannot have both a particle and simpleContent")


@dataclass
class Facet:
    """A constraining facet of a simple-type restriction."""

    kind: str
    value: str

    _KINDS = frozenset(
        {
            "enumeration",
            "pattern",
            "length",
            "minLength",
            "maxLength",
            "minInclusive",
            "maxInclusive",
            "minExclusive",
            "maxExclusive",
            "totalDigits",
            "fractionDigits",
            "whiteSpace",
        }
    )

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise SchemaError(f"unknown facet kind {self.kind!r}")


@dataclass
class SimpleType:
    """An ``xsd:simpleType`` with a facet-bearing restriction.

    ENUM libraries generate these: a restriction of ``xsd:token`` with one
    ``enumeration`` facet per literal (paper section 4.1).
    """

    name: str
    base: QName = field(default_factory=lambda: xsd("token"))
    facets: list[Facet] = field(default_factory=list)
    annotation: Annotation | None = None

    @property
    def enumeration_values(self) -> list[str]:
        """The values of all ``enumeration`` facets, in order."""
        return [facet.value for facet in self.facets if facet.kind == "enumeration"]


@dataclass
class ImportDecl:
    """An ``xsd:import`` of another namespace's schema document."""

    namespace: str
    schema_location: str


@dataclass
class Schema:
    """One schema document.

    ``prefixes`` maps prefix -> namespace URI for every binding the writer
    must declare on the root (insertion order preserved; the generator puts
    the document's own prefix first, as Figure 6 does with ``doc``).
    ``items`` holds the global components in document order.
    """

    target_namespace: str
    prefixes: dict[str, str] = field(default_factory=dict)
    imports: list[ImportDecl] = field(default_factory=list)
    items: list[ComplexType | SimpleType | ElementDecl] = field(default_factory=list)
    element_form_default: str = "qualified"
    attribute_form_default: str = "unqualified"
    version: str | None = None
    annotation: Annotation | None = None

    # -- convenience accessors ---------------------------------------------------

    @property
    def complex_types(self) -> list[ComplexType]:
        """All global complex types, in document order."""
        return [item for item in self.items if isinstance(item, ComplexType)]

    @property
    def simple_types(self) -> list[SimpleType]:
        """All global simple types, in document order."""
        return [item for item in self.items if isinstance(item, SimpleType)]

    @property
    def global_elements(self) -> list[ElementDecl]:
        """All global element declarations, in document order."""
        return [item for item in self.items if isinstance(item, ElementDecl)]

    def complex_type(self, name: str) -> ComplexType:
        """The global complexType called ``name``."""
        for item in self.complex_types:
            if item.name == name:
                return item
        raise SchemaError(f"schema {self.target_namespace!r} has no complexType {name!r}")

    def simple_type(self, name: str) -> SimpleType:
        """The global simpleType called ``name``."""
        for item in self.simple_types:
            if item.name == name:
                return item
        raise SchemaError(f"schema {self.target_namespace!r} has no simpleType {name!r}")

    def global_element(self, name: str) -> ElementDecl:
        """The global element called ``name``."""
        for item in self.global_elements:
            if item.name == name:
                return item
        raise SchemaError(f"schema {self.target_namespace!r} has no global element {name!r}")

    def prefix_for(self, namespace: str) -> str | None:
        """The first declared prefix bound to ``namespace``, if any."""
        for prefix, uri in self.prefixes.items():
            if uri == namespace:
                return prefix
        return None
