"""Parse XSD documents back into the component model.

Covers exactly the subset the writer produces (plus tolerant handling of
annotations anywhere), so write->parse->write is the identity on generated
schemas -- a property the test suite checks.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.xmlutil.qname import QName, split_qname
from repro.xmlutil.writer import XmlElement, parse_xml
from repro.xsd.components import (
    XSD_NS,
    Annotation,
    AttributeDecl,
    AttributeUse,
    ChoiceGroup,
    ComplexType,
    ElementDecl,
    Facet,
    ImportDecl,
    Schema,
    SequenceGroup,
    SimpleContent,
    SimpleType,
)


class _Scope:
    """Prefix resolution context while parsing one schema document."""

    def __init__(self, root: XmlElement) -> None:
        self.prefixes: dict[str, str] = {}
        self.default_namespace = ""
        for name, value in root.attributes.items():
            if name == "xmlns":
                self.default_namespace = value
            elif name.startswith("xmlns:"):
                self.prefixes[name[len("xmlns:"):]] = value

    def resolve(self, text: str) -> QName:
        prefix, local = split_qname(text)
        if prefix is None:
            return QName(self.default_namespace, local)
        uri = self.prefixes.get(prefix)
        if uri is None:
            raise SchemaError(f"undeclared prefix {prefix!r} in type reference {text!r}")
        return QName(uri, local)

    def xsd_prefix(self) -> str | None:
        for prefix, uri in self.prefixes.items():
            if uri == XSD_NS:
                return prefix
        return None


def _local(tag: str) -> str:
    return tag.rpartition(":")[2]


def _is_xsd(element: XmlElement, scope: _Scope, local: str) -> bool:
    prefix, name = split_qname(element.tag)
    if name != local:
        return False
    if prefix is None:
        return scope.default_namespace == XSD_NS
    return scope.prefixes.get(prefix) == XSD_NS


def _occurs(element: XmlElement) -> tuple[int, int | None]:
    min_occurs = int(element.attributes.get("minOccurs", "1"))
    max_text = element.attributes.get("maxOccurs", "1")
    max_occurs = None if max_text == "unbounded" else int(max_text)
    return min_occurs, max_occurs


def parse_schema(text: str) -> Schema:
    """Parse an XSD document string into a :class:`Schema`."""
    root = parse_xml(text)
    scope = _Scope(root)
    if _local(root.tag) != "schema":
        raise SchemaError(f"expected an xsd:schema root, got {root.tag!r}")
    schema = Schema(
        target_namespace=root.attributes.get("targetNamespace", ""),
        prefixes=dict(
            [(name[len("xmlns:"):], value) for name, value in root.attributes.items() if name.startswith("xmlns:")]
            + ([("", root.attributes["xmlns"])] if "xmlns" in root.attributes else [])
        ),
        element_form_default=root.attributes.get("elementFormDefault", "unqualified"),
        attribute_form_default=root.attributes.get("attributeFormDefault", "unqualified"),
        version=root.attributes.get("version"),
    )
    for child in root.element_children:
        local = _local(child.tag)
        if local == "import":
            schema.imports.append(
                ImportDecl(
                    namespace=child.attributes.get("namespace", ""),
                    schema_location=child.attributes.get("schemaLocation", ""),
                )
            )
        elif local == "complexType":
            schema.items.append(_parse_complex_type(child, scope))
        elif local == "simpleType":
            schema.items.append(_parse_simple_type(child, scope))
        elif local == "element":
            schema.items.append(_parse_element(child, scope, global_decl=True))
        elif local == "annotation":
            schema.annotation = _parse_annotation(child)
        else:
            raise SchemaError(f"unsupported top-level schema component {child.tag!r}")
    return schema


def _parse_annotation(node: XmlElement) -> Annotation:
    entries: list[tuple[str, str]] = []
    for documentation in node.element_children:
        if _local(documentation.tag) != "documentation":
            continue
        for entry in documentation.element_children:
            entries.append((_local(entry.tag), entry.text_content))
        text = documentation.text_content.strip()
        if text and not documentation.element_children:
            entries.append(("Definition", text))
    return Annotation(entries)


def _pop_annotation(node: XmlElement) -> tuple[Annotation | None, list[XmlElement]]:
    annotation = None
    rest = []
    for child in node.element_children:
        if _local(child.tag) == "annotation":
            annotation = _parse_annotation(child)
        else:
            rest.append(child)
    return annotation, rest


def _parse_element(node: XmlElement, scope: _Scope, global_decl: bool = False) -> ElementDecl:
    annotation, _ = _pop_annotation(node)
    min_occurs, max_occurs = (1, 1) if global_decl else _occurs(node)
    ref_text = node.attributes.get("ref")
    if ref_text is not None:
        return ElementDecl(
            ref=scope.resolve(ref_text),
            min_occurs=min_occurs,
            max_occurs=max_occurs,
            annotation=annotation,
        )
    type_text = node.attributes.get("type")
    return ElementDecl(
        name=node.attributes["name"],
        type=scope.resolve(type_text) if type_text is not None else None,
        min_occurs=min_occurs,
        max_occurs=max_occurs,
        annotation=annotation,
    )


def _parse_attribute(node: XmlElement, scope: _Scope) -> AttributeDecl:
    annotation, _ = _pop_annotation(node)
    return AttributeDecl(
        name=node.attributes["name"],
        type=scope.resolve(node.attributes["type"]),
        use=AttributeUse(node.attributes.get("use", "optional")),
        annotation=annotation,
    )


def _parse_group(node: XmlElement, scope: _Scope) -> SequenceGroup | ChoiceGroup:
    min_occurs, max_occurs = _occurs(node)
    particles: list[ElementDecl | SequenceGroup | ChoiceGroup] = []
    for child in node.element_children:
        local = _local(child.tag)
        if local == "element":
            particles.append(_parse_element(child, scope))
        elif local in ("sequence", "choice"):
            particles.append(_parse_group(child, scope))
        elif local == "annotation":
            continue
        else:
            raise SchemaError(f"unsupported particle {child.tag!r}")
    if _local(node.tag) == "sequence":
        return SequenceGroup(particles, min_occurs, max_occurs)
    return ChoiceGroup(particles, min_occurs, max_occurs)


def _parse_facets(node: XmlElement) -> list[Facet]:
    facets = []
    for child in node.element_children:
        local = _local(child.tag)
        if local in ("attribute", "annotation"):
            continue
        facets.append(Facet(local, child.attributes.get("value", "")))
    return facets


def _parse_simple_content(node: XmlElement, scope: _Scope) -> SimpleContent:
    for child in node.element_children:
        derivation = _local(child.tag)
        if derivation in ("extension", "restriction"):
            attributes = [
                _parse_attribute(attr, scope)
                for attr in child.element_children
                if _local(attr.tag) == "attribute"
            ]
            return SimpleContent(
                base=scope.resolve(child.attributes["base"]),
                derivation=derivation,
                attributes=attributes,
                facets=_parse_facets(child),
            )
    raise SchemaError("simpleContent without extension/restriction")


def _parse_complex_type(node: XmlElement, scope: _Scope) -> ComplexType:
    annotation, children = _pop_annotation(node)
    complex_type = ComplexType(name=node.attributes["name"], annotation=annotation)
    for child in children:
        local = _local(child.tag)
        if local in ("sequence", "choice"):
            complex_type.particle = _parse_group(child, scope)
        elif local == "simpleContent":
            complex_type.simple_content = _parse_simple_content(child, scope)
        elif local == "attribute":
            complex_type.attributes.append(_parse_attribute(child, scope))
        else:
            raise SchemaError(f"unsupported complexType child {child.tag!r}")
    return complex_type


def _parse_simple_type(node: XmlElement, scope: _Scope) -> SimpleType:
    annotation, children = _pop_annotation(node)
    for child in children:
        if _local(child.tag) == "restriction":
            return SimpleType(
                name=node.attributes["name"],
                base=scope.resolve(child.attributes["base"]),
                facets=_parse_facets(child),
                annotation=annotation,
            )
    raise SchemaError(f"simpleType {node.attributes.get('name')!r} without restriction")
