"""Serialize :class:`repro.xsd.components.Schema` trees to XSD text.

Output mirrors the paper's Figures 6-8: namespace declarations on the root
element (document prefix first), imports before type definitions, attribute
order ``minOccurs maxOccurs name type`` on local elements with defaulted
occurrence attributes omitted.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.ndr.annotations import CCTS_DOCUMENTATION_NS
from repro.xmlutil.qname import QName
from repro.xmlutil.writer import XmlElement, XmlWriter
from repro.xsd.components import (
    XSD_NS,
    Annotation,
    AttributeDecl,
    ChoiceGroup,
    ComplexType,
    ElementDecl,
    Schema,
    SequenceGroup,
    SimpleType,
)

#: Prefix used for the XML Schema namespace itself, as in the paper.
XSD_PREFIX = "xsd"

#: Namespace + prefix of the optional embedded provenance appinfo blocks.
PROVENANCE_NS = "urn:x-repro:provenance"
PROVENANCE_PREFIX = "prov"


class _PrefixMap:
    """Resolves QNames against the schema's declared prefixes."""

    def __init__(self, schema: Schema) -> None:
        self._by_namespace: dict[str, str] = {}
        for prefix, uri in schema.prefixes.items():
            self._by_namespace.setdefault(uri, prefix)
        self._by_namespace.setdefault(XSD_NS, XSD_PREFIX)
        self._target = schema.target_namespace

    def render(self, qname: QName) -> str:
        prefix = self._by_namespace.get(qname.namespace)
        if prefix is None:
            raise SchemaError(
                f"no prefix declared for namespace {qname.namespace!r} (needed by {qname.local!r})"
            )
        return f"{prefix}:{qname.local}"


def schema_to_xml(schema: Schema, provenance: list[dict] | None = None) -> XmlElement:
    """Build the ``xsd:schema`` element tree for ``schema``.

    ``provenance`` (JSON-ready provenance record dicts, see
    :mod:`repro.xsdgen.provenance`) embeds an ``xsd:annotation/xsd:appinfo``
    block with one ``prov:record`` element per record as the document's
    first child.  Omitted (the default), the output is byte-identical to
    a provenance-unaware writer.
    """
    prefixes = _PrefixMap(schema)
    root = XmlElement(f"{XSD_PREFIX}:schema")
    for prefix, uri in schema.prefixes.items():
        if uri == XSD_NS:
            continue  # the xsd binding is always emitted last, as in Figure 6
        root.set(f"xmlns:{prefix}" if prefix else "xmlns", uri)
    root.set("attributeFormDefault", schema.attribute_form_default)
    root.set("elementFormDefault", schema.element_form_default)
    root.set("targetNamespace", schema.target_namespace)
    if schema.version is not None:
        root.set("version", schema.version)
    if provenance:
        root.set(f"xmlns:{PROVENANCE_PREFIX}", PROVENANCE_NS)
    root.set(f"xmlns:{XSD_PREFIX}", XSD_NS)

    if provenance:
        root.append(_provenance_appinfo(provenance))
    if schema.annotation is not None and not schema.annotation.is_empty():
        root.append(_annotation_to_xml(schema.annotation))
    for import_decl in schema.imports:
        root.add(
            f"{XSD_PREFIX}:import",
            {"schemaLocation": import_decl.schema_location, "namespace": import_decl.namespace},
        )
    for item in schema.items:
        if isinstance(item, ComplexType):
            root.append(_complex_type_to_xml(item, prefixes))
        elif isinstance(item, SimpleType):
            root.append(_simple_type_to_xml(item, prefixes))
        elif isinstance(item, ElementDecl):
            root.append(_element_to_xml(item, prefixes, global_decl=True))
        else:  # pragma: no cover - the component model is closed
            raise SchemaError(f"cannot serialize schema item {item!r}")
    return root


def schema_to_string(schema: Schema, provenance: list[dict] | None = None) -> str:
    """Render ``schema`` as an XSD document string."""
    return XmlWriter().to_string(schema_to_xml(schema, provenance))


def _provenance_appinfo(records: list[dict]) -> XmlElement:
    """The ``xsd:annotation/xsd:appinfo`` block of embedded provenance."""
    node = XmlElement(f"{XSD_PREFIX}:annotation")
    appinfo = node.add(f"{XSD_PREFIX}:appinfo", {"source": PROVENANCE_NS})
    for record in records:
        appinfo.add(
            f"{PROVENANCE_PREFIX}:record",
            {key: str(value) for key, value in sorted(record.items())},
        )
    return node


def _annotation_to_xml(annotation: Annotation) -> XmlElement:
    node = XmlElement(f"{XSD_PREFIX}:annotation")
    documentation = node.add(f"{XSD_PREFIX}:documentation")
    for name, text in annotation.entries:
        entry = documentation.add(f"ccts:{name}")
        if text:
            entry.text(text)
    return node


def _maybe_annotate(node: XmlElement, annotation: Annotation | None) -> None:
    if annotation is not None and not annotation.is_empty():
        node.append(_annotation_to_xml(annotation))


def _element_to_xml(element: ElementDecl, prefixes: _PrefixMap, global_decl: bool = False) -> XmlElement:
    node = XmlElement(f"{XSD_PREFIX}:element")
    if not global_decl:
        if element.min_occurs != 1:
            node.set("minOccurs", str(element.min_occurs))
        if element.max_occurs is None:
            node.set("maxOccurs", "unbounded")
        elif element.max_occurs != 1:
            node.set("maxOccurs", str(element.max_occurs))
    if element.is_ref:
        node.set("ref", prefixes.render(element.ref))
    else:
        node.set("name", element.name)
        if element.type is not None:
            node.set("type", prefixes.render(element.type))
    _maybe_annotate(node, element.annotation)
    return node


def _attribute_to_xml(attribute: AttributeDecl, prefixes: _PrefixMap) -> XmlElement:
    node = XmlElement(f"{XSD_PREFIX}:attribute")
    node.set("name", attribute.name)
    node.set("type", prefixes.render(attribute.type))
    node.set("use", attribute.use.value)
    _maybe_annotate(node, attribute.annotation)
    return node


def _group_to_xml(group: SequenceGroup | ChoiceGroup, prefixes: _PrefixMap) -> XmlElement:
    tag = "sequence" if isinstance(group, SequenceGroup) else "choice"
    node = XmlElement(f"{XSD_PREFIX}:{tag}")
    if group.min_occurs != 1:
        node.set("minOccurs", str(group.min_occurs))
    if group.max_occurs is None:
        node.set("maxOccurs", "unbounded")
    elif group.max_occurs != 1:
        node.set("maxOccurs", str(group.max_occurs))
    for particle in group.particles:
        if isinstance(particle, ElementDecl):
            node.append(_element_to_xml(particle, prefixes))
        else:
            node.append(_group_to_xml(particle, prefixes))
    return node


def _complex_type_to_xml(complex_type: ComplexType, prefixes: _PrefixMap) -> XmlElement:
    node = XmlElement(f"{XSD_PREFIX}:complexType")
    node.set("name", complex_type.name)
    _maybe_annotate(node, complex_type.annotation)
    if complex_type.simple_content is not None:
        content = node.add(f"{XSD_PREFIX}:simpleContent")
        derivation = content.add(
            f"{XSD_PREFIX}:{complex_type.simple_content.derivation}",
            {"base": prefixes.render(complex_type.simple_content.base)},
        )
        for facet in complex_type.simple_content.facets:
            derivation.add(f"{XSD_PREFIX}:{facet.kind}", {"value": facet.value})
        for attribute in complex_type.simple_content.attributes:
            derivation.append(_attribute_to_xml(attribute, prefixes))
    elif complex_type.particle is not None:
        node.append(_group_to_xml(complex_type.particle, prefixes))
    for attribute in complex_type.attributes:
        node.append(_attribute_to_xml(attribute, prefixes))
    return node


def _simple_type_to_xml(simple_type: SimpleType, prefixes: _PrefixMap) -> XmlElement:
    node = XmlElement(f"{XSD_PREFIX}:simpleType")
    node.set("name", simple_type.name)
    _maybe_annotate(node, simple_type.annotation)
    restriction = node.add(f"{XSD_PREFIX}:restriction", {"base": prefixes.render(simple_type.base)})
    for facet in simple_type.facets:
        restriction.add(f"{XSD_PREFIX}:{facet.kind}", {"value": facet.value})
    return node


# Schemas that annotate must declare the ccts prefix; exported for reuse.
CCTS_PREFIX_BINDING = ("ccts", CCTS_DOCUMENTATION_NS)
