"""Built-in XSD datatype lexical checks and facet validation.

The NDR maps CCTS primitives onto a small set of XSD built-ins (paper
section 4.1: "Where primitive types are needed (String, Integer ...) the
build-in types of the XSD schema are taken").  The validator needs lexical
checks for those built-ins plus the facet machinery of simple-type
restrictions.

Facet semantics follow XML Schema 1.0 part 2:

* range facets (``minInclusive`` ...) compare exact :class:`decimal.Decimal`
  values, never floats -- ``9223372036854775808`` must *fail* a
  ``maxInclusive`` of ``9223372036854775807`` even though both round to the
  same ``float``;
* calendar types reject impossible dates (``2024-02-31``) and out-of-range
  clock fields (``29:99:99``) via real calendar arithmetic, not just digit
  patterns;
* ``length``/``minLength``/``maxLength`` measure *octets* for ``hexBinary``
  and ``base64Binary`` (the XSD value space), not lexical characters.

:func:`compile_facets` pre-compiles a facet list into one closure per facet
(patterns compiled once, bounds parsed once) for the compiled-validator
layer in :mod:`repro.xsd.compiled`; :func:`check_facets` stays the
per-call convenience API and produces identical problem lists.
"""

from __future__ import annotations

import datetime as _datetime
import re
from decimal import Decimal, InvalidOperation
from typing import Callable

from repro.xmlutil.qname import QName
from repro.xsd.components import XSD_NS, Facet

_INTEGER_RE = re.compile(r"^[+-]?\d+$")
_DECIMAL_RE = re.compile(r"^[+-]?(\d+(\.\d*)?|\.\d+)$")
_FLOAT_RE = re.compile(r"^([+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?|INF|-INF|NaN)$")
_DATE_RE = re.compile(r"^(-?)(\d{4,})-(\d{2})-(\d{2})(Z|[+-]\d{2}:\d{2})?$")
_TIME_RE = re.compile(r"^(\d{2}):(\d{2}):(\d{2})(\.\d+)?(Z|[+-]\d{2}:\d{2})?$")
_DATETIME_RE = re.compile(
    r"^-?\d{4,}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}(\.\d+)?(Z|[+-]\d{2}:\d{2})?$"
)
_GYEAR_RE = re.compile(r"^-?(\d{4,})(Z|[+-]\d{2}:\d{2})?$")
_GYEARMONTH_RE = re.compile(r"^-?(\d{4,})-(\d{2})(Z|[+-]\d{2}:\d{2})?$")
_BASE64_RE = re.compile(r"^[A-Za-z0-9+/\s]*={0,2}\s*$")
_HEX_RE = re.compile(r"^([0-9a-fA-F]{2})*$")
_NCNAME_RE = re.compile(r"^[A-Za-z_][\w.\-]*$")
_LANGUAGE_RE = re.compile(r"^[a-zA-Z]{1,8}(-[a-zA-Z0-9]{1,8})*$")
_DURATION_RE = re.compile(
    r"^-?P(?=.)(\d+Y)?(\d+M)?(\d+D)?(T(?=.)(\d+H)?(\d+M)?(\d+(\.\d+)?S)?)?$"
)
_WHITESPACE_RE = re.compile(r"\s+")
_ANYURI_WS_RE = re.compile(r"[ \t\n\r]")

#: Days per month in a non-leap year (index 1-12).
_MONTH_DAYS = (0, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def _is_leap_year(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def _check_timezone(suffix: str | None) -> bool:
    """Validate an optional ``Z``/``+hh:mm`` suffix (offsets up to 14:00)."""
    if not suffix or suffix == "Z":
        return True
    hours, minutes = int(suffix[1:3]), int(suffix[4:6])
    if hours > 14 or minutes > 59:
        return False
    return hours < 14 or minutes == 0


def _check_date(value: str) -> bool:
    match = _DATE_RE.match(value)
    if not match:
        return False
    year, month, day = int(match[2]), int(match[3]), int(match[4])
    if year == 0 or not 1 <= month <= 12:
        # XSD 1.0 prohibits the year 0000.
        return False
    if not match[1] and 1 <= year <= 9999:
        try:
            _datetime.date(year, month, day)
        except ValueError:
            return False
    else:
        # Outside datetime.date's range (negative or five-digit years):
        # proleptic-Gregorian month lengths by hand.
        days = _MONTH_DAYS[month] + (1 if month == 2 and _is_leap_year(year) else 0)
        if not 1 <= day <= days:
            return False
    return _check_timezone(match[5])


def _check_time(value: str) -> bool:
    match = _TIME_RE.match(value)
    if not match:
        return False
    hour, minute, second = int(match[1]), int(match[2]), int(match[3])
    if hour == 24:
        # 24:00:00 is XSD's end-of-day; every sub-field must be zero.
        if minute != 0 or second != 0:
            return False
        if match[4] and match[4].strip("0") != ".":
            return False
    elif hour > 23 or minute > 59 or second > 59:
        return False
    return _check_timezone(match[5])


def _check_datetime(value: str) -> bool:
    if not _DATETIME_RE.match(value):
        return False
    date_part, _, time_part = value.partition("T")
    return _check_date(date_part) and _check_time(time_part)


def _check_gyear(value: str) -> bool:
    match = _GYEAR_RE.match(value)
    return bool(match) and int(match[1]) != 0 and _check_timezone(match[2])


def _check_gyearmonth(value: str) -> bool:
    match = _GYEARMONTH_RE.match(value)
    if not match:
        return False
    return int(match[1]) != 0 and 1 <= int(match[2]) <= 12 and _check_timezone(match[3])


def _check_boolean(value: str) -> bool:
    return value in ("true", "false", "0", "1")


def _bounded_integer(low: int | None, high: int | None) -> Callable[[str], bool]:
    def check(value: str) -> bool:
        if not _INTEGER_RE.match(value):
            return False
        number = int(value)
        if low is not None and number < low:
            return False
        return high is None or number <= high

    return check


#: Lexical checks per built-in type local name.  ``string`` variants accept
#: anything; list/union types are out of scope for the NDR subset.
_BUILTIN_CHECKS: dict[str, Callable[[str], bool]] = {
    "string": lambda value: True,
    "normalizedString": lambda value: "\n" not in value and "\t" not in value and "\r" not in value,
    "token": lambda value: value == " ".join(value.split()),
    "language": lambda value: bool(_LANGUAGE_RE.match(value)),
    "NCName": lambda value: bool(_NCNAME_RE.match(value)),
    "Name": lambda value: bool(_NCNAME_RE.match(value.replace(":", "_"))),
    "ID": lambda value: bool(_NCNAME_RE.match(value)),
    "IDREF": lambda value: bool(_NCNAME_RE.match(value)),
    # anyURI collapses whitespace, so leading/trailing runs are tolerated;
    # *internal* whitespace of any kind (space, tab, newline, CR) is not a
    # legal URI character.
    "anyURI": lambda value: not _ANYURI_WS_RE.search(value.strip()),
    "boolean": _check_boolean,
    "integer": lambda value: bool(_INTEGER_RE.match(value)),
    "nonNegativeInteger": _bounded_integer(0, None),
    "positiveInteger": _bounded_integer(1, None),
    "nonPositiveInteger": _bounded_integer(None, 0),
    "negativeInteger": _bounded_integer(None, -1),
    "long": _bounded_integer(-(2**63), 2**63 - 1),
    "int": _bounded_integer(-(2**31), 2**31 - 1),
    "short": _bounded_integer(-(2**15), 2**15 - 1),
    "byte": _bounded_integer(-(2**7), 2**7 - 1),
    "unsignedLong": _bounded_integer(0, 2**64 - 1),
    "unsignedInt": _bounded_integer(0, 2**32 - 1),
    "unsignedShort": _bounded_integer(0, 2**16 - 1),
    "unsignedByte": _bounded_integer(0, 2**8 - 1),
    "decimal": lambda value: bool(_DECIMAL_RE.match(value)),
    "float": lambda value: bool(_FLOAT_RE.match(value)),
    "double": lambda value: bool(_FLOAT_RE.match(value)),
    "date": _check_date,
    "time": _check_time,
    "dateTime": _check_datetime,
    "duration": lambda value: bool(_DURATION_RE.match(value)),
    "gYear": _check_gyear,
    "gYearMonth": _check_gyearmonth,
    "base64Binary": lambda value: bool(_BASE64_RE.match(value)) and len(re.sub(r"\s", "", value)) % 4 == 0,
    "hexBinary": lambda value: bool(_HEX_RE.match(value)),
}

#: Built-ins whose values compare numerically for range facets.
_NUMERIC_TYPES = frozenset(
    {
        "integer", "nonNegativeInteger", "positiveInteger", "nonPositiveInteger",
        "negativeInteger", "long", "int", "short", "byte", "unsignedLong",
        "unsignedInt", "unsignedShort", "unsignedByte", "decimal", "float", "double",
    }
)

#: Built-ins whose length facets measure decoded octets, not characters.
_BINARY_TYPES = frozenset({"hexBinary", "base64Binary"})


def is_builtin(qname: QName) -> bool:
    """True when ``qname`` names a supported XSD built-in type."""
    return qname.namespace == XSD_NS and qname.local in _BUILTIN_CHECKS


def check_builtin(qname: QName, value: str) -> bool:
    """Lexically validate ``value`` against the built-in type ``qname``.

    Unknown built-ins (an out-of-subset type slipped into a hand-written
    schema) are accepted permissively.
    """
    if qname.namespace != XSD_NS:
        return False
    check = _BUILTIN_CHECKS.get(qname.local)
    if check is None:
        return True
    value = normalize_whitespace(qname, value)
    return check(value)


def normalize_whitespace(qname: QName, value: str) -> str:
    """Apply the built-in type's whiteSpace facet (collapse for non-strings)."""
    if qname.namespace == XSD_NS and qname.local in ("string",):
        return value
    if qname.namespace == XSD_NS and qname.local == "normalizedString":
        return value.replace("\n", " ").replace("\t", " ").replace("\r", " ")
    return " ".join(value.split())


def compile_builtin(qname: QName) -> tuple[Callable[[str], str], Callable[[str], bool]]:
    """A pre-resolved ``(normalizer, lexical check)`` pair for ``qname``.

    ``normalizer(value)`` applies the type's whiteSpace facet and
    ``check(normalized)`` is the lexical test -- together equivalent to
    :func:`normalize_whitespace` + :func:`check_builtin` but without the
    per-call namespace tests and dict lookups.  Both normalizations are
    idempotent, so the check may be handed already-normalized input.
    """
    if qname.namespace != XSD_NS:
        return _collapse, lambda value: False
    if qname.local == "string":
        normalize = _identity
    elif qname.local == "normalizedString":
        normalize = _replace_whitespace
    else:
        normalize = _collapse
    check = _BUILTIN_CHECKS.get(qname.local)
    if check is None:
        return normalize, lambda value: True
    return normalize, check


def _identity(value: str) -> str:
    return value


def _replace_whitespace(value: str) -> str:
    return value.replace("\n", " ").replace("\t", " ").replace("\r", " ")


def _collapse(value: str) -> str:
    return " ".join(value.split())


def measured_length(value: str, base: QName) -> int:
    """The length XSD's length facets constrain for a value of ``base``.

    ``hexBinary``/``base64Binary`` lengths are defined over the *decoded
    octets* (two hex digits, or a base64 quantum minus its padding, per
    octet); every other type measures characters.
    """
    if base.namespace == XSD_NS:
        if base.local == "hexBinary":
            return len(value) // 2
        if base.local == "base64Binary":
            chars = _WHITESPACE_RE.sub("", value)
            padding = len(chars) - len(chars.rstrip("="))
            return max((len(chars) // 4) * 3 - padding, 0)
    return len(value)


def _to_decimal(value: str) -> Decimal | None:
    """Exact numeric value of an XSD numeric lexical; None when not numeric.

    ``INF``/``-INF``/``NaN`` (the float/double specials) map onto their
    :class:`~decimal.Decimal` counterparts, so range comparisons stay exact
    for arbitrary-precision integers and decimals while the specials keep
    IEEE ordering.
    """
    try:
        return Decimal(value)
    except InvalidOperation:
        return None


def check_facets(facets: list[Facet], value: str, base: QName) -> list[str]:
    """Validate ``value`` against constraining facets; returns problems.

    Enumeration facets combine disjunctively (any match passes); all other
    facets must each hold.  ``base`` (the built-in the restriction chain
    bottoms out at) decides numeric comparison and binary length semantics.
    """
    return compile_facets(facets, base)(value)


def compile_facets(facets: list[Facet], base: QName) -> Callable[[str], list[str]]:
    """Pre-compile ``facets`` into one reusable checker closure.

    Patterns are compiled once, numeric bounds and length limits parsed
    once; the returned callable maps a (whitespace-normalized) value to the
    same problem list :func:`check_facets` produces, in the same order.
    The compiled-validator layer calls this at schema-compile time so the
    per-document hot path does no facet parsing at all.
    """
    numeric = base.namespace == XSD_NS and base.local in _NUMERIC_TYPES
    checks: list[Callable[[str], str | None]] = []
    enumerations = [facet.value for facet in facets if facet.kind == "enumeration"]
    if enumerations:
        allowed = frozenset(enumerations)

        def check_enumeration(value: str) -> str | None:
            if value not in allowed:
                return (
                    f"value {value!r} is not one of the enumerated values "
                    f"{enumerations!r}"
                )
            return None

        checks.append(check_enumeration)
    for facet in facets:
        if facet.kind == "enumeration":
            continue
        checks.append(_compile_single_facet(facet, base, numeric))

    def run(value: str) -> list[str]:
        problems = []
        for check in checks:
            problem = check(value)
            if problem is not None:
                problems.append(problem)
        return problems

    return run


def _compile_single_facet(
    facet: Facet, base: QName, numeric: bool
) -> Callable[[str], str | None]:
    kind = facet.kind
    if kind == "pattern":
        program = re.compile(facet.value)

        def check_pattern(value: str) -> str | None:
            if program.fullmatch(value) is None:
                return f"value {value!r} does not match pattern {facet.value!r}"
            return None

        return check_pattern
    if kind in ("length", "minLength", "maxLength"):
        limit = int(facet.value)

        def check_length(value: str) -> str | None:
            length = measured_length(value, base)
            if kind == "length" and length != limit:
                return f"value {value!r} length {length} != {facet.value}"
            if kind == "minLength" and length < limit:
                return f"value {value!r} shorter than minLength {facet.value}"
            if kind == "maxLength" and length > limit:
                return f"value {value!r} longer than maxLength {facet.value}"
            return None

        return check_length
    if kind in ("minInclusive", "maxInclusive", "minExclusive", "maxExclusive"):
        if not numeric:
            # Range facets on non-numeric bases are out of subset.
            return lambda value: None
        bound = _to_decimal(facet.value)

        def check_range(value: str) -> str | None:
            number = _to_decimal(value)
            if number is None:
                return f"value {value!r} is not numeric for facet {kind}"
            if bound is None or number.is_nan() or bound.is_nan():
                # NaN (and an unparseable bound) is incomparable: no
                # ordering facet can hold or fail, mirroring IEEE 754.
                return None
            if kind == "minInclusive" and number < bound:
                return f"value {value} < minInclusive {facet.value}"
            if kind == "maxInclusive" and number > bound:
                return f"value {value} > maxInclusive {facet.value}"
            if kind == "minExclusive" and number <= bound:
                return f"value {value} <= minExclusive {facet.value}"
            if kind == "maxExclusive" and number >= bound:
                return f"value {value} >= maxExclusive {facet.value}"
            return None

        return check_range
    if kind == "totalDigits":
        limit = int(facet.value)

        def check_total_digits(value: str) -> str | None:
            digits = sum(1 for ch in value if ch.isdigit())
            if digits > limit:
                return f"value {value!r} has more than {facet.value} digits"
            return None

        return check_total_digits
    if kind == "fractionDigits":
        limit = int(facet.value)

        def check_fraction_digits(value: str) -> str | None:
            _, _, fraction = value.partition(".")
            if len(fraction) > limit:
                return f"value {value!r} has more than {facet.value} fraction digits"
            return None

        return check_fraction_digits
    return lambda value: None
