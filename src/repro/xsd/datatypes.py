"""Built-in XSD datatype lexical checks and facet validation.

The NDR maps CCTS primitives onto a small set of XSD built-ins (paper
section 4.1: "Where primitive types are needed (String, Integer ...) the
build-in types of the XSD schema are taken").  The validator needs lexical
checks for those built-ins plus the facet machinery of simple-type
restrictions.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.xmlutil.qname import QName
from repro.xsd.components import XSD_NS, Facet

_INTEGER_RE = re.compile(r"^[+-]?\d+$")
_DECIMAL_RE = re.compile(r"^[+-]?(\d+(\.\d*)?|\.\d+)$")
_FLOAT_RE = re.compile(r"^([+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?|INF|-INF|NaN)$")
_DATE_RE = re.compile(r"^-?\d{4,}-\d{2}-\d{2}(Z|[+-]\d{2}:\d{2})?$")
_TIME_RE = re.compile(r"^\d{2}:\d{2}:\d{2}(\.\d+)?(Z|[+-]\d{2}:\d{2})?$")
_DATETIME_RE = re.compile(
    r"^-?\d{4,}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}(\.\d+)?(Z|[+-]\d{2}:\d{2})?$"
)
_GYEAR_RE = re.compile(r"^-?\d{4,}(Z|[+-]\d{2}:\d{2})?$")
_GYEARMONTH_RE = re.compile(r"^-?\d{4,}-\d{2}(Z|[+-]\d{2}:\d{2})?$")
_BASE64_RE = re.compile(r"^[A-Za-z0-9+/\s]*={0,2}\s*$")
_HEX_RE = re.compile(r"^([0-9a-fA-F]{2})*$")
_NCNAME_RE = re.compile(r"^[A-Za-z_][\w.\-]*$")
_LANGUAGE_RE = re.compile(r"^[a-zA-Z]{1,8}(-[a-zA-Z0-9]{1,8})*$")
_DURATION_RE = re.compile(
    r"^-?P(?=.)(\d+Y)?(\d+M)?(\d+D)?(T(?=.)(\d+H)?(\d+M)?(\d+(\.\d+)?S)?)?$"
)


def _check_date(value: str) -> bool:
    if not _DATE_RE.match(value):
        return False
    body = value.lstrip("-")[:10]
    _, month, day = body.split("-")
    return 1 <= int(month) <= 12 and 1 <= int(day) <= 31


def _check_datetime(value: str) -> bool:
    if not _DATETIME_RE.match(value):
        return False
    date_part = value.split("T", 1)[0]
    return _check_date(date_part)


def _check_boolean(value: str) -> bool:
    return value in ("true", "false", "0", "1")


def _bounded_integer(low: int | None, high: int | None) -> Callable[[str], bool]:
    def check(value: str) -> bool:
        if not _INTEGER_RE.match(value):
            return False
        number = int(value)
        if low is not None and number < low:
            return False
        return high is None or number <= high

    return check


#: Lexical checks per built-in type local name.  ``string`` variants accept
#: anything; list/union types are out of scope for the NDR subset.
_BUILTIN_CHECKS: dict[str, Callable[[str], bool]] = {
    "string": lambda value: True,
    "normalizedString": lambda value: "\n" not in value and "\t" not in value and "\r" not in value,
    "token": lambda value: value == " ".join(value.split()),
    "language": lambda value: bool(_LANGUAGE_RE.match(value)),
    "NCName": lambda value: bool(_NCNAME_RE.match(value)),
    "Name": lambda value: bool(_NCNAME_RE.match(value.replace(":", "_"))),
    "ID": lambda value: bool(_NCNAME_RE.match(value)),
    "IDREF": lambda value: bool(_NCNAME_RE.match(value)),
    "anyURI": lambda value: " " not in value.strip(),
    "boolean": _check_boolean,
    "integer": lambda value: bool(_INTEGER_RE.match(value)),
    "nonNegativeInteger": _bounded_integer(0, None),
    "positiveInteger": _bounded_integer(1, None),
    "nonPositiveInteger": _bounded_integer(None, 0),
    "negativeInteger": _bounded_integer(None, -1),
    "long": _bounded_integer(-(2**63), 2**63 - 1),
    "int": _bounded_integer(-(2**31), 2**31 - 1),
    "short": _bounded_integer(-(2**15), 2**15 - 1),
    "byte": _bounded_integer(-(2**7), 2**7 - 1),
    "unsignedLong": _bounded_integer(0, 2**64 - 1),
    "unsignedInt": _bounded_integer(0, 2**32 - 1),
    "unsignedShort": _bounded_integer(0, 2**16 - 1),
    "unsignedByte": _bounded_integer(0, 2**8 - 1),
    "decimal": lambda value: bool(_DECIMAL_RE.match(value)),
    "float": lambda value: bool(_FLOAT_RE.match(value)),
    "double": lambda value: bool(_FLOAT_RE.match(value)),
    "date": _check_date,
    "time": lambda value: bool(_TIME_RE.match(value)),
    "dateTime": _check_datetime,
    "duration": lambda value: bool(_DURATION_RE.match(value)),
    "gYear": lambda value: bool(_GYEAR_RE.match(value)),
    "gYearMonth": lambda value: bool(_GYEARMONTH_RE.match(value)),
    "base64Binary": lambda value: bool(_BASE64_RE.match(value)) and len(re.sub(r"\s", "", value)) % 4 == 0,
    "hexBinary": lambda value: bool(_HEX_RE.match(value)),
}

#: Built-ins whose values compare numerically for range facets.
_NUMERIC_TYPES = frozenset(
    {
        "integer", "nonNegativeInteger", "positiveInteger", "nonPositiveInteger",
        "negativeInteger", "long", "int", "short", "byte", "unsignedLong",
        "unsignedInt", "unsignedShort", "unsignedByte", "decimal", "float", "double",
    }
)


def is_builtin(qname: QName) -> bool:
    """True when ``qname`` names a supported XSD built-in type."""
    return qname.namespace == XSD_NS and qname.local in _BUILTIN_CHECKS


def check_builtin(qname: QName, value: str) -> bool:
    """Lexically validate ``value`` against the built-in type ``qname``.

    Unknown built-ins (an out-of-subset type slipped into a hand-written
    schema) are accepted permissively.
    """
    if qname.namespace != XSD_NS:
        return False
    check = _BUILTIN_CHECKS.get(qname.local)
    if check is None:
        return True
    value = normalize_whitespace(qname, value)
    return check(value)


def normalize_whitespace(qname: QName, value: str) -> str:
    """Apply the built-in type's whiteSpace facet (collapse for non-strings)."""
    if qname.namespace == XSD_NS and qname.local in ("string",):
        return value
    if qname.namespace == XSD_NS and qname.local == "normalizedString":
        return value.replace("\n", " ").replace("\t", " ").replace("\r", " ")
    return " ".join(value.split())


def check_facets(facets: list[Facet], value: str, base: QName) -> list[str]:
    """Validate ``value`` against constraining facets; returns problems.

    Enumeration facets combine disjunctively (any match passes); all other
    facets must each hold.
    """
    problems: list[str] = []
    enumerations = [facet.value for facet in facets if facet.kind == "enumeration"]
    if enumerations and value not in enumerations:
        problems.append(
            f"value {value!r} is not one of the enumerated values {enumerations!r}"
        )
    numeric = base.namespace == XSD_NS and base.local in _NUMERIC_TYPES
    for facet in facets:
        if facet.kind == "enumeration":
            continue
        problem = _check_single_facet(facet, value, numeric)
        if problem is not None:
            problems.append(problem)
    return problems


def _check_single_facet(facet: Facet, value: str, numeric: bool) -> str | None:
    if facet.kind == "pattern":
        if re.fullmatch(facet.value, value) is None:
            return f"value {value!r} does not match pattern {facet.value!r}"
        return None
    if facet.kind == "length" and len(value) != int(facet.value):
        return f"value {value!r} length {len(value)} != {facet.value}"
    if facet.kind == "minLength" and len(value) < int(facet.value):
        return f"value {value!r} shorter than minLength {facet.value}"
    if facet.kind == "maxLength" and len(value) > int(facet.value):
        return f"value {value!r} longer than maxLength {facet.value}"
    if facet.kind in ("minInclusive", "maxInclusive", "minExclusive", "maxExclusive"):
        try:
            number = float(value) if numeric else None
        except ValueError:
            return f"value {value!r} is not numeric for facet {facet.kind}"
        if number is None:
            return None  # range facets on non-numeric bases are out of subset
        bound = float(facet.value)
        if facet.kind == "minInclusive" and number < bound:
            return f"value {value} < minInclusive {facet.value}"
        if facet.kind == "maxInclusive" and number > bound:
            return f"value {value} > maxInclusive {facet.value}"
        if facet.kind == "minExclusive" and number <= bound:
            return f"value {value} <= minExclusive {facet.value}"
        if facet.kind == "maxExclusive" and number >= bound:
            return f"value {value} >= maxExclusive {facet.value}"
        return None
    if facet.kind == "totalDigits":
        digits = sum(1 for ch in value if ch.isdigit())
        if digits > int(facet.value):
            return f"value {value!r} has more than {facet.value} digits"
    if facet.kind == "fractionDigits":
        _, _, fraction = value.partition(".")
        if len(fraction) > int(facet.value):
            return f"value {value!r} has more than {facet.value} fraction digits"
    return None
