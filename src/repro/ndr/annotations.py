"""CCTS annotation blocks for generated schemas.

"The CCTS standard prescribes a set of annotations for every element of the
standard. An ABIE for instance, amongst others, has two mandatory annotation
fields Version and Definition. ... The values for the different annotation
fields are specified in tagged values." (paper, section 4.1)

The documentation namespace is the one Figure 6 line 1 binds to ``ccts``:
``urn:un:unece:uncefact:documentation:standard:CoreComponentsTechnicalSpecification:2``.
"""

from __future__ import annotations

from repro.ccts.base import ElementWrapper
from repro.profile import (
    TAG_BUSINESS_TERM,
    TAG_DEFINITION,
    TAG_DICTIONARY_ENTRY_NAME,
    TAG_UNIQUE_IDENTIFIER,
    TAG_USAGE_RULE,
    TAG_VERSION,
)

#: The CCTS documentation namespace bound to the ``ccts`` prefix.
CCTS_DOCUMENTATION_NS = (
    "urn:un:unece:uncefact:documentation:standard:CoreComponentsTechnicalSpecification:2"
)

#: (tag constant, ccts documentation element name, include-when-empty)
_ANNOTATION_FIELDS: tuple[tuple[str, str, bool], ...] = (
    (TAG_UNIQUE_IDENTIFIER, "UniqueID", False),
    (TAG_VERSION, "Version", True),
    (TAG_DICTIONARY_ENTRY_NAME, "DictionaryEntryName", False),
    (TAG_DEFINITION, "Definition", True),
    (TAG_BUSINESS_TERM, "BusinessTerm", False),
    (TAG_USAGE_RULE, "UsageRule", False),
)


def annotation_entries_for(
    wrapper: ElementWrapper,
    acronym: str,
    den: str | None = None,
) -> list[tuple[str, str]]:
    """The ``(ccts element name, text)`` pairs for one model element.

    ``acronym`` is the CCTS component acronym (``ABIE``, ``BBIE``, ``CDT``,
    ...) written as the ``AcronymCode``; ``den`` overrides the dictionary
    entry name (wrappers compute richer DENs than the stored tag).
    Version and Definition are always emitted -- they are the two mandatory
    fields the paper names -- with defaults for models that never set them.
    """
    entries: list[tuple[str, str]] = [("AcronymCode", acronym)]
    for tag, element_name, mandatory in _ANNOTATION_FIELDS:
        if tag == TAG_DICTIONARY_ENTRY_NAME and den is not None:
            entries.append((element_name, den))
            continue
        value = wrapper.element.any_tagged_value(tag)
        if value:
            entries.append((element_name, value))
        elif mandatory:
            default = "1.0" if element_name == "Version" else ""
            entries.append((element_name, value if value is not None else default))
    return entries
