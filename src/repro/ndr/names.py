"""XML name derivation per the NDR.

Rules visible in the paper's Figures 6-8:

* complex types are "named after the business entity plus a Type postfix"
  (``HoardingPermit`` -> ``HoardingPermitType``),
* a BBIE element simply takes the attribute name from the class diagram,
* an ASBIE element name "is determined by the role name of the ASBIE
  aggregation plus the name of the target ABIE" (``Billing`` +
  ``Person_Identification`` -> ``BillingPerson_Identification``),
* underscores survive into XML names (Figure 6 line 15), periods and spaces
  of dictionary entry names do not.
"""

from __future__ import annotations

import re

from repro.errors import NamingError
from repro.xmlutil.escape import is_valid_ncname

#: The NDR type-name postfix.
TYPE_POSTFIX = "Type"

_INVALID_NCNAME_CHARS = re.compile(r"[^A-Za-z0-9_.\-]")


def sanitize_ncname(name: str) -> str:
    """Strip characters that would make ``name`` an invalid NCName.

    DEN separators (``". "``), spaces and any exotic punctuation are
    removed; a leading digit, ``-`` or ``.`` is prefixed with ``_``
    (NCNames must start with a letter or underscore).
    """
    cleaned = _INVALID_NCNAME_CHARS.sub("", name.replace(". ", "").replace(" ", ""))
    if not cleaned:
        raise NamingError(f"name {name!r} sanitizes to an empty XML name")
    if cleaned[0].isdigit() or cleaned[0] in "-.":
        cleaned = f"_{cleaned}"
    if not is_valid_ncname(cleaned):
        raise NamingError(f"could not derive a valid XML name from {name!r} (got {cleaned!r})")
    return cleaned


def xml_name_from_den(den: str) -> str:
    """Collapse a CCTS dictionary entry name into an XML name.

    ``Person. Date Of Birth. Date`` -> ``PersonDateOfBirthDate``.  The NDR
    truncation rule additionally drops a trailing representation term that
    repeats the property term's last word (``Country Name. Name`` ->
    ``CountryName``); callers pass DENs through :func:`truncate_den` first
    when they want that behaviour.
    """
    return sanitize_ncname(den)


def truncate_den(den: str) -> str:
    """Apply the NDR repeated-word truncation to a dictionary entry name.

    When the representation term (last DEN component) equals the trailing
    word(s) of the property term, the duplication is dropped:
    ``Address. Country Name. Name`` -> ``Address. Country Name``.
    ``Text`` representation terms are always dropped per NDR rule.

    The comparison is on whole words: a property term ``Exchange Rate``
    repeats the representation term ``Rate`` (dropped), but ``Birthdate``
    does not repeat ``Date`` even though the string ends with it.
    """
    parts = den.split(". ")
    if len(parts) < 2:
        return den
    representation = parts[-1]
    property_term = parts[-2]
    rep_words = representation.split()
    prop_words = property_term.split()
    repeats = bool(rep_words) and prop_words[-len(rep_words) :] == rep_words
    if representation == "Text" or repeats:
        return ". ".join(parts[:-1])
    return den


def complex_type_name(entity_name: str) -> str:
    """The complexType name for an entity: name + ``Type`` postfix."""
    return f"{sanitize_ncname(entity_name)}{TYPE_POSTFIX}"


def enum_simple_type_name(enum_name: str) -> str:
    """The simpleType name for an enumeration: name + ``Type`` postfix."""
    return f"{sanitize_ncname(enum_name)}{TYPE_POSTFIX}"


def bbie_element_name(attribute_name: str) -> str:
    """The element name for a BBIE: "simply ... the name specified by the attribute"."""
    return sanitize_ncname(attribute_name)


def asbie_element_name(role_name: str, target_name: str) -> str:
    """The compound element name for an ASBIE: role + target entity name."""
    return f"{sanitize_ncname(role_name)}{sanitize_ncname(target_name)}"


def attribute_name(sup_name: str) -> str:
    """The XML attribute name for a supplementary component."""
    return sanitize_ncname(sup_name)
