"""UN/CEFACT XML Naming and Design Rules (NDR 2.0) as used by the paper.

This package turns model-level facts into schema-level decisions:

* :mod:`repro.ndr.names` -- XML element/type names (``Type`` postfix for
  complex types, ASBIE compound names = role + target name),
* :mod:`repro.ndr.namespaces` -- target-namespace URNs from library tagged
  values, prefix policy (user prefix or generated ``cdt1``/``qdt1``/``bie2``
  style), schema file and folder names,
* :mod:`repro.ndr.annotations` -- the CCTS documentation blocks written
  into ``xsd:annotation`` when the Figure-5 "annotated" switch is on.
"""

from repro.ndr.annotations import CCTS_DOCUMENTATION_NS, annotation_entries_for
from repro.ndr.names import (
    asbie_element_name,
    bbie_element_name,
    complex_type_name,
    enum_simple_type_name,
    xml_name_from_den,
)
from repro.ndr.namespaces import (
    LibraryNamespace,
    NamespacePolicy,
    PrefixAllocator,
    library_kind_token,
)

__all__ = [
    "CCTS_DOCUMENTATION_NS",
    "LibraryNamespace",
    "NamespacePolicy",
    "PrefixAllocator",
    "annotation_entries_for",
    "asbie_element_name",
    "bbie_element_name",
    "complex_type_name",
    "enum_simple_type_name",
    "library_kind_token",
    "xml_name_from_den",
]
