"""Namespace URNs, prefixes and schema file locations.

Figure 6 of the paper shows the full policy in action:

* the DOCLibrary's target namespace is
  ``urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit`` -- the library's
  ``baseURN`` tagged value, a *kind token* (``data`` for CC/BIE/DOC
  libraries, ``types`` for data-type libraries), the lifecycle status and
  the library name;
* the importing schema binds a **user prefix** when the imported library
  sets the ``namespacePrefix`` tagged value (``commonAggregates``),
  otherwise a **generated prefix**: kind default plus a counter
  ("the number contained in the prefix is generated automatically to
  distinguish between multiple BIELibrary schemas", e.g. ``bie2``);
* schema files live in a folder named after the underscored baseURN
  (``../urn_au_gov_vic_easybiz_/``) and are named from the underscored
  namespace remainder plus the library version
  (``data_draft_CommonAggregates_0.1.xsd``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.profile import (
    BIE_LIBRARY,
    CC_LIBRARY,
    CDT_LIBRARY,
    DOC_LIBRARY,
    ENUM_LIBRARY,
    PRIM_LIBRARY,
    QDT_LIBRARY,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.ccts.libraries import Library

#: Kind token per library stereotype: the URN segment after the baseURN.
_KIND_TOKENS = {
    CC_LIBRARY: "data",
    BIE_LIBRARY: "data",
    DOC_LIBRARY: "data",
    CDT_LIBRARY: "types",
    QDT_LIBRARY: "types",
    ENUM_LIBRARY: "types",
    PRIM_LIBRARY: "types",
}

#: Default prefix stem per library stereotype, for generated prefixes.
_PREFIX_STEMS = {
    CC_LIBRARY: "cc",
    BIE_LIBRARY: "bie",
    DOC_LIBRARY: "doc",
    CDT_LIBRARY: "cdt",
    QDT_LIBRARY: "qdt",
    ENUM_LIBRARY: "enum",
    PRIM_LIBRARY: "prim",
}


def library_kind_token(stereotype: str) -> str:
    """The URN kind token (``data``/``types``) for a library stereotype."""
    return _KIND_TOKENS[stereotype]


def prefix_stem(stereotype: str) -> str:
    """The generated-prefix stem (``cdt``, ``qdt``, ``bie``, ...)."""
    return _PREFIX_STEMS[stereotype]


@dataclass(frozen=True)
class LibraryNamespace:
    """Everything namespace-related about one library's schema."""

    urn: str
    folder: str
    file_name: str
    preferred_prefix: str | None
    stereotype: str

    @property
    def location(self) -> str:
        """The relative schemaLocation used in imports: ``../folder/file``."""
        return f"../{self.folder}/{self.file_name}"


@dataclass
class NamespacePolicy:
    """Computes URNs, file names and prefixes for libraries.

    ``include_version_in_urn`` reproduces the mixed usage of the paper's
    Figure 4, where some package names carry the version in the URN
    (``types:draft:coredatatypes:1.0``) and others do not; the default is
    off, matching Figure 6's target namespace.
    """

    include_version_in_urn: bool = False

    def namespace_for(self, library: "Library") -> LibraryNamespace:
        """Compute the :class:`LibraryNamespace` of a library."""
        base = library.base_urn or f"urn:{library.name.lower()}"
        kind = library_kind_token(library.stereotype)
        remainder = [kind, library.status, library.name]
        if self.include_version_in_urn:
            remainder.append(library.library_version)
        urn = ":".join([base] + remainder)
        folder = base.replace(":", "_") + "_"
        file_name = "_".join(remainder_token for remainder_token in remainder)
        if not self.include_version_in_urn:
            file_name = f"{file_name}_{library.library_version}"
        return LibraryNamespace(
            urn=urn,
            folder=folder,
            file_name=f"{file_name}.xsd",
            preferred_prefix=library.namespace_prefix,
            stereotype=library.stereotype,
        )


@dataclass
class PrefixAllocator:
    """Assigns prefixes inside one generated schema document.

    A library with a user-set ``namespacePrefix`` gets that prefix; other
    libraries get ``{stem}{counter}`` with one counter per stem, counted in
    allocation order (so the second anonymous BIELibrary becomes ``bie2``,
    exactly as Figure 6 line 14 shows).  Collisions with already-taken
    prefixes fall back to the generated scheme.
    """

    taken: set[str] = field(default_factory=set)
    counters: dict[str, int] = field(default_factory=dict)
    by_namespace: dict[str, str] = field(default_factory=dict)

    def allocate(self, namespace: LibraryNamespace) -> str:
        """The prefix for ``namespace`` in this schema (stable per URN).

        The per-stem counter advances for *every* allocated library of that
        kind, including user-prefixed ones: Figure 6 binds the second
        BIELibrary to ``bie2`` even though the first used its own
        ``commonAggregates`` prefix.
        """
        existing = self.by_namespace.get(namespace.urn)
        if existing is not None:
            return existing
        stem = prefix_stem(namespace.stereotype)
        self.counters[stem] = self.counters.get(stem, 0) + 1
        prefix = namespace.preferred_prefix
        if not prefix or prefix in self.taken:
            prefix = f"{stem}{self.counters[stem]}"
            while prefix in self.taken:
                self.counters[stem] += 1
                prefix = f"{stem}{self.counters[stem]}"
        self.taken.add(prefix)
        self.by_namespace[namespace.urn] = prefix
        return prefix

    def reserve(self, prefix: str, namespace_urn: str) -> None:
        """Pin a fixed prefix (``doc``, ``xsd``, ``ccts``) to a namespace."""
        self.taken.add(prefix)
        self.by_namespace[namespace_urn] = prefix
