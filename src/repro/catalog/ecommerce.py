"""An additional e-commerce purchase-order model.

The paper's introduction motivates core components with B2B document
exchange (EDI / UN/EDIFACT heritage); this catalog entry exercises the full
machinery on that canonical domain: a ``PurchaseOrder`` document assembled
from reusable party/line-item aggregates, with currency- and country-
qualified data types.  It doubles as the second domain-specific example
application and as the workload of several scaling benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.cdts import add_standard_cdt_library
from repro.catalog.primitives import add_standard_prim_library
from repro.ccts.bie import Abie
from repro.ccts.derivation import derive_abie, derive_qdt
from repro.ccts.libraries import BieLibrary, DocLibrary
from repro.ccts.model import CctsModel
from repro.uml.association import AggregationKind

#: ISO-4217-ish currency codes used by the CurrencyType QDT.
CURRENCY_LITERALS = {
    "EUR": "Euro",
    "USD": "US Dollar",
    "AUD": "Australian Dollar",
    "GBP": "Pound Sterling",
    "JPY": "Yen",
}

#: ISO-3166-ish country codes used by the CountryType QDT.
COUNTRY_LITERALS = {
    "AT": "Austria",
    "DE": "Germany",
    "US": "United States",
    "AU": "Australia",
}


@dataclass
class EcommerceModel:
    """Handles on the purchase-order model."""

    model: CctsModel
    doc_library: DocLibrary
    bie_library: BieLibrary
    purchase_order: Abie


def build_ecommerce_model() -> EcommerceModel:
    """Construct the purchase-order model."""
    model = CctsModel("ECommerce")
    business = model.add_business_library("OrderExchange", "urn:example:ecommerce")
    prims = add_standard_prim_library(business)
    cdts = add_standard_cdt_library(business, prims)
    code = cdts.cdt("Code")
    text = cdts.cdt("Text")
    name = cdts.cdt("Name")
    identifier = cdts.cdt("Identifier")
    date = cdts.cdt("Date")
    amount = cdts.cdt("Amount")
    quantity = cdts.cdt("Quantity")
    indicator = cdts.cdt("Indicator")

    enums = business.add_enum_library("CodeLists")
    currency_enum = enums.add_enumeration("Currency_Code", CURRENCY_LITERALS)
    country_enum = enums.add_enumeration("Country_Code", COUNTRY_LITERALS)

    qdts = business.add_qdt_library("OrderDataTypes")
    currency_type = derive_qdt(
        qdts, code, "CurrencyType",
        keep_supplementaries={"CodeListName": "0..1"},
        content_enum=currency_enum,
    )
    country_type = derive_qdt(
        qdts, code, "CountryType",
        keep_supplementaries=["CodeListName"],
        content_enum=country_enum,
    )
    order_status_type = derive_qdt(qdts, code, "OrderStatusType")

    ccs = business.add_cc_library("OrderComponents")
    address_acc = ccs.add_acc("Address")
    address_acc.add_bcc("Street", text, "1")
    address_acc.add_bcc("CityName", name, "1")
    address_acc.add_bcc("PostalCode", text, "0..1")
    address_acc.add_bcc("Country", code, "0..1")
    party_acc = ccs.add_acc("Party")
    party_acc.add_bcc("Identification", identifier, "1")
    party_acc.add_bcc("Name", name, "1")
    party_acc.add_bcc("TaxIdentifier", identifier, "0..1")
    party_acc.add_ascc("Postal", address_acc, "1", AggregationKind.COMPOSITE)
    party_acc.add_ascc("Delivery", address_acc, "0..1", AggregationKind.SHARED)
    line_item_acc = ccs.add_acc("LineItem")
    line_item_acc.add_bcc("Identification", identifier, "1")
    line_item_acc.add_bcc("Description", text, "0..1")
    line_item_acc.add_bcc("Quantity", quantity, "1")
    line_item_acc.add_bcc("UnitPrice", amount, "1")
    line_item_acc.add_bcc("BackOrderAllowed", indicator, "0..1")
    order_acc = ccs.add_acc("Order")
    order_acc.add_bcc("Identification", identifier, "1")
    order_acc.add_bcc("IssueDate", date, "1")
    order_acc.add_bcc("Status", code, "0..1")
    order_acc.add_bcc("TotalAmount", amount, "0..1")
    order_acc.add_bcc("Currency", code, "0..1")
    order_acc.add_ascc("Buyer", party_acc, "1", AggregationKind.COMPOSITE)
    order_acc.add_ascc("Seller", party_acc, "1", AggregationKind.COMPOSITE)
    order_acc.add_ascc("Ordered", line_item_acc, "1..*", AggregationKind.COMPOSITE)

    bies = business.add_bie_library("OrderAggregates", namespacePrefix="order")
    address = derive_abie(bies, address_acc)
    address.include("Street")
    address.include("CityName")
    address.include("PostalCode", "0..1")
    address.include("Country", "0..1", data_type=country_type)
    party = derive_abie(bies, party_acc)
    party.include("Identification")
    party.include("Name")
    party.connect("Postal", address.abie, based_on="Postal")
    party.connect("Delivery", address.abie, "0..1", based_on="Delivery")
    line_item = derive_abie(bies, line_item_acc)
    line_item.include("Identification")
    line_item.include("Description", "0..1")
    line_item.include("Quantity")
    line_item.include("UnitPrice")

    doc = business.add_doc_library("PurchaseOrder")
    order = derive_abie(doc, order_acc, name="PurchaseOrder")
    order.include("Identification", rename="Identification")
    order.include("IssueDate")
    order.include("Status", "0..1", data_type=order_status_type)
    order.include("TotalAmount", "0..1")
    order.include("Currency", "0..1", data_type=currency_type)
    order.connect("Buyer", party.abie, based_on="Buyer")
    order.connect("Seller", party.abie, based_on="Seller")
    order.connect("Ordered", line_item.abie, "1..*", based_on="Ordered")

    return EcommerceModel(
        model=model,
        doc_library=doc,
        bie_library=bies,
        purchase_order=order.abie,
    )
