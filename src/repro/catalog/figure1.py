"""The paper's Figure 1: core components vs business information entities.

Left hand side: ACC ``Person`` (BCCs ``DateofBirth: Date``,
``FirstName: Text``; ASCCs ``Private``/``Work`` -> ``Address``) and ACC
``Address`` (BCCs ``Country: CountryCode``, ``PostalCode: Text``,
``Street: Text``).  Right hand side: the US-context restrictions
``US_Person`` and ``US_Address`` -- ``US_Address`` drops ``Country``
("Please note that US_Address is missing the attribute Country").

Section 2.1/2.2 of the paper enumerate the derived element sets; the
Figure-1 benchmark replays them via ``component_set()``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.primitives import add_standard_prim_library
from repro.ccts.bie import Abie
from repro.ccts.core_components import Acc
from repro.ccts.derivation import derive_abie
from repro.ccts.libraries import BieLibrary, CcLibrary, CdtLibrary
from repro.ccts.model import CctsModel
from repro.uml.association import AggregationKind


@dataclass
class Figure1Model:
    """Handles on everything the Figure-1 benches and tests inspect."""

    model: CctsModel
    cdt_library: CdtLibrary
    cc_library: CcLibrary
    bie_library: BieLibrary
    person: Acc
    address: Acc
    us_person: Abie
    us_address: Abie


def build_figure1_model() -> Figure1Model:
    """Build the Figure-1 model with its basedOn derivations."""
    model = CctsModel("Figure1")
    business = model.add_business_library("Example", "urn:example:figure1")
    prims = add_standard_prim_library(business)
    string = prims.primitive("String").element

    cdts = business.add_cdt_library("DataTypes")
    date = cdts.add_cdt("Date")
    date.set_content(string)
    text = cdts.add_cdt("Text")
    text.set_content(string)
    country_code = cdts.add_cdt("CountryCode")
    country_code.set_content(string)

    ccs = business.add_cc_library("CoreComponents")
    address = ccs.add_acc("Address")
    address.add_bcc("Country", country_code, "1")
    address.add_bcc("PostalCode", text, "1")
    address.add_bcc("Street", text, "1")
    person = ccs.add_acc("Person")
    person.add_bcc("DateofBirth", date, "1")
    person.add_bcc("FirstName", text, "1")
    person.add_ascc("Private", address, "1", AggregationKind.COMPOSITE)
    person.add_ascc("Work", address, "1", AggregationKind.SHARED)

    bies = business.add_bie_library("USEntities")
    address_derivation = derive_abie(bies, address, qualifier="US")
    # US_Address is missing the attribute Country (restriction).
    address_derivation.include("PostalCode")
    address_derivation.include("Street")
    us_address = address_derivation.abie

    person_derivation = derive_abie(bies, person, qualifier="US")
    person_derivation.include("DateofBirth")
    person_derivation.include("FirstName")
    person_derivation.connect("US_Private", us_address, based_on="Private")
    person_derivation.connect("US_Work", us_address, based_on="Work")
    us_person = person_derivation.abie

    return Figure1Model(
        model=model,
        cdt_library=cdts,
        cc_library=ccs,
        bie_library=bies,
        person=person,
        address=address,
        us_person=us_person,
        us_address=us_address,
    )


#: The element sets printed in the paper's sections 2.1 and 2.2.
PAPER_PERSON_SET = [
    "Person (ACC)",
    "Person.DateofBirth (BCC)",
    "Person.FirstName (BCC)",
    "Person.Private.Address (ASCC)",
    "Person.Work.Address (ASCC)",
]

PAPER_US_PERSON_SET = [
    "US_Person (ABIE)",
    "US_Person.DateofBirth (BBIE)",
    "US_Person.FirstName (BBIE)",
    "US_Person.US_Private.US_Address (ASBIE)",
    "US_Person.US_Work.US_Address (ASBIE)",
]
