"""The paper's Figure 4: the EasyBiz EB005-HoardingPermit model.

All packages of the figure are reconstructed:

1. DOCLibrary ``EB005-HoardingPermit`` -- local ABIEs ``HoardingPermit``
   (4 BBIEs, 4 ASBIEs with roles Included/Current/Billing/Included) and
   the unused ``HoardingDetails``;
2. BIELibrary ``CommonAggregates`` (user prefix ``commonAggregates``) --
   ABIEs Signature, Person_Identification (composition ``Personal`` ->
   Signature, *shared aggregation* ``Assigned`` -> Address, the Figure-7
   case), Address, Application (2 of the ACC's 11 BCCs kept);
3. QDTLibrary ``CommonDataTypes`` -- CountryType / CouncilType (based on
   Code, enum-restricted contents, keeping only CodeListName) plus the
   Indicator_Code and RegistrationType_Code QDTs the document layer uses;
4. CDTLibrary ``coredatatypes`` -- the paper shape of Code (one CON, four
   SUPs) and the further CDTs the model needs;
5. CCLibrary ``CandidateCoreComponents`` -- Application (11 BCCs + ASCC
   ``Applicant`` -> Party), Attachment, Party, plus the base ACCs for every
   ABIE (the paper's figure elides them "compelled by space limitations";
   a valid CCTS model requires them, since ABIEs derive exclusively from
   ACCs);
6. ENUMLibrary ``EnumerationTypes`` -- CouncilType_Code (5 Victorian
   councils) and CountryType_Code (USA/AUT/AUS);
7. PRIMLibrary -- String, Boolean, Integer (the three shown) plus Decimal
   and Binary needed by Amount/Measure/BinaryObject contents.

Additionally the BIELibrary ``LocalLawAggregates`` (ABIE Registration)
visible at the bottom right of the figure -- the library Figure 6 imports
under the generated prefix ``bie2``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.cdts import add_paper_cdt_library
from repro.catalog.primitives import add_standard_prim_library
from repro.ccts.bie import Abie
from repro.ccts.derivation import derive_abie, derive_qdt
from repro.ccts.libraries import (
    BieLibrary,
    BusinessLibrary,
    CcLibrary,
    CdtLibrary,
    DocLibrary,
    EnumLibrary,
    PrimLibrary,
    QdtLibrary,
)
from repro.ccts.model import CctsModel
from repro.uml.association import AggregationKind

#: The baseURN of the Victorian EasyBiz project (Figure 6, line 1).
EASYBIZ_URN = "urn:au:gov:vic:easybiz"

#: Literals of CouncilType_Code (Figure 4, package 6).
COUNCIL_LITERALS = {
    "kingston": "Kingston City Council",
    "morningtonpeninsula": "Mornington Peninsula Shire Council",
    "northerngrampians": "Northern Grampians Shire Council",
    "portphillip": "Port Phillip City Council",
    "pyrenees": "Pyrenees Shire Council",
}

#: Literals of CountryType_Code (Figure 4, package 6).
COUNTRY_LITERALS = {
    "USA": "United States of America",
    "AUT": "Austria",
    "AUS": "Australia",
}

#: The 11 BCCs of the Application ACC (Figure 4, package 5).
# Figure 4 shows no explicit multiplicities on these BCCs; they are declared
# optional so the ABIE's [0..1] fields remain strict restrictions.
APPLICATION_BCCS = (
    ("CreatedDate", "Date", "0..1"),
    ("Fee", "Amount", "0..1"),
    ("Justification", "Text", "0..1"),
    ("LastUpdatedDate", "Date", "0..1"),
    ("LocalReferenceNumber", "Text", "0..1"),
    ("NationalReferenceNumber", "Identifier", "0..1"),
    ("Reference", "Text", "0..1"),
    ("RelatedReference", "Text", "0..1"),
    ("Result", "Code", "0..1"),
    ("Status", "Code", "0..1"),
    ("Type", "Code", "0..1"),
)


@dataclass
class EasyBizModel:
    """Handles on the Figure-4 model used by tests, benches and examples."""

    model: CctsModel
    business: BusinessLibrary
    prim_library: PrimLibrary
    enum_library: EnumLibrary
    cdt_library: CdtLibrary
    qdt_library: QdtLibrary
    cc_library: CcLibrary
    common_aggregates: BieLibrary
    local_law_aggregates: BieLibrary
    doc_library: DocLibrary
    hoarding_permit: Abie


def build_easybiz_model() -> EasyBizModel:
    """Construct the complete Figure-4 model."""
    model = CctsModel("EasyBiz")
    business = model.add_business_library("EasyBiz", EASYBIZ_URN)

    # -- package 7: primitives --------------------------------------------------
    prims = add_standard_prim_library(business)
    string = prims.primitive("String").element

    # -- package 6: enumerations --------------------------------------------------
    enums = business.add_enum_library("EnumerationTypes")
    council_enum = enums.add_enumeration("CouncilType_Code", COUNCIL_LITERALS)
    country_enum = enums.add_enumeration("CountryType_Code", COUNTRY_LITERALS)

    # -- package 4: core data types -------------------------------------------------
    cdts = add_paper_cdt_library(business, prims, "coredatatypes")
    code = cdts.cdt("Code")
    text = cdts.cdt("Text")
    identifier = cdts.cdt("Identifier")
    date = cdts.cdt("Date")
    date_time = cdts.cdt("DateTime")
    binary_object = cdts.cdt("BinaryObject")
    measure = cdts.cdt("Measure")
    amount = cdts.cdt("Amount")

    # -- package 3: qualified data types ----------------------------------------------
    qdts = business.add_qdt_library("CommonDataTypes", version="0.1")
    country_type = derive_qdt(
        qdts, code, "CountryType",
        keep_supplementaries={"CodeListName": "0..1"},
        content_enum=country_enum,
    )
    council_type = derive_qdt(
        qdts, code, "CouncilType",
        keep_supplementaries={"CodeListName": "0..1"},
        content_enum=council_enum,
    )
    indicator_code = derive_qdt(qdts, code, "Indicator_Code")
    registration_type_code = derive_qdt(qdts, code, "RegistrationType_Code")
    _ = council_type

    # -- package 5: candidate core components ---------------------------------------------
    ccs = business.add_cc_library("CandidateCoreComponents", version="0.1")
    application_acc = ccs.add_acc("Application")
    for bcc_name, cdt_name, multiplicity in APPLICATION_BCCS:
        application_acc.add_bcc(bcc_name, cdts.cdt(cdt_name), multiplicity)
    attachment_acc = ccs.add_acc("Attachment")
    attachment_acc.add_bcc("Description", text, "0..1")
    attachment_acc.add_bcc("File", binary_object, "0..1")
    attachment_acc.add_bcc("Location", text, "0..1")
    attachment_acc.add_bcc("Size", measure, "0..1")
    party_acc = ccs.add_acc("Party")
    party_acc.add_bcc("Description", text, "0..1")
    party_acc.add_bcc("Role", text, "0..1")
    party_acc.add_bcc("Type", code, "0..1")
    application_acc.add_ascc("Applicant", party_acc, "1", AggregationKind.COMPOSITE)

    # Base ACCs for the remaining ABIEs (elided in the figure, required by CCTS).
    signature_acc = ccs.add_acc("Signature")
    signature_acc.add_bcc("Date", date_time, "0..1")
    signature_acc.add_bcc("PersonName", text, "0..1")
    signature_acc.add_bcc("SignatureData", binary_object, "0..1")
    address_acc = ccs.add_acc("Address")
    address_acc.add_bcc("CountryName", code, "0..1")
    person_identification_acc = ccs.add_acc("Person_Identification")
    person_identification_acc.add_bcc("Designation", identifier, "1")
    person_identification_acc.add_ascc("Personal", signature_acc, "1", AggregationKind.COMPOSITE)
    person_identification_acc.add_ascc("Assigned", address_acc, "1", AggregationKind.SHARED)
    registration_acc = ccs.add_acc("Registration")
    registration_acc.add_bcc("Type", code, "0..1")
    hoarding_permit_acc = ccs.add_acc("HoardingPermit")
    hoarding_permit_acc.add_bcc("ClosureReason", text, "0..1")
    hoarding_permit_acc.add_bcc("IsClosedFootpath", code, "0..1")
    hoarding_permit_acc.add_bcc("IsClosedRoad", code, "0..1")
    hoarding_permit_acc.add_bcc("SafetyPrecaution", text, "0..1")
    hoarding_permit_acc.add_ascc("Included", attachment_acc, "0..*", AggregationKind.COMPOSITE)
    hoarding_permit_acc.add_ascc("Current", application_acc, "0..1", AggregationKind.COMPOSITE)
    hoarding_permit_acc.add_ascc("Billing", person_identification_acc, "0..1", AggregationKind.COMPOSITE)
    hoarding_permit_acc.add_ascc("Included", registration_acc, "1", AggregationKind.COMPOSITE)
    hoarding_details_acc = ccs.add_acc("HoardingDetails")
    hoarding_details_acc.add_bcc("Description", text, "0..1")

    # -- package 2: BIELibrary CommonAggregates ------------------------------------------------
    common = business.add_bie_library(
        "CommonAggregates", namespacePrefix="commonAggregates", version="0.1"
    )
    signature = derive_abie(common, signature_acc)
    signature.include("Date", "0..1")
    signature.include("PersonName", "0..1")
    signature.include("SignatureData", "0..1")
    address = derive_abie(common, address_acc)
    address.include("CountryName", "0..1", data_type=country_type)
    person_identification = derive_abie(common, person_identification_acc)
    person_identification.include("Designation")
    person_identification.connect("Personal", signature.abie, based_on="Personal")
    person_identification.connect("Assigned", address.abie, based_on="Assigned")
    application = derive_abie(common, application_acc)
    # Of the initially eleven BCCs only CreatedDate and Type are used.
    application.include("CreatedDate", "0..1")
    application.include("Type", "0..1")

    # -- LocalLawAggregates (bottom right of Figure 4; "bie2" in Figure 6) -----------------------
    local_law = business.add_bie_library("LocalLawAggregates", version="0.1")
    registration = derive_abie(local_law, registration_acc)
    registration.include("Type", "0..1", data_type=registration_type_code)

    # -- package 1: DOCLibrary EB005-HoardingPermit ------------------------------------------------
    attachment = derive_abie(common, attachment_acc)
    attachment.include("Description", "0..1")

    doc = business.add_doc_library("EB005-HoardingPermit", version="0.4")
    hoarding_permit = derive_abie(doc, hoarding_permit_acc)
    hoarding_permit.include("ClosureReason", "0..1")
    hoarding_permit.include("IsClosedFootpath", "0..1", data_type=indicator_code)
    hoarding_permit.include("IsClosedRoad", "0..1", data_type=indicator_code)
    hoarding_permit.include("SafetyPrecaution", "0..1")
    # ASBIEs in Figure-6 element order.  The two "Included" ASCCs are
    # disambiguated by target, so the basedOn links are selected explicitly.
    def _ascc(role: str, target_name: str):
        return next(
            ascc for ascc in hoarding_permit_acc.asccs
            if ascc.role == role and ascc.target.name == target_name
        )

    hoarding_permit.connect("Included", attachment.abie, "0..*", based_on=_ascc("Included", "Attachment"))
    hoarding_permit.connect("Current", application.abie, "0..1", based_on="Current")
    hoarding_permit.connect("Included", registration.abie, "1", based_on=_ascc("Included", "Registration"))
    hoarding_permit.connect("Billing", person_identification.abie, "0..1", based_on="Billing")
    hoarding_details = derive_abie(doc, hoarding_details_acc)
    hoarding_details.include("Description", "0..1")
    permit = hoarding_permit.abie

    return EasyBizModel(
        model=model,
        business=business,
        prim_library=prims,
        enum_library=enums,
        cdt_library=cdts,
        qdt_library=qdts,
        cc_library=ccs,
        common_aggregates=common,
        local_law_aggregates=local_law,
        doc_library=doc,
        hoarding_permit=permit,
    )
