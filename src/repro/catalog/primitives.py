"""The standard primitive-type library.

CCTS 2.01 names a small set of primitive types core data types are built
from; the paper's Figure 4 (package 7) shows String, Boolean and Integer.
The standard library adds Decimal (Amount/Measure/Quantity contents) and
the binary/temporal primitives the approved CDT catalog needs.
"""

from __future__ import annotations

from repro.ccts.data_types import Primitive
from repro.ccts.libraries import BusinessLibrary, PrimLibrary

#: Primitive names of the standard library, in a stable order.
STANDARD_PRIMITIVES = (
    "String",
    "Boolean",
    "Integer",
    "Decimal",
    "Binary",
)

#: The three primitives visible in Figure 4, package 7.
FIGURE4_PRIMITIVES = ("String", "Boolean", "Integer")


def add_standard_prim_library(
    business_library: BusinessLibrary,
    name: str = "Primitives",
    names: tuple[str, ...] = STANDARD_PRIMITIVES,
) -> PrimLibrary:
    """Create a PRIMLibrary populated with the standard primitives."""
    library = business_library.add_prim_library(name)
    for primitive_name in names:
        library.add_primitive(primitive_name)
    return library


def primitive_map(library: PrimLibrary) -> dict[str, Primitive]:
    """Name -> wrapper for every primitive in ``library``."""
    return {primitive.name: primitive for primitive in library.primitives}
