"""The CCTS 2.01 approved core data types.

CCTS 2.01 approves a catalog of core data types built on ten core component
types (Amount, Binary Object, Code, Date Time, Identifier, Indicator,
Measure, Numeric, Quantity, Text).  This module reconstructs that catalog:
each CDT gets one content component and the standard supplementary
components, with the SUP sets the specification lists.

The paper's Figure 4 uses the Code shape with exactly four supplementary
components (CodeListAgName, CodeListName, CodeListSchemeURI,
LanguageIdentifier); :func:`add_paper_cdt_library` builds that reduced,
paper-faithful variant, while :func:`add_standard_cdt_library` builds the
full standard catalog.
"""

from __future__ import annotations

from repro.ccts.data_types import CoreDataType
from repro.ccts.libraries import BusinessLibrary, CdtLibrary, PrimLibrary

#: (CDT name, content primitive, ((SUP name, SUP primitive, multiplicity), ...))
_SupSpec = tuple[str, str, str]
_CdtSpec = tuple[str, str, tuple[_SupSpec, ...]]

#: The full approved catalog (CCTS 2.01, Table 8-1 reconstructed).
STANDARD_CDTS: tuple[_CdtSpec, ...] = (
    ("Amount", "Decimal", (
        ("AmountCurrencyIdentificationCode", "String", "0..1"),
        ("AmountCurrencyCodeListVersionIdentifier", "String", "0..1"),
    )),
    ("BinaryObject", "Binary", (
        ("BinaryObjectMimeCode", "String", "0..1"),
        ("BinaryObjectCharacterSetCode", "String", "0..1"),
        ("BinaryObjectEncodingCode", "String", "0..1"),
        ("BinaryObjectFilename", "String", "0..1"),
        ("BinaryObjectFormatText", "String", "0..1"),
        ("BinaryObjectUniformResourceIdentifier", "String", "0..1"),
    )),
    ("Graphic", "Binary", (
        ("GraphicMimeCode", "String", "0..1"),
        ("GraphicFilename", "String", "0..1"),
    )),
    ("Picture", "Binary", (
        ("PictureMimeCode", "String", "0..1"),
        ("PictureFilename", "String", "0..1"),
    )),
    ("Sound", "Binary", (
        ("SoundMimeCode", "String", "0..1"),
        ("SoundFilename", "String", "0..1"),
    )),
    ("Video", "Binary", (
        ("VideoMimeCode", "String", "0..1"),
        ("VideoFilename", "String", "0..1"),
    )),
    ("Code", "String", (
        ("CodeListIdentifier", "String", "0..1"),
        ("CodeListAgencyIdentifier", "String", "0..1"),
        ("CodeListAgencyName", "String", "0..1"),
        ("CodeListName", "String", "0..1"),
        ("CodeListVersionIdentifier", "String", "0..1"),
        ("CodeName", "String", "0..1"),
        ("LanguageIdentifier", "String", "0..1"),
        ("CodeListUniformResourceIdentifier", "String", "0..1"),
        ("CodeListSchemeUniformResourceIdentifier", "String", "0..1"),
    )),
    ("Date", "String", (
        ("DateFormatText", "String", "0..1"),
    )),
    ("Time", "String", (
        ("TimeFormatText", "String", "0..1"),
    )),
    ("DateTime", "String", (
        ("DateTimeFormatText", "String", "0..1"),
    )),
    ("Identifier", "String", (
        ("IdentificationSchemeIdentifier", "String", "0..1"),
        ("IdentificationSchemeName", "String", "0..1"),
        ("IdentificationSchemeAgencyIdentifier", "String", "0..1"),
        ("IdentificationSchemeAgencyName", "String", "0..1"),
        ("IdentificationSchemeVersionIdentifier", "String", "0..1"),
        ("IdentificationSchemeDataUniformResourceIdentifier", "String", "0..1"),
        ("IdentificationSchemeUniformResourceIdentifier", "String", "0..1"),
    )),
    ("Indicator", "String", (
        ("IndicatorFormatText", "String", "0..1"),
    )),
    ("Measure", "Decimal", (
        ("MeasureUnitCode", "String", "0..1"),
        ("MeasureUnitCodeListVersionIdentifier", "String", "0..1"),
    )),
    ("Numeric", "Decimal", (
        ("NumericFormatText", "String", "0..1"),
    )),
    ("Percent", "Decimal", (
        ("PercentFormatText", "String", "0..1"),
    )),
    ("Rate", "Decimal", (
        ("RateFormatText", "String", "0..1"),
    )),
    ("Ratio", "String", (
        ("RatioFormatText", "String", "0..1"),
    )),
    ("Quantity", "Decimal", (
        ("QuantityUnitCode", "String", "0..1"),
        ("QuantityUnitCodeListIdentifier", "String", "0..1"),
        ("QuantityUnitCodeListAgencyIdentifier", "String", "0..1"),
    )),
    ("Text", "String", (
        ("LanguageIdentifier", "String", "0..1"),
    )),
    ("Name", "String", (
        ("LanguageIdentifier", "String", "0..1"),
    )),
)

#: The reduced shapes used by the paper's Figure 4 model.
PAPER_CDTS: tuple[_CdtSpec, ...] = (
    ("Code", "String", (
        ("CodeListAgName", "String", "1"),
        ("CodeListName", "String", "1"),
        ("CodeListSchemeURI", "String", "1"),
        ("LanguageIdentifier", "String", "0..1"),
    )),
    ("Identifier", "String", (
        ("IdentificationSchemeName", "String", "0..1"),
    )),
    ("Text", "String", (
        ("LanguageIdentifier", "String", "0..1"),
    )),
    ("Name", "String", (
        ("LanguageIdentifier", "String", "0..1"),
    )),
    ("Date", "String", (
        ("DateFormatText", "String", "0..1"),
    )),
    ("DateTime", "String", (
        ("DateTimeFormatText", "String", "0..1"),
    )),
    ("BinaryObject", "Binary", (
        ("BinaryObjectMimeCode", "String", "0..1"),
        ("BinaryObjectFilename", "String", "0..1"),
    )),
    ("Measure", "Decimal", (
        ("MeasureUnitCode", "String", "0..1"),
    )),
    ("Amount", "Decimal", (
        ("AmountCurrencyIdentificationCode", "String", "0..1"),
    )),
)


def _populate(library: CdtLibrary, prims: PrimLibrary, specs: tuple[_CdtSpec, ...]) -> None:
    for cdt_name, content_prim, sups in specs:
        cdt = library.add_cdt(cdt_name)
        cdt.set_content(prims.primitive(content_prim).element)
        for sup_name, sup_prim, multiplicity in sups:
            cdt.add_supplementary(sup_name, prims.primitive(sup_prim).element, multiplicity)


def add_standard_cdt_library(
    business_library: BusinessLibrary,
    prims: PrimLibrary,
    name: str = "CoreDataTypes",
) -> CdtLibrary:
    """Create a CDTLibrary with the full approved CCTS 2.01 catalog."""
    library = business_library.add_cdt_library(name)
    _populate(library, prims, STANDARD_CDTS)
    return library


def add_paper_cdt_library(
    business_library: BusinessLibrary,
    prims: PrimLibrary,
    name: str = "coredatatypes",
) -> CdtLibrary:
    """Create the reduced CDTLibrary matching the paper's Figure 4."""
    library = business_library.add_cdt_library(name)
    _populate(library, prims, PAPER_CDTS)
    return library


def cdt_map(library: CdtLibrary) -> dict[str, CoreDataType]:
    """Name -> wrapper for every CDT in ``library``."""
    return {cdt.name: cdt for cdt in library.cdts}
