"""Ready-made models: the standards catalog and the paper's examples.

* :mod:`repro.catalog.primitives` -- the standard PRIMLibrary,
* :mod:`repro.catalog.cdts` -- the CCTS 2.01 approved core data types,
* :mod:`repro.catalog.figure1` -- the Person/Address vs US_Person/US_Address
  example of the paper's Figure 1,
* :mod:`repro.catalog.easybiz` -- the full EasyBiz EB005-HoardingPermit
  model of the paper's Figure 4 (all seven packages plus the
  LocalLawAggregates library visible in the diagram),
* :mod:`repro.catalog.ecommerce` -- an additional purchase-order model
  exercising the same machinery on the domain the paper's introduction
  motivates.
"""

from repro.catalog.cdts import add_standard_cdt_library
from repro.catalog.easybiz import build_easybiz_model
from repro.catalog.ecommerce import build_ecommerce_model
from repro.catalog.figure1 import build_figure1_model
from repro.catalog.primitives import add_standard_prim_library

__all__ = [
    "add_standard_cdt_library",
    "add_standard_prim_library",
    "build_easybiz_model",
    "build_ecommerce_model",
    "build_figure1_model",
]
