"""Command-line interface: the Figure-5 dialog, flattened into subcommands.

::

    upcc example easybiz --out model.xmi        # write a catalog model as XMI
    upcc inspect model.xmi                      # tree view (Figure 4, left)
    upcc validate model.xmi                     # run the validation engine
    upcc validate-xmi a.xmi b.xmi               # lenient load; located defect report
    upcc generate model.xmi --library EB005-HoardingPermit \
        --root HoardingPermit --out schemas/ --annotate
    upcc generate model.xmi --library ... --root ... --out schemas/ \
        --emit-provenance                       # + schemas/provenance.jsonl
    upcc generate model.xmi --library ... --root ... --syntax rng   # RELAX NG
    upcc explain model.xmi --library ... --root ... \
        --target "//xsd:complexType[@name='HoardingPermitType']"
    upcc explain --schema schemas/urn_au_gov_vic_easybiz_/data_draft_EB005-HoardingPermit_0.4.xsd \
        --target 'HoardingPermitType/SafetyPrecaution'
    upcc explain model.xmi --library ... --root ... --source id_42   # inverse
    upcc instance schemas/ --root HoardingPermit --out sample.xml
    upcc check-instance schemas/ sample.xml
    upcc document model.xmi --library ... --root ... --out doc.html
    upcc diagram model.xmi [--library NAME] --out model.dot
    upcc registry store|search|list <dir> ...
    upcc reverse schemas/ --out reconstructed.xmi
    upcc diff a.xmi b.xmi
    upcc compat old-schemas/ new-schemas/
    upcc serve --port 8437 --workers 8            # warm-cache HTTP daemon
    upcc serve --port 8437 --access-log access.jsonl --slow-ms 250 \
        --slow-dir slow-traces                    # + request log, slow capture
    upcc top --url http://127.0.0.1:8437          # live serve dashboard
    upcc stats [easybiz|ecommerce] [--json]       # trace/metric report
    upcc profile easybiz --runs 10                # call-tree hot-path table
    upcc profile easybiz --profile-format collapsed \
        --profile-out easybiz.folded              # flamegraph.pl input
    upcc profile easybiz --cprofile-out funcs.txt # + function-level pstats

Observability: every subcommand accepts the global ``--trace`` flag
(print the span tree of the run to stderr) and ``--metrics-out FILE``
(write the JSON metrics snapshot); see docs/observability.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.ccts.model import CctsModel
from repro.errors import ReproError
from repro.uml.visitor import render_tree
from repro.xmi import DEFAULT_MAX_DEPTH, DEFAULT_MAX_ELEMENTS, read_xmi, write_xmi


def _load_model(path: str) -> CctsModel:
    return CctsModel(model=read_xmi(Path(path).read_text(encoding="utf-8")))


def _cmd_example(args: argparse.Namespace) -> int:
    from repro.catalog import build_easybiz_model, build_ecommerce_model, build_figure1_model

    builders = {
        "easybiz": lambda: build_easybiz_model().model,
        "figure1": lambda: build_figure1_model().model,
        "ecommerce": lambda: build_ecommerce_model().model,
    }
    model = builders[args.name]()
    text = write_xmi(model.model, args.out)
    if args.out:
        print(f"wrote {args.name} model to {args.out}")
    else:
        print(text)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    model = _load_model(args.model)
    print(render_tree(model.model))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.validation import validate_model

    model = _load_model(args.model)
    report = validate_model(model, basic_only=args.basic)
    print(report)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_validate_xmi(args: argparse.Namespace) -> int:
    import xml.etree.ElementTree as ET

    from repro.errors import XmiError
    from repro.xmi import load_xmi

    defects = 0
    for name in args.models:
        try:
            result = load_xmi(
                Path(name),
                strict=args.strict,
                max_elements=args.max_elements,
                max_depth=args.max_depth,
            )
        except OSError as error:
            print(f"{name}: error: {error}", file=sys.stderr)
            defects += 1
            continue
        except (ET.ParseError, ValueError) as error:  # strict-mode syntax errors
            position = getattr(error, "position", None)
            location = ":".join(str(part) for part in position) if position else ""
            where = f"{name}:{location}" if location else name
            print(f"{where}: error: not well-formed XML: {error}", file=sys.stderr)
            defects += 1
            continue
        except XmiError as error:
            location = ":".join(
                str(part) for part in (error.line, error.column) if part is not None
            )
            where = f"{name}:{location}" if location else name
            print(f"{where}: error: {error}", file=sys.stderr)
            defects += 1
            continue
        for issue in result.issues:
            location = ":".join(
                str(part) for part in (issue.line, issue.column) if part is not None
            )
            where = f"{name}:{location}" if location else name
            detail = []
            if issue.xmi_id:
                detail.append(f"xmi:id={issue.xmi_id}")
            if issue.path:
                detail.append(f"path={issue.path}")
            suffix = f" ({', '.join(detail)})" if detail else ""
            print(f"{where}: [{issue.kind}] {issue.message}{suffix}")
        defects += len(result.issues)
        if result.ok:
            model_name = result.model.name if result.model is not None else "?"
            print(f"{name}: ok (model {model_name!r})")
    if defects:
        print(f"{defects} defect(s) found across {len(args.models)} file(s)")
        return 1
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.xsdgen import GenerationOptions, SchemaGenerator

    model = _load_model(args.model)
    syntax = getattr(args, "syntax", "xsd")
    options = GenerationOptions(
        annotated=args.annotate,
        shared_aggregation_as_ref=not args.inline_aggregations,
        validate_first=not args.no_validate,
        target_directory=Path(args.out) if args.out and syntax == "xsd" else None,
        use_cache=args.use_cache or bool(args.cache_dir),
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        jobs=max(1, args.jobs),
        on_error="collect" if args.keep_going else "raise",
        embed_provenance=args.embed_provenance,
    )
    generator = SchemaGenerator(model, options)
    try:
        result = generator.generate(args.library, root=args.root)
    except ReproError as error:
        print(generator.session.log, file=sys.stderr)
        print(f"generation failed: {error}", file=sys.stderr)
        return 1
    print(generator.session.log)
    if result.errors:
        for failure in result.errors:
            print(f"failed: {failure}", file=sys.stderr)
        print(
            f"{len(result.errors)} library build(s) failed; "
            f"{len(result.schemas)} schema(s) generated",
            file=sys.stderr,
        )
        return 1
    if syntax == "rng":
        from repro.rngen import result_to_rng, rng_to_string

        if not args.root:
            print("error: --syntax rng requires --root", file=sys.stderr)
            return 1
        text = rng_to_string(result_to_rng(result, args.root))
        _emit(text, args.out)
    elif syntax == "rdfs":
        from repro.rngen import rdfs_to_string

        _emit(rdfs_to_string(model), args.out)
    elif not args.out:
        print(result.root.to_string())
    if args.emit_provenance:
        if args.out:
            path = result.write_provenance(Path(args.out) / "provenance.jsonl")
            print(f"wrote {len(result.provenance)} provenance record(s) to {path}")
        else:
            print(result.provenance.to_jsonl())
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Answer "which UML element and NDR rule produced this construct" (or the inverse)."""
    if not args.target and not args.source:
        print("error: provide --target and/or --source", file=sys.stderr)
        return 2
    if bool(args.schema) == bool(args.model):
        print("error: provide either an XMI model or --schema", file=sys.stderr)
        return 2
    index, schema_file = _explain_index(args)
    if index is None:
        return 1
    records = []
    if args.target:
        records.extend(
            record
            for record in index.by_target(args.target)
            if schema_file is None or record.schema_file == schema_file
        )
    if args.source:
        records.extend(index.by_source(args.source))
    if not records:
        asked = " / ".join(spec for spec in (args.target, args.source) if spec)
        print(f"no provenance record matches {asked!r}")
        return 1
    for record in records:
        print(record.describe())
        print(f"  rule {record.rule}: {record.rule_text}")
    return 0


def _explain_index(args: argparse.Namespace):
    """The provenance index (and optional schema-file scope) for ``explain``.

    ``--schema`` reads embedded appinfo records first and falls back to a
    ``provenance.jsonl`` sidecar (``--provenance``, or searched in the
    schema's parent directories).  A model file regenerates instead.
    """
    from repro.xsdgen.provenance import ProvenanceIndex, records_from_schema_text

    if args.schema:
        schema_path = Path(args.schema)
        schema_file = f"{schema_path.parent.name}/{schema_path.name}"
        try:
            schema_text = schema_path.read_text(encoding="utf-8")
        except OSError as error:
            print(f"error: cannot read {args.schema}: {error}", file=sys.stderr)
            return None, None
        records = records_from_schema_text(schema_text)
        if records:
            return ProvenanceIndex(records), schema_file
        sidecar = Path(args.provenance) if args.provenance else None
        if sidecar is None:
            for directory in (schema_path.parent, schema_path.parent.parent):
                candidate = directory / "provenance.jsonl"
                if candidate.is_file():
                    sidecar = candidate
                    break
        if sidecar is None or not sidecar.is_file():
            print(
                f"error: {args.schema} embeds no provenance and no "
                f"provenance.jsonl sidecar was found; generate with "
                f"--emit-provenance or --embed-provenance",
                file=sys.stderr,
            )
            return None, None
        index = ProvenanceIndex.from_jsonl(sidecar.read_text(encoding="utf-8"))
        return index, schema_file
    if not args.library:
        print("error: explaining from a model requires --library", file=sys.stderr)
        return None, None
    from repro.xsdgen import GenerationOptions, SchemaGenerator

    model = _load_model(args.model)
    generator = SchemaGenerator(model, GenerationOptions(validate_first=False))
    result = generator.generate(args.library, root=args.root)
    return result.provenance, None


def _emit(text: str, out: str | None) -> None:
    if out:
        Path(out).write_text(text, encoding="utf-8")
        print(f"wrote {out}")
    else:
        print(text)


def _cmd_instance(args: argparse.Namespace) -> int:
    from repro.instances import InstanceGenerator
    from repro.xsd.validator import SchemaSet

    schema_set = SchemaSet.from_directory(args.schemas)
    generator = InstanceGenerator(schema_set, fill_optional=not args.minimal)
    text = generator.generate_string(args.root)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote instance to {args.out}")
    else:
        print(text)
    return 0


def _cmd_registry(args: argparse.Namespace) -> int:
    from repro.registry import Registry

    registry = Registry(args.directory)
    if args.registry_command == "store":
        registry.store(args.name, _load_model(args.model), overwrite=args.overwrite)
        print(f"stored {args.name!r} in {args.directory}")
        return 0
    if args.registry_command == "search":
        hits = registry.search(args.term)
        for model_name, den in hits:
            print(f"[{model_name}] {den}")
        print(f"{len(hits)} hit(s)")
        return 0
    for entry in registry.entries():  # list
        print(f"{entry.name}: {len(entry.libraries)} libraries, "
              f"{len(entry.dictionary_entries)} dictionary entries")
        for library in entry.libraries:
            print(f"  {library['kind']} {library['name']} v{library['version']}")
    return 0


def _cmd_document(args: argparse.Namespace) -> int:
    from repro.xsdgen import GenerationOptions, SchemaGenerator, write_documentation

    model = _load_model(args.model)
    options = GenerationOptions(annotated=True)
    generator = SchemaGenerator(model, options)
    try:
        result = generator.generate(args.library, root=args.root)
    except ReproError as error:
        print(f"generation failed: {error}", file=sys.stderr)
        return 1
    path = write_documentation(result, args.out, title=args.title or f"{args.library} documentation")
    print(f"wrote {path}")
    return 0


def _cmd_diagram(args: argparse.Namespace) -> int:
    from repro.uml.diagram import model_to_dot, package_to_dot

    model = _load_model(args.model)
    if args.library:
        library = model.library_named(args.library)
        dot = package_to_dot(library.package, args.library.replace("-", "_"))
    else:
        dot = model_to_dot(model.model)
    _emit(dot, args.out)
    return 0


def _cmd_reverse(args: argparse.Namespace) -> int:
    from repro.reverse import reverse_engineer
    from repro.validation import validate_model
    from repro.xsd.validator import SchemaSet

    schema_set = SchemaSet.from_directory(args.schemas)
    report = reverse_engineer(schema_set)
    print(f"reconstructed {len(report.model.libraries())} libraries")
    for note in report.notes:
        print(f"note: {note}")
    if report.doc_library_names:
        print(f"document libraries: {', '.join(report.doc_library_names)} "
              f"(roots: {', '.join(report.root_elements)})")
    validation = validate_model(report.model)
    print(validation.summary())
    write_xmi(report.model.model, args.out)
    print(f"wrote reconstructed model to {args.out}")
    return 0 if validation.ok else 1


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.interchange import diff_models

    differences = diff_models(_load_model(args.first), _load_model(args.second))
    for difference in differences:
        print(difference)
    print(f"{len(differences)} difference(s)")
    return 0 if not differences else 1


def _cmd_compat(args: argparse.Namespace) -> int:
    from repro.xsd.compat import check_compatibility
    from repro.xsd.validator import SchemaSet

    old = SchemaSet.from_directory(args.old)
    new = SchemaSet.from_directory(args.new)
    report = check_compatibility(old, new)
    for change in report.changes:
        print(change)
    if report.is_backward_compatible:
        print(f"backward compatible ({len(report.compatible)} compatible change(s))")
        return 0
    print(f"NOT backward compatible: {len(report.breaking)} breaking change(s)")
    return 1


#: Catalog models the report subcommands (``stats``, ``profile``) can run.
_REPORT_CATALOGS = {
    "easybiz": "HoardingPermit",
    "ecommerce": "PurchaseOrder",
}


def _report_catalog(name: str):
    """(root element name, built catalog) for a report subcommand."""
    from repro.catalog import build_easybiz_model, build_ecommerce_model

    builders = {"easybiz": build_easybiz_model, "ecommerce": build_ecommerce_model}
    return _REPORT_CATALOGS[name], builders[name]()


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run a catalog generation under tracing and print the obs report."""
    import json

    import repro.obs as obs
    from repro.validation import validate_model
    from repro.xsdgen import SchemaGenerator

    root, catalog = _report_catalog(args.name)
    tracer = obs.configure(trace=True, reset_metrics=True)
    generator = SchemaGenerator(catalog.model)
    for _ in range(max(1, args.runs)):
        result = generator.generate(catalog.doc_library, root=root)
    report = validate_model(catalog.model)
    coverage = result.coverage()
    if args.json:
        payload = {
            "model": args.name,
            "runs": max(1, args.runs),
            "schemas": len(result.schemas),
            "validation": {
                "ok": report.ok,
                "errors": len(report.errors),
                "warnings": len(report.warnings),
            },
            "coverage": {
                "total_elements": coverage.total_elements,
                "mapped": coverage.mapped,
                "unmapped": [list(pair) for pair in coverage.unmapped],
            },
            "metrics": obs.get_metrics().snapshot(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"model: {args.name} ({len(result.schemas)} schema(s), "
          f"{report.summary()})")
    print()
    print("== provenance coverage ==")
    print(coverage.render_text())
    print()
    print("== span tree ==")
    ring = tracer.ring_buffer()
    if ring is not None:
        print(ring.render_tree())
    print()
    print("== metrics ==")
    print(obs.get_metrics().render_text())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Repeat a catalog generation under tracing; emit the call-tree profile."""
    import repro.obs as obs
    from repro.obs.prof import cprofile_session, cprofile_stats_text, profile_from_tracer
    from repro.xsdgen import GenerationOptions, SchemaGenerator

    root, catalog = _report_catalog(args.name)
    tracer = obs.configure(trace=True, ring_capacity=8192, reset_metrics=True)
    options = GenerationOptions(
        validate_first=False,
        use_cache=args.use_cache,
        jobs=max(1, args.jobs),
    )
    runs = max(1, args.runs)

    def run_all() -> None:
        # A fresh generator per run keeps every repetition cold (modulo
        # --use-cache), so the profile reflects full generation cost.
        for _ in range(runs):
            SchemaGenerator(catalog.model, options).generate(catalog.doc_library, root=root)

    profiler = None
    if args.cprofile_out:
        with cprofile_session() as profiler:
            run_all()
    else:
        run_all()
    profile = profile_from_tracer(tracer)
    text = profile.render(args.profile_format, top=args.top)
    if args.profile_out:
        Path(args.profile_out).write_text(text + "\n", encoding="utf-8")
        print(
            f"wrote {args.profile_format} profile ({profile.span_count} span(s), "
            f"{len(profile.nodes)} path(s)) to {args.profile_out}"
        )
    else:
        print(text)
    if args.cprofile_out:
        stats_text = cprofile_stats_text(profiler, top=args.top)
        if args.cprofile_out == "-":
            print(stats_text)
        else:
            Path(args.cprofile_out).write_text(stats_text, encoding="utf-8")
            print(f"wrote cProfile report to {args.cprofile_out}")
    return 0


def _cmd_check_instance(args: argparse.Namespace) -> int:
    from repro.xsd.validator import SchemaSet, validate_instance

    schema_set = SchemaSet.from_directory(args.schemas)
    problems = validate_instance(schema_set, Path(args.instance).read_text(encoding="utf-8"))
    if not problems:
        print("instance is valid")
        return 0
    for problem in problems:
        print(problem)
    print(f"{len(problems)} problem(s)")
    return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the warm-cache HTTP daemon until SIGTERM/SIGINT, then drain."""
    import signal
    import threading

    from repro.serve import ServeApp, ServeConfig, UpccServer

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=max(1, args.workers),
        queue_size=max(1, args.queue_size),
        timeout_s=args.timeout,
        drain_timeout_s=args.drain_timeout,
        access_log=args.access_log,
        access_log_max_bytes=args.access_log_max_bytes,
        access_log_keep=max(1, args.access_log_keep),
        slow_ms=args.slow_ms,
        slow_dir=args.slow_dir,
        slow_keep=max(1, args.slow_keep),
        slo_file=args.slo,
        alert_log=args.alert_log,
    )
    server = UpccServer(ServeApp(cache_dir=args.cache_dir), config)
    server.start()
    print(f"listening on {server.url}", flush=True)
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda _signum, _frame: stop.set())
    stop.wait()
    print("draining...", flush=True)
    clean = server.drain()
    print(f"drained {'cleanly' if clean else 'with leftovers'}", flush=True)
    return 0 if clean else 1


def _cmd_obs_query(args: argparse.Namespace) -> int:
    """Delegate to the :mod:`repro.obs.query` offline telemetry filter."""
    from repro.obs import query

    argv: list[str] = []
    for flag, value in (
        ("--access-log", args.access_log),
        ("--slow-dir", args.slow_dir),
        ("--alerts", args.alerts),
        ("--trace-id", args.trace_id),
        ("--request-id", args.request_id),
        ("--status", args.status),
        ("--slo", args.slo),
        ("--state", args.state),
        ("--since", args.since),
        ("--until", args.until),
    ):
        if value is not None:
            argv.extend([flag, value])
    if args.limit:
        argv.extend(["--limit", str(args.limit)])
    if args.json:
        argv.append("--json")
    return query.main(argv)


def _cmd_top(args: argparse.Namespace) -> int:
    """Delegate to the :mod:`repro.serve.top` dashboard loop."""
    from repro.serve import top

    argv = ["--url", args.url, "--interval", str(args.interval)]
    if args.once:
        argv.append("--once")
    if args.count:
        argv.extend(["--count", str(args.count)])
    if args.json:
        argv.append("--json")
    return top.main(argv)


def _cmd_validate_instances(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.instances.pipeline import ValidationPipeline
    from repro.xsd.validator import SchemaSet

    schemas = Path(args.schemas)
    if schemas.is_dir():
        schema_set = SchemaSet.from_directory(schemas)
    else:
        schema_set = SchemaSet.from_files([schemas])
    pipeline = ValidationPipeline(
        schema_set,
        engine=args.engine,
        jobs=args.jobs,
        fail_fast=args.fail_fast,
    )
    report = pipeline.run(args.corpus)
    if args.report == "json":
        print(json_module.dumps(report.to_json(), indent=2))
    else:
        print(report.to_text())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="upcc",
        description="UML Profile for Core Components: modeling, validation and XSD generation",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="trace the run and print the span tree to stderr afterwards",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write the JSON metrics snapshot of the run to FILE",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    example = commands.add_parser("example", help="write a catalog model as XMI")
    example.add_argument("name", choices=["easybiz", "figure1", "ecommerce"])
    example.add_argument("--out", help="output XMI file (stdout when omitted)")
    example.set_defaults(func=_cmd_example)

    inspect = commands.add_parser("inspect", help="print the model tree view")
    inspect.add_argument("model", help="XMI model file")
    inspect.set_defaults(func=_cmd_inspect)

    validate = commands.add_parser("validate", help="run the validation engine")
    validate.add_argument("model", help="XMI model file")
    validate.add_argument("--basic", action="store_true", help="run only the basic rule set")
    validate.set_defaults(func=_cmd_validate)

    validate_xmi = commands.add_parser(
        "validate-xmi",
        help="load XMI files leniently and print a located defect report",
    )
    validate_xmi.add_argument("models", nargs="+", help="XMI model files")
    validate_xmi.add_argument(
        "--strict",
        action="store_true",
        help="stop at the first defect (fail-fast) instead of collecting all of them",
    )
    validate_xmi.add_argument(
        "--max-elements",
        type=int,
        default=DEFAULT_MAX_ELEMENTS,
        metavar="N",
        help=f"refuse documents with more than N model elements (default {DEFAULT_MAX_ELEMENTS})",
    )
    validate_xmi.add_argument(
        "--max-depth",
        type=int,
        default=DEFAULT_MAX_DEPTH,
        metavar="N",
        help=f"refuse package trees nested deeper than N levels (default {DEFAULT_MAX_DEPTH})",
    )
    validate_xmi.set_defaults(func=_cmd_validate_xmi)

    generate = commands.add_parser("generate", help="generate XSD schemas from a library")
    generate.add_argument("model", help="XMI model file")
    generate.add_argument("--library", required=True, help="library name to generate from")
    generate.add_argument("--root", help="root ABIE for DOCLibrary generation")
    generate.add_argument("--out", help="output directory (stdout when omitted)")
    generate.add_argument("--annotate", action="store_true", help="emit CCTS annotations")
    generate.add_argument(
        "--inline-aggregations",
        action="store_true",
        help="inline shared-aggregation ASBIEs instead of global element + ref",
    )
    generate.add_argument("--no-validate", action="store_true", help="skip pre-generation validation")
    generate.add_argument(
        "--use-cache",
        action="store_true",
        help="reuse schemas from the in-process generation cache (keyed by a "
        "structural fingerprint of each library)",
    )
    generate.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persist the generation cache to DIR so later runs can reuse "
        "schemas across processes (implies --use-cache)",
    )
    generate.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="build independent libraries on up to N threads (default 1; "
        "output is byte-identical to a serial run)",
    )
    generate.add_argument(
        "--keep-going",
        action="store_true",
        help="on a library build failure, keep building independent libraries "
        "and report every failure instead of stopping at the first one",
    )
    generate.add_argument(
        "--syntax",
        choices=["xsd", "rng", "rdfs"],
        default="xsd",
        help="transfer syntax: XML Schema (default), RELAX NG or RDF Schema "
        "(the paper's future-extension syntaxes)",
    )
    generate.add_argument(
        "--emit-provenance",
        action="store_true",
        help="write the provenance records as provenance.jsonl next to the "
        "generated schemas (or to stdout without --out)",
    )
    generate.add_argument(
        "--embed-provenance",
        action="store_true",
        help="embed each schema's provenance records as an "
        "xsd:annotation/xsd:appinfo block (off by default: output is then "
        "byte-identical to a provenance-unaware run)",
    )
    generate.set_defaults(func=_cmd_generate)

    explain = commands.add_parser(
        "explain",
        help="trace a generated XSD construct back to its UML source and NDR rule",
    )
    explain.add_argument(
        "model", nargs="?", help="XMI model file (regenerated to build the provenance index)"
    )
    explain.add_argument("--library", help="library name to generate from (with a model)")
    explain.add_argument("--root", help="root ABIE for DOCLibrary generation (with a model)")
    explain.add_argument(
        "--schema",
        metavar="FILE",
        help="generated .xsd file; provenance comes from its embedded appinfo "
        "block or a provenance.jsonl sidecar in its parent directories",
    )
    explain.add_argument(
        "--provenance",
        metavar="FILE",
        help="explicit provenance.jsonl sidecar (overrides the search next to --schema)",
    )
    explain.add_argument(
        "--target",
        metavar="SPEC",
        help="XSD construct to explain: \"//xsd:complexType[@name='X']\", a "
        "path like HoardingPermitType/SafetyPrecaution, or a bare name",
    )
    explain.add_argument(
        "--source",
        metavar="ELEMENT",
        help="inverse direction: list everything a UML element produced "
        "(xmi:id, qualified name, or Abie.Attribute shorthand)",
    )
    explain.set_defaults(func=_cmd_explain)

    instance = commands.add_parser("instance", help="generate a sample XML instance")
    instance.add_argument("schemas", help="directory of generated schemas")
    instance.add_argument("--root", required=True, help="global root element name")
    instance.add_argument("--out", help="output file (stdout when omitted)")
    instance.add_argument("--minimal", action="store_true", help="omit optional content")
    instance.set_defaults(func=_cmd_instance)

    validate_instances = commands.add_parser(
        "validate-instances",
        help="validate a corpus of XML instances against generated schemas",
    )
    validate_instances.add_argument(
        "schemas", help="schema directory (*.xsd, recursive) or a single .xsd file"
    )
    validate_instances.add_argument(
        "corpus",
        help="corpus directory (*.xml, recursive), a single .xml file, "
        "or a manifest file listing one document path per line",
    )
    validate_instances.add_argument(
        "--jobs", type=int, default=1, help="worker threads (default 1 = serial)"
    )
    validate_instances.add_argument(
        "--engine",
        choices=["compiled", "interpreted"],
        default="compiled",
        help="validation engine (default: compiled)",
    )
    validate_instances.add_argument(
        "--report", choices=["text", "json"], default="text", help="report format"
    )
    validate_instances.add_argument(
        "--fail-fast",
        action="store_true",
        help="stop at the first invalid document (forces serial execution)",
    )
    validate_instances.set_defaults(func=_cmd_validate_instances)

    serve = commands.add_parser(
        "serve",
        help="run the long-running HTTP daemon (generate/validate/explain "
        "with process-warm caches)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=0,
        help="port to listen on (default 0 = ephemeral; the bound port is printed)",
    )
    serve.add_argument(
        "--workers", type=int, default=4, metavar="K",
        help="worker threads handling queued requests (default 4)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=64, metavar="N",
        help="bounded request queue; overflow is rejected with 503 + "
        "Retry-After (default 64)",
    )
    serve.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-request ceiling before the client gets a 504 (default 30)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="graceful-drain budget on SIGTERM/SIGINT (default 10)",
    )
    serve.add_argument(
        "--cache-dir", metavar="DIR",
        help="persist the generation cache to DIR (shared with "
        "'upcc generate --cache-dir')",
    )
    serve.add_argument(
        "--access-log", metavar="FILE",
        help="append one JSON line per request to FILE (method, path, "
        "status, duration, queue wait, worker, request id, trace id)",
    )
    serve.add_argument(
        "--access-log-max-bytes", type=int, metavar="BYTES",
        help="rotate the access log once it exceeds BYTES "
        "(FILE -> FILE.1 -> ...; default unbounded)",
    )
    serve.add_argument(
        "--access-log-keep", type=int, default=3, metavar="N",
        help="rotated access-log generations to keep (default 3)",
    )
    serve.add_argument(
        "--slo", metavar="FILE",
        help="JSON file of SLO specs for burn-rate alerting "
        "(default: built-in availability + latency objectives)",
    )
    serve.add_argument(
        "--alert-log", metavar="FILE",
        help="append SLO alert transitions to FILE as JSON lines "
        "(also served by GET /alerts)",
    )
    serve.add_argument(
        "--slow-ms", type=float, metavar="MS",
        help="capture the full span tree of any request slower than MS "
        "(JSONL + Perfetto-loadable trace under --slow-dir)",
    )
    serve.add_argument(
        "--slow-dir", default="slow-traces", metavar="DIR",
        help="directory for slow-request captures (default slow-traces)",
    )
    serve.add_argument(
        "--slow-keep", type=int, default=32, metavar="N",
        help="bounded on-disk ring: keep at most N slow captures (default 32)",
    )
    serve.set_defaults(func=_cmd_serve)

    top = commands.add_parser(
        "top",
        help="live terminal dashboard for a running serve daemon "
        "(polls /stats + /metrics)",
    )
    top.add_argument("--url", required=True, help="server base URL, e.g. http://127.0.0.1:8437")
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="poll period (default 2)",
    )
    top.add_argument("--once", action="store_true", help="render one frame and exit")
    top.add_argument(
        "--count", type=int, default=0, metavar="N",
        help="stop after N frames (default 0 = until interrupted)",
    )
    top.add_argument(
        "--json", action="store_true",
        help="emit the raw snapshot as JSON instead of the board",
    )
    top.set_defaults(func=_cmd_top)

    obs = commands.add_parser(
        "obs",
        help="query serve telemetry artifacts offline (access logs, slow "
        "captures, alert rings)",
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    obs_query = obs_commands.add_parser(
        "query",
        help="filter access logs, slow captures, and alerts by trace id, "
        "request id, status, or time window",
    )
    obs_query.add_argument("--access-log", metavar="FILE", help="access log JSONL (rotated generations included)")
    obs_query.add_argument("--slow-dir", metavar="DIR", help="slow-request capture directory")
    obs_query.add_argument("--alerts", metavar="FILE", help="SLO alert ring JSONL")
    obs_query.add_argument("--trace-id", help="exact 32-hex W3C trace id")
    obs_query.add_argument("--request-id", help="exact request id")
    obs_query.add_argument("--status", help="status code (e.g. 503) or class (4xx, 5xx)")
    obs_query.add_argument("--slo", help="alert filter: SLO name")
    obs_query.add_argument("--state", choices=["firing", "resolved"], help="alert filter: state")
    obs_query.add_argument("--since", metavar="WHEN", help="lower time bound (unix seconds or ISO-8601, UTC)")
    obs_query.add_argument("--until", metavar="WHEN", help="upper time bound (unix seconds or ISO-8601, UTC)")
    obs_query.add_argument("--limit", type=int, default=0, metavar="N", help="newest N matches per source")
    obs_query.add_argument("--json", action="store_true", help="one JSON document instead of JSON lines")
    obs_query.set_defaults(func=_cmd_obs_query)

    check = commands.add_parser("check-instance", help="validate an XML instance")
    check.add_argument("schemas", help="directory of generated schemas")
    check.add_argument("instance", help="instance document to validate")
    check.set_defaults(func=_cmd_check_instance)

    registry = commands.add_parser("registry", help="store/search core-component models")
    registry_commands = registry.add_subparsers(dest="registry_command", required=True)
    store = registry_commands.add_parser("store", help="register a model")
    store.add_argument("directory", help="registry directory")
    store.add_argument("name", help="registration name")
    store.add_argument("model", help="XMI model file")
    store.add_argument("--overwrite", action="store_true")
    store.set_defaults(func=_cmd_registry)
    search = registry_commands.add_parser("search", help="search dictionary entry names")
    search.add_argument("directory", help="registry directory")
    search.add_argument("term", help="search term")
    search.set_defaults(func=_cmd_registry)
    listing = registry_commands.add_parser("list", help="list registered models")
    listing.add_argument("directory", help="registry directory")
    listing.set_defaults(func=_cmd_registry)

    document = commands.add_parser("document", help="render HTML documentation for generated schemas")
    document.add_argument("model", help="XMI model file")
    document.add_argument("--library", required=True, help="library to generate and document")
    document.add_argument("--root", help="root ABIE for DOCLibrary generation")
    document.add_argument("--out", required=True, help="output HTML file")
    document.add_argument("--title", help="page title")
    document.set_defaults(func=_cmd_document)

    diagram = commands.add_parser("diagram", help="render class diagrams as Graphviz DOT")
    diagram.add_argument("model", help="XMI model file")
    diagram.add_argument("--library", help="render only this library's package")
    diagram.add_argument("--out", help="output .dot file (stdout when omitted)")
    diagram.set_defaults(func=_cmd_diagram)

    reverse = commands.add_parser(
        "reverse", help="reverse-engineer a schema directory into an XMI model"
    )
    reverse.add_argument("schemas", help="directory of NDR schemas")
    reverse.add_argument("--out", required=True, help="output XMI file")
    reverse.set_defaults(func=_cmd_reverse)

    diff = commands.add_parser("diff", help="structurally compare two models")
    diff.add_argument("first", help="first XMI model file")
    diff.add_argument("second", help="second XMI model file")
    diff.set_defaults(func=_cmd_diff)

    compat = commands.add_parser(
        "compat", help="check backward compatibility of two generated schema sets"
    )
    compat.add_argument("old", help="directory of the old schemas")
    compat.add_argument("new", help="directory of the new schemas")
    compat.set_defaults(func=_cmd_compat)

    stats = commands.add_parser(
        "stats", help="generate a catalog model under tracing and print the obs report"
    )
    stats.add_argument(
        "name", nargs="?", default="easybiz", choices=["easybiz", "ecommerce"],
        help="catalog model to run (default: easybiz)",
    )
    stats.add_argument(
        "--runs", type=int, default=2,
        help="generation runs on the same generator (default 2, so memo hits show)",
    )
    stats.add_argument(
        "--json", action="store_true",
        help="emit one machine-readable JSON document (schemas, validation, "
        "coverage, metrics snapshot) instead of the text report",
    )
    stats.set_defaults(func=_cmd_stats)

    profile = commands.add_parser(
        "profile",
        help="repeat a catalog generation under tracing and emit a call-tree profile",
    )
    profile.add_argument(
        "name", nargs="?", default="easybiz", choices=["easybiz", "ecommerce"],
        help="catalog model to profile (default: easybiz)",
    )
    profile.add_argument(
        "--runs", type=int, default=5,
        help="generation runs, one fresh generator each (default 5)",
    )
    profile.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="profile the parallel build path with N worker threads",
    )
    profile.add_argument(
        "--use-cache", action="store_true",
        help="profile warm-cache runs through the shared generation cache",
    )
    profile.add_argument(
        "--profile-format", choices=["table", "json", "collapsed"], default="table",
        help="output format: hot-path table (default), JSON, or collapsed "
        "flamegraph stacks (root;child;leaf <self-wall-us>)",
    )
    profile.add_argument(
        "--profile-out", metavar="FILE",
        help="write the profile to FILE instead of stdout",
    )
    profile.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="rows in the table / cProfile report (default 20)",
    )
    profile.add_argument(
        "--cprofile-out", metavar="FILE",
        help="also run the generations under cProfile and write the "
        "function-level pstats report to FILE ('-' for stdout)",
    )
    profile.set_defaults(func=_cmd_profile)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    observed = args.trace or args.metrics_out
    # stats and profile configure tracing themselves; reconfiguring here
    # would detach their sinks.
    if observed and args.command not in ("stats", "profile"):
        import repro.obs as obs

        obs.configure(trace=args.trace, reset_metrics=True)
    status = 0
    try:
        status = args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        status = 1
    finally:
        if observed:
            try:
                _report_observability(args)
            except OSError as error:
                print(
                    f"error: cannot write metrics to {args.metrics_out}: {error}",
                    file=sys.stderr,
                )
                status = status or 1
    return status


def _report_observability(args: argparse.Namespace) -> None:
    import repro.obs as obs

    if args.trace and args.command not in ("stats", "profile"):
        ring = obs.get_tracer().ring_buffer()
        if ring is not None:
            print("== span tree ==", file=sys.stderr)
            print(ring.render_tree(), file=sys.stderr)
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            obs.get_metrics().render_json() + "\n", encoding="utf-8"
        )
        print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
