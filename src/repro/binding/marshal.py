"""Schema-driven marshalling between dicts and document trees."""

from __future__ import annotations

from typing import Any

from repro.errors import InstanceValidationError, SchemaError
from repro.obs.metrics import counter
from repro.obs.trace import span
from repro.xmlutil.qname import QName
from repro.xmlutil.writer import XmlElement, XmlWriter
from repro.xsd.components import (
    XSD_NS,
    AttributeDecl,
    AttributeUse,
    ChoiceGroup,
    ComplexType,
    ElementDecl,
    SequenceGroup,
    SimpleType,
)
from repro.xsd.validator import SchemaSet, _resolve_instance

#: Dict key carrying the simple-content value.
VALUE_KEY = "#value"
#: Prefix marking attribute keys.
ATTR_PREFIX = "@"


def _to_text(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


class _Marshaller:
    def __init__(self, schema_set: SchemaSet) -> None:
        self.schema_set = schema_set
        self._prefixes = {
            namespace: f"ns{index}"
            for index, namespace in enumerate(sorted(schema_set.namespaces), start=1)
            if namespace
        }

    def marshal(self, root: QName | str, data: Any) -> XmlElement:
        qname = self._resolve_root(root)
        decl = self.schema_set.find_global_element(qname)
        if decl is None:
            raise SchemaError(f"no global element {qname.clark()} in the schema set")
        element = self._element(decl, qname.namespace, data, qname.local)
        for namespace, prefix in sorted(self._prefixes.items()):
            element.attributes[f"xmlns:{prefix}"] = namespace
        return element

    def _resolve_root(self, root: QName | str) -> QName:
        if isinstance(root, QName):
            return root
        matches = [
            QName(namespace, root)
            for namespace in self.schema_set.namespaces
            if self.schema_set.find_global_element(QName(namespace, root)) is not None
        ]
        if len(matches) != 1:
            raise SchemaError(f"global element {root!r} resolves to {len(matches)} namespaces")
        return matches[0]

    def _tag(self, qname: QName) -> str:
        return qname.prefixed(self._prefixes.get(qname.namespace))

    # -- elements ----------------------------------------------------------------

    def _element(self, decl: ElementDecl, schema_ns: str, data: Any, path: str) -> XmlElement:
        if decl.is_ref:
            target = self.schema_set.find_global_element(decl.ref)
            if target is None:
                raise SchemaError(f"dangling element reference {decl.ref.clark()}")
            return self._element(target, decl.ref.namespace, data, path)
        qname = QName(schema_ns, decl.name)
        element = XmlElement(self._tag(qname))
        if decl.type is None:
            if data is not None:
                element.text(_to_text(data))
            return element
        self._fill(element, decl.type, data, path)
        return element

    def _fill(self, element: XmlElement, type_name: QName, data: Any, path: str) -> None:
        if type_name.namespace == XSD_NS:
            element.text(_to_text(self._plain_value(data, path)))
            return
        definition = self.schema_set.find_type(type_name)
        if definition is None:
            raise SchemaError(f"unresolved type {type_name.clark()}")
        if isinstance(definition, SimpleType):
            element.text(_to_text(self._plain_value(data, path)))
            return
        if definition.simple_content is not None:
            self._fill_simple_content(element, definition, data, path)
            return
        if not isinstance(data, dict):
            raise InstanceValidationError(
                f"{path}: expected a dict for complex content, got {type(data).__name__}"
            )
        self._check_keys(definition, data, path)
        for attribute in definition.attributes:
            self._set_attribute(element, attribute, data, path)
        if definition.particle is not None:
            schema = self.schema_set.schema_for(type_name.namespace)
            self._fill_particle(element, definition.particle, schema.target_namespace, data, path)

    def _plain_value(self, data: Any, path: str) -> Any:
        if isinstance(data, dict):
            extra = [key for key in data if key != VALUE_KEY]
            if extra:
                raise InstanceValidationError(
                    f"{path}: simple value accepts only {VALUE_KEY!r}, got {extra}"
                )
            return data.get(VALUE_KEY, "")
        return data

    def _fill_simple_content(
        self, element: XmlElement, definition: ComplexType, data: Any, path: str
    ) -> None:
        attributes = self._effective_attributes(definition)
        if isinstance(data, dict):
            known = {VALUE_KEY} | {ATTR_PREFIX + a.name for a in attributes}
            unknown = [key for key in data if key not in known]
            if unknown:
                raise InstanceValidationError(f"{path}: unknown keys {unknown}")
            for attribute in attributes:
                key = ATTR_PREFIX + attribute.name
                if key in data:
                    if attribute.use is AttributeUse.PROHIBITED:
                        raise InstanceValidationError(f"{path}: attribute {attribute.name!r} is prohibited")
                    element.attributes[attribute.name] = _to_text(data[key])
                elif attribute.use is AttributeUse.REQUIRED:
                    raise InstanceValidationError(f"{path}: missing required attribute {attribute.name!r}")
            element.text(_to_text(data.get(VALUE_KEY, "")))
        else:
            for attribute in attributes:
                if attribute.use is AttributeUse.REQUIRED:
                    raise InstanceValidationError(
                        f"{path}: missing required attribute {attribute.name!r} "
                        f"(pass a dict with {ATTR_PREFIX}{attribute.name})"
                    )
            element.text(_to_text(data))

    def _effective_attributes(self, definition: ComplexType) -> list[AttributeDecl]:
        content = definition.simple_content
        assert content is not None
        base = content.base
        if base.namespace == XSD_NS:
            return list(content.attributes)
        base_definition = self.schema_set.find_type(base)
        if isinstance(base_definition, ComplexType) and base_definition.simple_content is not None:
            inherited = self._effective_attributes(base_definition)
            if content.derivation == "extension":
                return inherited + list(content.attributes)
            by_name = {a.name: a for a in inherited}
            for attribute in content.attributes:
                by_name[attribute.name] = attribute
            return list(by_name.values())
        return list(content.attributes)

    def _check_keys(self, definition: ComplexType, data: dict, path: str) -> None:
        known = {ATTR_PREFIX + attribute.name for attribute in definition.attributes}
        for decl in self._declared_elements(definition.particle):
            known.add(decl.name if not decl.is_ref else decl.ref.local)
        unknown = [key for key in data if key not in known]
        if unknown:
            raise InstanceValidationError(
                f"{path}: unknown keys {unknown}; declared: {sorted(known)}"
            )

    def _declared_elements(self, particle) -> list[ElementDecl]:
        if particle is None:
            return []
        found: list[ElementDecl] = []
        for child in particle.particles:
            if isinstance(child, ElementDecl):
                found.append(child)
            elif isinstance(child, (SequenceGroup, ChoiceGroup)):
                found.extend(self._declared_elements(child))
        return found

    def _set_attribute(self, element: XmlElement, attribute: AttributeDecl, data: dict, path: str) -> None:
        key = ATTR_PREFIX + attribute.name
        if key in data:
            if attribute.use is AttributeUse.PROHIBITED:
                raise InstanceValidationError(f"{path}: attribute {attribute.name!r} is prohibited")
            element.attributes[attribute.name] = _to_text(data[key])
        elif attribute.use is AttributeUse.REQUIRED:
            raise InstanceValidationError(f"{path}: missing required attribute {attribute.name!r}")

    def _fill_particle(self, element, particle, schema_ns: str, data: dict, path: str) -> None:
        for child in particle.particles:
            if isinstance(child, (SequenceGroup, ChoiceGroup)):
                self._fill_particle(element, child, schema_ns, data, path)
                continue
            key = child.name if not child.is_ref else child.ref.local
            value = data.get(key)
            occurrences: list[Any]
            if value is None:
                occurrences = []
            elif isinstance(value, list):
                occurrences = value
            else:
                occurrences = [value]
            if len(occurrences) < child.min_occurs:
                raise InstanceValidationError(
                    f"{path}.{key}: {len(occurrences)} occurrence(s), minimum {child.min_occurs}"
                )
            if child.max_occurs is not None and len(occurrences) > child.max_occurs:
                raise InstanceValidationError(
                    f"{path}.{key}: {len(occurrences)} occurrence(s), maximum {child.max_occurs}"
                )
            for item in occurrences:
                element.children.append(self._element(child, schema_ns, item, f"{path}.{key}"))


class _Unmarshaller:
    def __init__(self, schema_set: SchemaSet) -> None:
        self.schema_set = schema_set

    def unmarshal(self, document: XmlElement) -> Any:
        resolved = _resolve_instance(document, {})
        decl = self.schema_set.find_global_element(resolved.qname)
        if decl is None:
            raise SchemaError(f"no global element {resolved.qname.clark()}")
        return self._element(decl, resolved)

    def _element(self, decl: ElementDecl, resolved) -> Any:
        if decl.is_ref:
            target = self.schema_set.find_global_element(decl.ref)
            if target is None:
                raise SchemaError(f"dangling element reference {decl.ref.clark()}")
            return self._element(target, resolved)
        if decl.type is None:
            return resolved.text
        return self._value(decl.type, resolved)

    def _value(self, type_name: QName, resolved) -> Any:
        if type_name.namespace == XSD_NS:
            return resolved.text
        definition = self.schema_set.find_type(type_name)
        if definition is None:
            raise SchemaError(f"unresolved type {type_name.clark()}")
        if isinstance(definition, SimpleType):
            return resolved.text
        if definition.simple_content is not None:
            if resolved.attributes:
                data = {ATTR_PREFIX + qname.local: value for qname, value in resolved.attributes.items()}
                data[VALUE_KEY] = resolved.text
                return data
            return resolved.text
        data: dict[str, Any] = {}
        for qname, value in resolved.attributes.items():
            data[ATTR_PREFIX + qname.local] = value
        schema = self.schema_set.schema_for(type_name.namespace)
        declared = {}
        for decl in _Marshaller(self.schema_set)._declared_elements(definition.particle):
            key = decl.name if not decl.is_ref else decl.ref.local
            declared[key] = decl
        for child in resolved.children:
            key = child.qname.local
            child_decl = declared.get(key)
            if child_decl is None:
                raise InstanceValidationError(f"unexpected element {key!r} in {definition.name}")
            child_value = self._element(child_decl, child)
            repeatable = child_decl.max_occurs is None or child_decl.max_occurs > 1
            if repeatable:
                data.setdefault(key, []).append(child_value)
            elif key in data:
                raise InstanceValidationError(f"element {key!r} repeated beyond its declaration")
            else:
                data[key] = child_value
        _ = schema
        return data


def marshal(
    schema_set: SchemaSet,
    root: QName | str,
    data: Any,
    validate: bool = True,
) -> XmlElement:
    """Build a schema-shaped document from ``data``; validates by default."""
    with span("binding.marshal", root=str(root), validate=validate):
        element = _Marshaller(schema_set).marshal(root, data)
        counter("binding.documents_marshalled").inc()
        if validate:
            from repro.xsd.validator import validate_instance

            problems = validate_instance(schema_set, element)
            if problems:
                details = "; ".join(str(problem) for problem in problems[:5])
                raise InstanceValidationError(f"marshalled document is invalid: {details}")
    return element


def marshal_string(schema_set: SchemaSet, root: QName | str, data: Any, validate: bool = True) -> str:
    """Like :func:`marshal` but rendered to a document string."""
    text = XmlWriter().to_string(marshal(schema_set, root, data, validate))
    counter("binding.bytes_serialized").inc(len(text.encode("utf-8")))
    return text


def unmarshal(schema_set: SchemaSet, document: XmlElement | str) -> Any:
    """Project a document back onto the dict convention."""
    if isinstance(document, str):
        from repro.xmlutil.writer import parse_xml

        document = parse_xml(document)
    with span("binding.unmarshal", root=document.tag):
        counter("binding.documents_unmarshalled").inc()
        return _Unmarshaller(schema_set).unmarshal(document)
