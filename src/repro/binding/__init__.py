"""Data binding: Python dicts <-> business-document XML.

The generated schemas describe documents "exchanged during a business
process"; application code wants to produce and consume those documents
without hand-assembling XML.  This package is that layer:

* :func:`marshal` -- a plain dict (attributes under ``"@name"`` keys, the
  simple-content value under ``"#value"``, repeated elements as lists)
  becomes a schema-shaped :class:`repro.xmlutil.XmlElement` tree,
* :func:`unmarshal` -- the reverse projection,
* both are schema-driven: unknown fields, type mismatches and missing
  required content surface as :class:`repro.errors.InstanceValidationError`
  immediately, not at the receiving end.

The dict convention round-trips: ``unmarshal(schema_set, marshal(schema_set,
root, data)) == data`` for canonical data (the property tests check it).
"""

from repro.binding.marshal import marshal, marshal_string, unmarshal

__all__ = ["marshal", "marshal_string", "unmarshal"]
