"""Qualified names (namespace URI + local part) and prefixed-name handling."""

from __future__ import annotations

from dataclasses import dataclass

#: The namespace the ``xml`` prefix is implicitly bound to (Namespaces in
#: XML 1.0, section 3): it needs no declaration and cannot be rebound.
XML_NAMESPACE = "http://www.w3.org/XML/1998/namespace"

#: The namespace of namespace declarations themselves.  The ``xmlns``
#: prefix is reserved: it must never be declared, nor used as an ordinary
#: element/attribute prefix.
XMLNS_NAMESPACE = "http://www.w3.org/2000/xmlns/"


@dataclass(frozen=True, order=True)
class QName:
    """An expanded XML name: a namespace URI (may be empty) plus local part.

    ``QName("urn:x", "CodeType")`` renders as ``{urn:x}CodeType`` in Clark
    notation via :meth:`clark` and compares/hashes by value, which makes it
    usable as a dictionary key throughout the XSD component model.
    """

    namespace: str
    local: str

    def __post_init__(self) -> None:
        # Instances are hashed far more often than constructed (content-model
        # lookups key transition tables by QName), so cache the hash once.
        object.__setattr__(self, "_hash", hash((self.namespace, self.local)))

    def __hash__(self) -> int:
        return self._hash

    def clark(self) -> str:
        """Return the Clark-notation form ``{namespace}local``."""
        if self.namespace:
            return f"{{{self.namespace}}}{self.local}"
        return self.local

    def prefixed(self, prefix: str | None) -> str:
        """Render as ``prefix:local`` (or just ``local`` for a None/empty prefix)."""
        if prefix:
            return f"{prefix}:{self.local}"
        return self.local

    @classmethod
    def from_clark(cls, text: str) -> "QName":
        """Parse Clark notation (``{ns}local`` or bare ``local``)."""
        if text.startswith("{"):
            namespace, _, local = text[1:].partition("}")
            return cls(namespace, local)
        return cls("", text)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.clark()


def split_qname(text: str) -> tuple[str | None, str]:
    """Split a prefixed name into ``(prefix, local)``; prefix is None if absent.

    A name with more than one colon is not a QName (Namespaces in XML 1.0
    allows at most one) and raises :class:`ValueError` -- silently treating
    ``a:b:c`` as prefix ``a`` with local part ``b:c`` would fabricate a
    local name no schema can declare.
    """
    if ":" in text:
        prefix, _, local = text.partition(":")
        if ":" in local:
            raise ValueError(f"invalid QName {text!r}: more than one colon")
        return prefix, local
    return None, text


def resolve_prefixed(text: str, namespaces: dict[str | None, str]) -> QName:
    """Resolve ``prefix:local`` against a prefix->URI map into a :class:`QName`.

    A missing prefix resolves against the default namespace (key ``None``),
    falling back to the empty namespace when no default is declared.  The
    ``xml`` prefix resolves implicitly to :data:`XML_NAMESPACE` whether or
    not it was declared (so ``xml:lang`` works on any document), and the
    reserved ``xmlns`` prefix is always rejected -- both per Namespaces in
    XML 1.0, section 3.
    """
    prefix, local = split_qname(text)
    if prefix == "xml":
        return QName(XML_NAMESPACE, local)
    if prefix == "xmlns":
        raise KeyError(f"the reserved prefix 'xmlns' cannot name elements or attributes: {text!r}")
    namespace = namespaces.get(prefix, "" if prefix is None else None)
    if namespace is None:
        raise KeyError(f"undeclared namespace prefix {prefix!r} in {text!r}")
    return QName(namespace, local)
