"""Qualified names (namespace URI + local part) and prefixed-name handling."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class QName:
    """An expanded XML name: a namespace URI (may be empty) plus local part.

    ``QName("urn:x", "CodeType")`` renders as ``{urn:x}CodeType`` in Clark
    notation via :meth:`clark` and compares/hashes by value, which makes it
    usable as a dictionary key throughout the XSD component model.
    """

    namespace: str
    local: str

    def __post_init__(self) -> None:
        # Instances are hashed far more often than constructed (content-model
        # lookups key transition tables by QName), so cache the hash once.
        object.__setattr__(self, "_hash", hash((self.namespace, self.local)))

    def __hash__(self) -> int:
        return self._hash

    def clark(self) -> str:
        """Return the Clark-notation form ``{namespace}local``."""
        if self.namespace:
            return f"{{{self.namespace}}}{self.local}"
        return self.local

    def prefixed(self, prefix: str | None) -> str:
        """Render as ``prefix:local`` (or just ``local`` for a None/empty prefix)."""
        if prefix:
            return f"{prefix}:{self.local}"
        return self.local

    @classmethod
    def from_clark(cls, text: str) -> "QName":
        """Parse Clark notation (``{ns}local`` or bare ``local``)."""
        if text.startswith("{"):
            namespace, _, local = text[1:].partition("}")
            return cls(namespace, local)
        return cls("", text)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.clark()


def split_qname(text: str) -> tuple[str | None, str]:
    """Split a prefixed name into ``(prefix, local)``; prefix is None if absent."""
    if ":" in text:
        prefix, _, local = text.partition(":")
        return prefix, local
    return None, text


def resolve_prefixed(text: str, namespaces: dict[str | None, str]) -> QName:
    """Resolve ``prefix:local`` against a prefix->URI map into a :class:`QName`.

    A missing prefix resolves against the default namespace (key ``None``),
    falling back to the empty namespace when no default is declared.
    """
    prefix, local = split_qname(text)
    namespace = namespaces.get(prefix, "" if prefix is None else None)
    if namespace is None:
        raise KeyError(f"undeclared namespace prefix {prefix!r} in {text!r}")
    return QName(namespace, local)
