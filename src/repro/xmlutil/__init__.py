"""Low-level XML utilities shared by the XMI, XSD and instance layers.

The environment offers only the standard library, so this package provides
the pieces a schema/XMI toolchain normally takes from lxml:

* :mod:`repro.xmlutil.escape` -- context-sensitive escaping/unescaping,
* :mod:`repro.xmlutil.qname` -- qualified names and prefix resolution,
* :mod:`repro.xmlutil.writer` -- a deterministic pretty-printing writer
  built around an explicit element tree (:class:`XmlElement`).

Determinism matters: the figure benchmarks compare generated schemas
byte-for-byte across runs.
"""

from repro.xmlutil.escape import escape_attribute, escape_text, is_valid_xml_name
from repro.xmlutil.qname import (
    XML_NAMESPACE,
    XMLNS_NAMESPACE,
    QName,
    resolve_prefixed,
    split_qname,
)
from repro.xmlutil.writer import XmlElement, XmlWriter, parse_xml

__all__ = [
    "QName",
    "XML_NAMESPACE",
    "XMLNS_NAMESPACE",
    "XmlElement",
    "XmlWriter",
    "escape_attribute",
    "escape_text",
    "is_valid_xml_name",
    "parse_xml",
    "resolve_prefixed",
    "split_qname",
]
