"""Escaping and name-validity helpers for XML serialization.

These functions implement the XML 1.0 rules the writer depends on: text
content escaping, attribute-value escaping (double-quote delimited) and the
``Name`` production used to sanity-check element/attribute names before they
are written.
"""

from __future__ import annotations

import re

# XML 1.0 Name production, restricted to the ASCII + BMP ranges that matter
# for NDR-generated names.  NDR names are ASCII CamelCase, but user-supplied
# qualifiers may carry a wider range, so we accept the full NameStartChar set.
_NAME_START = (
    ":A-Z_a-zÀ-ÖØ-öø-˿Ͱ-ͽ"
    "Ϳ-῿‌-‍⁰-↏Ⰰ-⿯、-퟿"
    "豈-﷏ﷰ-�"
)
_NAME_CHAR = _NAME_START + "\\-.0-9·̀-ͯ‿-⁀"
_NAME_RE = re.compile(f"^[{_NAME_START}][{_NAME_CHAR}]*$")

# Carriage returns must leave as character references even in text content:
# an XML parser normalizes a literal \r (or \r\n) to \n on input (XML 1.0
# section 2.11), so writing it raw would break serialize->parse->serialize
# byte identity.
_TEXT_REPLACEMENTS = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;"), ("\r", "&#13;")]
_ATTR_REPLACEMENTS = _TEXT_REPLACEMENTS + [('"', "&quot;"), ("\n", "&#10;"), ("\t", "&#9;")]


def escape_text(value: str) -> str:
    """Escape ``value`` for use as XML character data."""
    for raw, repl in _TEXT_REPLACEMENTS:
        value = value.replace(raw, repl)
    return value


def escape_attribute(value: str) -> str:
    """Escape ``value`` for use inside a double-quoted XML attribute."""
    for raw, repl in _ATTR_REPLACEMENTS:
        value = value.replace(raw, repl)
    return value


def is_valid_xml_name(name: str) -> bool:
    """Return True when ``name`` matches the XML 1.0 ``Name`` production."""
    return bool(name) and _NAME_RE.match(name) is not None


def is_valid_ncname(name: str) -> bool:
    """Return True when ``name`` is a valid NCName (a Name without colons)."""
    return is_valid_xml_name(name) and ":" not in name
