"""A deterministic XML element tree and pretty-printing writer.

The standard library's ``xml.etree`` can serialize, but its namespace
handling renames prefixes (``ns0``/``ns1``) which would destroy the
prefix-bearing output the paper's Figures 6-8 show (``cdt1``, ``qdt1``,
``commonAggregates``, ``bie2``).  This module keeps prefixes explicit:
elements carry already-prefixed tags plus ``xmlns`` declarations as ordinary
attributes, exactly as the generator computed them.

:func:`parse_xml` is the matching reader used by the XSD parser and the
instance validator; it preserves the declared prefix map per element.
"""

from __future__ import annotations

import io
import xml.etree.ElementTree as ET
import xml.parsers.expat
from dataclasses import dataclass, field

from repro.xmlutil.escape import escape_attribute, escape_text, is_valid_xml_name


class XmlElement:
    """A mutable XML element with ordered attributes and mixed children.

    ``tag`` is the name as written (possibly prefixed).  Children are either
    :class:`XmlElement` instances or strings (text nodes).  Attribute order
    is insertion order, which the writer preserves so output is stable.

    ``source_line``/``source_column`` are the 1-based position of the
    element's start tag when the tree came from :func:`parse_xml`, and
    ``None`` for programmatically built trees.  The XMI reader threads them
    into located load diagnostics.
    """

    __slots__ = ("tag", "attributes", "children", "source_line", "source_column")

    def __init__(self, tag: str, attributes: dict[str, str] | None = None) -> None:
        if not is_valid_xml_name(tag.replace(":", "_", 1) if ":" in tag else tag):
            raise ValueError(f"invalid XML element name: {tag!r}")
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})
        self.children: list[XmlElement | str] = []
        self.source_line: int | None = None
        self.source_column: int | None = None

    def set(self, name: str, value: str) -> "XmlElement":
        """Set an attribute and return self (chainable)."""
        self.attributes[name] = value
        return self

    def add(self, tag: str, attributes: dict[str, str] | None = None) -> "XmlElement":
        """Append and return a new child element."""
        child = XmlElement(tag, attributes)
        self.children.append(child)
        return child

    def append(self, child: "XmlElement") -> "XmlElement":
        """Append an existing element and return it."""
        self.children.append(child)
        return child

    def text(self, value: str) -> "XmlElement":
        """Append a text node and return self."""
        self.children.append(value)
        return self

    @property
    def element_children(self) -> list["XmlElement"]:
        """Child elements only (text nodes skipped)."""
        return [child for child in self.children if isinstance(child, XmlElement)]

    @property
    def text_content(self) -> str:
        """Concatenated direct text content."""
        return "".join(child for child in self.children if isinstance(child, str))

    def find(self, tag: str) -> "XmlElement | None":
        """First child element with the given (prefixed) tag, or None."""
        for child in self.element_children:
            if child.tag == tag:
                return child
        return None

    def find_all(self, tag: str) -> list["XmlElement"]:
        """All child elements with the given (prefixed) tag."""
        return [child for child in self.element_children if child.tag == tag]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XmlElement {self.tag} attrs={len(self.attributes)} children={len(self.children)}>"


@dataclass
class XmlWriter:
    """Serializes an :class:`XmlElement` tree with two-space indentation.

    ``sort_attributes`` keeps the writer deterministic even if callers build
    attribute dicts in varying order; the generator leaves it off because it
    controls ordering itself (namespace declarations first, as in Figure 6).
    """

    indent: str = "  "
    declaration: bool = True
    sort_attributes: bool = False

    def to_string(self, root: XmlElement) -> str:
        """Render the tree to a string."""
        out = io.StringIO()
        if self.declaration:
            out.write('<?xml version="1.0" encoding="UTF-8"?>\n')
        self._write_element(out, root, 0)
        out.write("\n")
        return out.getvalue()

    def write(self, root: XmlElement, path: str) -> None:
        """Render the tree and write it to ``path`` as UTF-8."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_string(root))

    def _write_element(self, out: io.StringIO, element: XmlElement, depth: int) -> None:
        pad = self.indent * depth
        out.write(f"{pad}<{element.tag}")
        items = element.attributes.items()
        if self.sort_attributes:
            items = sorted(items)
        for name, value in items:
            out.write(f' {name}="{escape_attribute(value)}"')
        if not element.children:
            out.write("/>")
            return
        out.write(">")
        has_elements = any(isinstance(child, XmlElement) for child in element.children)
        if not has_elements:
            # Pure text content stays on one line so values round-trip intact.
            for child in element.children:
                out.write(escape_text(str(child)))
            out.write(f"</{element.tag}>")
            return
        for child in element.children:
            out.write("\n")
            if isinstance(child, XmlElement):
                self._write_element(out, child, depth + 1)
            else:
                out.write(f"{self.indent * (depth + 1)}{escape_text(child)}")
        out.write(f"\n{pad}</{element.tag}>")


@dataclass
class ParsedElement:
    """Wrapper pairing an :class:`XmlElement` with its in-scope namespaces."""

    element: XmlElement
    namespaces: dict[str | None, str] = field(default_factory=dict)


class _ParseFrame:
    """Per-open-element parse state: the element plus its leading text."""

    __slots__ = ("element", "texts", "has_element_child")

    def __init__(self, element: XmlElement) -> None:
        self.element = element
        self.texts: list[str] = []
        self.has_element_child = False


def parse_xml(text: str) -> XmlElement:
    """Parse XML text into an :class:`XmlElement` tree, preserving prefixes.

    Namespace declarations are kept as literal ``xmlns``/``xmlns:p``
    attributes and tags keep their written prefixes, mirroring what the
    writer produces.  Built directly on the stdlib expat parser (namespace
    processing off, so names arrive exactly as written) which also reports
    the line/column of every start tag -- recorded on the elements as
    ``source_line``/``source_column`` (both 1-based) so readers can attach
    source locations to their diagnostics.

    Malformed input raises :class:`xml.etree.ElementTree.ParseError` with
    ``position`` set, matching the previous pull-parser behavior.
    """
    parser = xml.parsers.expat.ParserCreate()
    parser.ordered_attributes = True
    parser.buffer_text = True

    stack: list[_ParseFrame] = []
    roots: list[XmlElement] = []

    def handle_start(tag: str, attributes: list[str]) -> None:
        element = XmlElement(tag)
        element.source_line = parser.CurrentLineNumber
        element.source_column = parser.CurrentColumnNumber + 1
        for index in range(0, len(attributes), 2):
            element.attributes[attributes[index]] = attributes[index + 1]
        if stack:
            stack[-1].has_element_child = True
            stack[-1].element.children.append(element)
        else:
            roots.append(element)
        stack.append(_ParseFrame(element))

    def handle_end(tag: str) -> None:
        frame = stack.pop()
        leading = "".join(frame.texts)
        # Match the previous reader: only the text before the first child
        # element survives; whitespace-only runs survive only in childless
        # elements (so indentation never becomes a text node).
        if leading.strip() or (leading and not frame.has_element_child):
            frame.element.children.insert(0, leading)

    def handle_text(data: str) -> None:
        if stack and not stack[-1].has_element_child:
            stack[-1].texts.append(data)

    parser.StartElementHandler = handle_start
    parser.EndElementHandler = handle_end
    parser.CharacterDataHandler = handle_text
    try:
        parser.Parse(text, True)
    except xml.parsers.expat.ExpatError as error:
        wrapped = ET.ParseError(str(error))
        wrapped.code = error.code
        wrapped.position = (error.lineno, error.offset)
        raise wrapped from None
    if not roots:
        raise ValueError("document contained no root element")
    return roots[0]
