"""A deterministic XML element tree and pretty-printing writer.

The standard library's ``xml.etree`` can serialize, but its namespace
handling renames prefixes (``ns0``/``ns1``) which would destroy the
prefix-bearing output the paper's Figures 6-8 show (``cdt1``, ``qdt1``,
``commonAggregates``, ``bie2``).  This module keeps prefixes explicit:
elements carry already-prefixed tags plus ``xmlns`` declarations as ordinary
attributes, exactly as the generator computed them.

:func:`parse_xml` is the matching reader used by the XSD parser and the
instance validator; it preserves the declared prefix map per element.
"""

from __future__ import annotations

import io
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

from repro.xmlutil.escape import escape_attribute, escape_text, is_valid_xml_name


class XmlElement:
    """A mutable XML element with ordered attributes and mixed children.

    ``tag`` is the name as written (possibly prefixed).  Children are either
    :class:`XmlElement` instances or strings (text nodes).  Attribute order
    is insertion order, which the writer preserves so output is stable.
    """

    __slots__ = ("tag", "attributes", "children")

    def __init__(self, tag: str, attributes: dict[str, str] | None = None) -> None:
        if not is_valid_xml_name(tag.replace(":", "_", 1) if ":" in tag else tag):
            raise ValueError(f"invalid XML element name: {tag!r}")
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})
        self.children: list[XmlElement | str] = []

    def set(self, name: str, value: str) -> "XmlElement":
        """Set an attribute and return self (chainable)."""
        self.attributes[name] = value
        return self

    def add(self, tag: str, attributes: dict[str, str] | None = None) -> "XmlElement":
        """Append and return a new child element."""
        child = XmlElement(tag, attributes)
        self.children.append(child)
        return child

    def append(self, child: "XmlElement") -> "XmlElement":
        """Append an existing element and return it."""
        self.children.append(child)
        return child

    def text(self, value: str) -> "XmlElement":
        """Append a text node and return self."""
        self.children.append(value)
        return self

    @property
    def element_children(self) -> list["XmlElement"]:
        """Child elements only (text nodes skipped)."""
        return [child for child in self.children if isinstance(child, XmlElement)]

    @property
    def text_content(self) -> str:
        """Concatenated direct text content."""
        return "".join(child for child in self.children if isinstance(child, str))

    def find(self, tag: str) -> "XmlElement | None":
        """First child element with the given (prefixed) tag, or None."""
        for child in self.element_children:
            if child.tag == tag:
                return child
        return None

    def find_all(self, tag: str) -> list["XmlElement"]:
        """All child elements with the given (prefixed) tag."""
        return [child for child in self.element_children if child.tag == tag]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XmlElement {self.tag} attrs={len(self.attributes)} children={len(self.children)}>"


@dataclass
class XmlWriter:
    """Serializes an :class:`XmlElement` tree with two-space indentation.

    ``sort_attributes`` keeps the writer deterministic even if callers build
    attribute dicts in varying order; the generator leaves it off because it
    controls ordering itself (namespace declarations first, as in Figure 6).
    """

    indent: str = "  "
    declaration: bool = True
    sort_attributes: bool = False

    def to_string(self, root: XmlElement) -> str:
        """Render the tree to a string."""
        out = io.StringIO()
        if self.declaration:
            out.write('<?xml version="1.0" encoding="UTF-8"?>\n')
        self._write_element(out, root, 0)
        out.write("\n")
        return out.getvalue()

    def write(self, root: XmlElement, path: str) -> None:
        """Render the tree and write it to ``path`` as UTF-8."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_string(root))

    def _write_element(self, out: io.StringIO, element: XmlElement, depth: int) -> None:
        pad = self.indent * depth
        out.write(f"{pad}<{element.tag}")
        items = element.attributes.items()
        if self.sort_attributes:
            items = sorted(items)
        for name, value in items:
            out.write(f' {name}="{escape_attribute(value)}"')
        if not element.children:
            out.write("/>")
            return
        out.write(">")
        has_elements = any(isinstance(child, XmlElement) for child in element.children)
        if not has_elements:
            # Pure text content stays on one line so values round-trip intact.
            for child in element.children:
                out.write(escape_text(str(child)))
            out.write(f"</{element.tag}>")
            return
        for child in element.children:
            out.write("\n")
            if isinstance(child, XmlElement):
                self._write_element(out, child, depth + 1)
            else:
                out.write(f"{self.indent * (depth + 1)}{escape_text(child)}")
        out.write(f"\n{pad}</{element.tag}>")


@dataclass
class ParsedElement:
    """Wrapper pairing an :class:`XmlElement` with its in-scope namespaces."""

    element: XmlElement
    namespaces: dict[str | None, str] = field(default_factory=dict)


def parse_xml(text: str) -> XmlElement:
    """Parse XML text into an :class:`XmlElement` tree, preserving prefixes.

    Namespace declarations are kept as literal ``xmlns``/``xmlns:p``
    attributes and tags keep their written prefixes, mirroring what the
    writer produces.  Built on the stdlib pull parser so no third-party
    dependency is needed.
    """
    events = ET.XMLPullParser(events=("start", "end", "start-ns"))
    events.feed(text)
    events.close()

    # ElementTree expands names to Clark notation and drops prefixes, so we
    # rebuild prefixed tags from the start-ns events with a scope stack.
    pending_ns: list[tuple[str, str]] = []
    uri_to_prefix_stack: list[dict[str, str]] = [{}]
    stack: list[XmlElement] = []
    root: XmlElement | None = None

    for event, payload in events.read_events():
        if event == "start-ns":
            prefix, uri = payload
            pending_ns.append((prefix, uri))
            continue
        if event == "start":
            scope = dict(uri_to_prefix_stack[-1])
            declared = list(pending_ns)
            pending_ns.clear()
            for prefix, uri in declared:
                scope[uri] = prefix
            uri_to_prefix_stack.append(scope)
            tag = _prefixed_name(payload.tag, scope)
            element = XmlElement(tag)
            for prefix, uri in declared:
                key = f"xmlns:{prefix}" if prefix else "xmlns"
                element.attributes[key] = uri
            for name, value in payload.attrib.items():
                element.attributes[_prefixed_name(name, scope)] = value
            if stack:
                stack[-1].children.append(element)
            else:
                root = element
            stack.append(element)
        elif event == "end":
            element = stack.pop()
            if payload.text and payload.text.strip():
                element.children.insert(0, payload.text)
            elif payload.text and not element.element_children:
                element.children.insert(0, payload.text)
            uri_to_prefix_stack.pop()

    if root is None:
        raise ValueError("document contained no root element")
    return root


def _prefixed_name(clark: str, uri_to_prefix: dict[str, str]) -> str:
    """Convert a Clark-notation name back to its written prefixed form."""
    if not clark.startswith("{"):
        return clark
    uri, _, local = clark[1:].partition("}")
    if uri == "http://www.w3.org/XML/1998/namespace":
        return f"xml:{local}"
    prefix = uri_to_prefix.get(uri)
    if prefix is None:
        # Namespace was declared on an ancestor parsed in an earlier scope
        # snapshot; fall back to Clark notation rather than guessing.
        return clark
    if prefix == "":
        return local
    return f"{prefix}:{local}"
