"""The core-components management console.

The paper's outlook: "The Add-In will therefore be extended by a core
components management console, allowing the easy maintenance of existing
libraries.  Other modeler amenities such as updating all namespaces,
setting one global schema location etc. are also subject to current
development."  This package implements those amenities:

* :func:`update_base_urns` -- retarget every library's ``baseURN``
  ("updating all namespaces"),
* :func:`set_global_schema_location` -- rewrite the relative import
  locations of generated schemas to one absolute base ("setting one global
  schema location"),
* :func:`rename_classifier` / :func:`move_classifier` /
  :func:`bump_version` -- library maintenance with integrity checks,
* :func:`find_unused` -- dead-element report (unused CDTs, QDTs, ACCs,
  enumerations),
* :func:`impact_of` -- "which schemas change if I touch this element?",
  the dependency question modelers "often get lost" over.
"""

from repro.console.maintenance import (
    bump_version,
    find_unused,
    impact_of,
    move_classifier,
    rename_classifier,
    update_base_urns,
)
from repro.console.locations import set_global_schema_location

__all__ = [
    "bump_version",
    "find_unused",
    "impact_of",
    "move_classifier",
    "rename_classifier",
    "set_global_schema_location",
    "update_base_urns",
]
