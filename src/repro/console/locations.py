"""Schema-location rewriting: "setting one global schema location"."""

from __future__ import annotations

from repro.xsdgen.generator import GenerationResult


def set_global_schema_location(result: GenerationResult, base_url: str) -> int:
    """Rewrite every import's schemaLocation to ``base_url``/file.

    The default generation emits relative sibling-folder locations
    (``../urn_au_gov_vic_easybiz_/file.xsd``); deployments that publish all
    schemas under one URL want absolute locations instead.  Returns the
    number of imports rewritten.
    """
    base = base_url.rstrip("/")
    by_namespace = {
        generated.namespace.urn: generated.namespace.file_name
        for generated in result.schemas.values()
    }
    rewritten = 0
    for generated in result.schemas.values():
        for import_decl in generated.schema.imports:
            file_name = by_namespace.get(import_decl.namespace)
            if file_name is not None:
                import_decl.schema_location = f"{base}/{file_name}"
                rewritten += 1
    return rewritten
