"""Library maintenance operations with integrity checks.

Because the model uses object identity for every reference (attribute
types, association ends, dependencies), renames and moves never leave
dangling references -- the checks here guard the *naming* invariants
(uniqueness per library, NDR viability) instead.
"""

from __future__ import annotations

from repro.ccts.base import ElementWrapper
from repro.ccts.libraries import Library
from repro.ccts.model import CctsModel
from repro.errors import CctsError, NamingError
from repro.ndr.names import sanitize_ncname
from repro.profile import TAG_BASE_URN, TAG_VERSION
from repro.uml.classifier import Classifier
from repro.uml.package import Package
from repro.uml.property import Property


def update_base_urns(model: CctsModel, old_base: str, new_base: str) -> list[str]:
    """Replace ``old_base`` with ``new_base`` in every library's baseURN.

    Returns the names of the libraries that changed -- the paper's
    "updating all namespaces" amenity.
    """
    changed: list[str] = []
    for library in model.libraries():
        current = library.element.tagged_value(library.stereotype, TAG_BASE_URN)
        if current is not None and current.startswith(old_base):
            library.element.set_tagged_value(
                library.stereotype, TAG_BASE_URN, new_base + current[len(old_base):]
            )
            changed.append(library.name)
    return changed


def bump_version(library: Library, new_version: str) -> str:
    """Set a library's version tag; returns the previous version."""
    previous = library.library_version
    library.element.set_tagged_value(library.stereotype, TAG_VERSION, new_version)
    return previous


def rename_classifier(model: CctsModel, wrapper: ElementWrapper, new_name: str) -> None:
    """Rename a classifier, enforcing NDR viability and library uniqueness.

    Object-identity references keep every type reference, association end
    and basedOn dependency intact across the rename.
    """
    try:
        sanitize_ncname(new_name)
    except NamingError as error:
        raise CctsError(f"cannot rename to {new_name!r}: {error}") from error
    owner = wrapper.element.owner
    if isinstance(owner, Package) and any(
        sibling.name == new_name and sibling is not wrapper.element
        for sibling in owner.classifiers
    ):
        raise CctsError(
            f"cannot rename {wrapper.name!r} to {new_name!r}: the name is taken in "
            f"package {owner.name!r}"
        )
    wrapper.element.name = new_name


def move_classifier(model: CctsModel, wrapper: ElementWrapper, target: Library) -> None:
    """Move a classifier into another library of a compatible kind."""
    from repro.validation.rules.libraries import _ALLOWED_CONTENT

    allowed = _ALLOWED_CONTENT.get(target.stereotype)
    stereotypes = set(wrapper.element.stereotypes)
    if allowed is not None and stereotypes and not (stereotypes & allowed):
        raise CctsError(
            f"cannot move {'/'.join(sorted(stereotypes))} {wrapper.name!r} into "
            f"{target.stereotype} {target.name!r}"
        )
    if target.package.find_classifier(wrapper.name) is not None:
        raise CctsError(
            f"cannot move {wrapper.name!r}: {target.name!r} already defines that name"
        )
    source = wrapper.element.owner
    if not isinstance(source, Package):
        raise CctsError(f"{wrapper.name!r} is not owned by a package")
    source.classifiers.remove(wrapper.element)
    wrapper.element.owner = target.package
    target.package.classifiers.append(wrapper.element)


def find_unused(model: CctsModel) -> dict[str, list[str]]:
    """Elements nothing references: candidates for library cleanup.

    Returns qualified names grouped by kind ("CDT", "QDT", "ENUM", "ACC").
    An ACC counts as used when any ABIE is based on it or any ASCC targets
    it; a data type counts as used when any attribute is typed by it; an
    enumeration when any CON/SUP uses it.
    """
    used_types: set[int] = set()
    for prop in model.model.all_of_type(Property):
        if prop.type is not None:
            used_types.add(id(prop.type))
    used_accs: set[int] = set()
    with model.model.indexed():
        for abie in model.abies():
            base = abie.based_on
            if base is not None:
                used_accs.add(id(base.element))
        for acc in model.accs():
            for ascc in acc.asccs:
                used_accs.add(id(ascc.target.element))
        for qdt in model.qdts():
            base = qdt.based_on
            if base is not None:
                used_types.add(id(base.element))

    unused: dict[str, list[str]] = {"CDT": [], "QDT": [], "ENUM": [], "ACC": []}
    for cdt in model.cdts():
        if id(cdt.element) not in used_types:
            unused["CDT"].append(cdt.qualified_name)
    for qdt in model.qdts():
        if id(qdt.element) not in used_types:
            unused["QDT"].append(qdt.qualified_name)
    for element in model.model.all_with_stereotype("ENUM"):
        if isinstance(element, Classifier) and id(element) not in used_types:
            unused["ENUM"].append(element.qualified_name)
    for acc in model.accs():
        if id(acc.element) not in used_accs:
            unused["ACC"].append(acc.qualified_name)
    return unused


def impact_of(model: CctsModel, wrapper: ElementWrapper) -> list[str]:
    """Libraries whose generated schema changes when ``wrapper`` changes.

    Walks the reverse dependency closure: direct users (typed attributes,
    association targets, basedOn clients) and then the libraries owning
    them, transitively -- the question behind the paper's complaint that
    "interdependencies between CDTs, QDTs etc. blur".
    """
    target_ids = {id(wrapper.element)}
    affected_libraries: set[str] = set()
    owner_library = model.owning_library_of(wrapper)
    if owner_library is not None:
        affected_libraries.add(owner_library.name)

    changed = True
    while changed:
        changed = False
        for prop in model.model.all_of_type(Property):
            if prop.type is not None and id(prop.type) in target_ids:
                classifier = prop.owner
                if classifier is not None and id(classifier) not in target_ids:
                    target_ids.add(id(classifier))
                    changed = True
        from repro.uml.association import Association
        from repro.uml.dependency import Dependency

        for association in model.model.all_of_type(Association):
            if id(association.target.type) in target_ids and id(association.source.type) not in target_ids:
                target_ids.add(id(association.source.type))
                changed = True
        for dependency in model.model.all_of_type(Dependency):
            if id(dependency.supplier) in target_ids and id(dependency.client) not in target_ids:
                target_ids.add(id(dependency.client))
                changed = True

    for classifier in model.model.all_of_type(Classifier):
        if id(classifier) in target_ids:
            package = model.model.owning_package_of(classifier)
            while package is not None:
                from repro.ccts.libraries import library_wrapper_for

                library = library_wrapper_for(package, model.model)
                if library is not None and library.stereotype != "BusinessLibrary":
                    affected_libraries.add(library.name)
                    break
                owner = package.owner
                package = owner if isinstance(owner, Package) else None
    return sorted(affected_libraries)
