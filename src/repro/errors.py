"""Exception hierarchy for the UPCC reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with one ``except`` clause while still being able to
discriminate between modelling, profile, generation and validation failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ModelError(ReproError):
    """A structural problem in the UML model (duplicate names, bad owners...)."""


class ProfileError(ReproError):
    """Misuse of the UPCC profile (unknown stereotype, illegal application...)."""


class CctsError(ReproError):
    """Violation of a CCTS rule at the typed-facade level."""


class DerivationError(CctsError):
    """An illegal derivation-by-restriction (e.g. adding attributes)."""


class NamingError(CctsError):
    """A dictionary entry name could not be built or parsed."""


class GenerationError(ReproError):
    """The XSD generator aborted; mirrors the error dialog of the paper's add-in."""


class XmiError(ReproError):
    """XMI serialization or deserialization failure.

    Loader-raised instances carry the offending element's ``xmi_id``, its
    slash-separated element ``path`` and the 1-based ``line``/``column`` of
    its start tag (all ``None``/empty when unknown), so strict-mode callers
    get the same located facts lenient mode records as ``LoadIssue``s.
    """

    def __init__(
        self,
        message: str,
        *,
        xmi_id: str | None = None,
        path: str = "",
        line: int | None = None,
        column: int | None = None,
    ) -> None:
        super().__init__(message)
        self.xmi_id = xmi_id
        self.path = path
        self.line = line
        self.column = column


class SchemaError(ReproError):
    """An ill-formed XSD component tree."""


class InstanceValidationError(ReproError):
    """Raised by the strict instance-validation entry point on invalid input."""


class InterchangeError(ReproError):
    """Spreadsheet/CSV interchange failure."""


class RegistryError(ReproError):
    """Registry lookup/storage failure."""
