"""The ``upcc serve`` HTTP daemon: worker pool, backpressure, graceful drain.

Stdlib only.  A :class:`ThreadingHTTPServer` accepts connections; each
connection thread parses the request and -- for the work endpoints
(``/generate``, ``/validate``, ``/explain``) -- enqueues a :class:`_Job`
onto a *bounded* queue consumed by ``workers`` long-lived worker threads,
then waits (with the per-request timeout) for the job's done-event.  This
decouples concurrency admission from connection count:

* queue full           -> immediate ``503`` with ``Retry-After`` (backpressure),
* job waited too long  -> ``504``; the job is flagged abandoned so a worker
  never burns CPU on a response nobody is waiting for,
* draining             -> new work gets ``503``, queued work still completes.

``/healthz`` and ``/stats`` are answered inline on the connection thread so
they stay responsive while the pool is saturated -- exactly when an
operator needs them.

Graceful drain (:meth:`UpccServer.drain`, wired to ``SIGTERM``/``SIGINT``
by the CLI): stop admitting work, let the queue and in-flight jobs finish,
stop the workers, then shut the listener down.  Connection threads are
non-daemon and ``server_close`` joins them, so every admitted request gets
its response bytes written before the process exits -- zero dropped
responses, asserted by ``tests/test_serve.py``.

Observability: every request runs under a ``serve.request`` span (the
worker executes the job inside the connection thread's snapshot of the
trace context, so pipeline child spans parent under it across the thread
hop) and records ``serve.requests_total{endpoint=..}``,
``serve.responses_total{code=..}``, ``serve.request_ms{endpoint=..}``,
``serve.queue_depth`` and ``serve.rejected_total{reason=..}``.  Incoming
W3C ``traceparent``/``tracestate`` headers are adopted: the trace id is
echoed on the response, stamped on the access-log record and the
serve.request span, attached as an OpenMetrics exemplar to the latency
bucket the request landed in, and recorded on any slow-trace capture --
one id correlates client log, access log, ``/metrics`` and ``/slow``.
An :class:`repro.obs.slo.SloEngine` (default objectives, or ``--slo``)
evaluates burn rates on the runtime collector's cadence and serves
``GET /alerts``.
"""

from __future__ import annotations

import contextvars
import json
import queue
import select
import threading
import time
from dataclasses import dataclass, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import parse_qs, urlsplit

from repro.obs.export import OPENMETRICS_CONTENT_TYPE, PROMETHEUS_CONTENT_TYPE
from repro.obs.logging_bridge import get_logger
from repro.obs.metrics import (
    Exemplar,
    counter,
    describe,
    gauge,
    get_registry,
    histogram,
)
from repro.obs.propagation import (
    TRACEPARENT_HEADER,
    TRACESTATE_HEADER,
    TraceContext,
    parse_traceparent,
    parse_tracestate,
    render_tracestate,
    use_trace_context,
)
from repro.obs.runtime import RuntimeCollector
from repro.obs.slo import AlertLog, DEFAULT_SLOS, SloEngine, load_slo_specs
from repro.obs.trace import Span, get_tracer, span
from repro.serve.access import AccessLog, SlowRequestStore, new_request_id
from repro.serve.app import ServeApp

__all__ = ["ServeConfig", "UpccServer"]

_log = get_logger("repro.serve")

describe("serve.requests_total", "Requests handled, by endpoint.")
describe("serve.responses_total", "Responses sent, by HTTP status code.")
describe("serve.rejected_total",
         "Requests refused at admission (backpressure, draining) or abandoned at the deadline.")
describe("serve.request_ms", "End-to-end request latency in milliseconds, by endpoint.")
describe("serve.queue_depth", "Jobs currently waiting in the bounded work queue.")
describe("serve.slow_requests_total",
         "Requests over the --slow-ms threshold whose span tree was captured.")
describe("serve.model_cache_hits", "Model cache lookups served from memory.")
describe("serve.model_cache_misses", "Model cache lookups that had to load and parse XMI.")
describe("runtime.rss_bytes", "Resident set size of the serving process in bytes.")
describe("runtime.threads", "Live Python threads in the serving process.")
describe("runtime.open_fds", "Open file descriptors (absent where unmeasurable).")
describe("runtime.gc_collections", "Garbage collections per GC generation.")
describe("runtime.uptime_s", "Seconds since the runtime collector started.")


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one server instance (all have serving-friendly defaults)."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral; read the bound port from ``UpccServer.port``
    workers: int = 4
    queue_size: int = 64
    timeout_s: float = 30.0  #: per-request ceiling before the client gets a 504
    drain_timeout_s: float = 10.0
    max_body_bytes: int = 32 * 1024 * 1024
    access_log: str | None = None  #: JSON-lines access-log path (None = ring only)
    access_ring: int = 256  #: recent requests kept in memory for /stats
    slow_ms: float | None = None  #: capture span trees of requests slower than this
    slow_dir: str = "slow-traces"  #: where slow-request captures land
    slow_keep: int = 32  #: bounded on-disk ring size for slow captures
    runtime_interval_s: float = 5.0  #: runtime-gauge sampling period
    access_log_max_bytes: int | None = None  #: rotate the access log past this size
    access_log_keep: int = 3  #: rolled access-log generations kept after rotation
    slo_file: str | None = None  #: JSON SloSpec file (None = DEFAULT_SLOS)
    alert_log: str | None = None  #: JSONL alert-ring path (None = memory only)
    alert_keep: int = 256  #: alerts kept in the ring (memory and file)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("ServeConfig needs workers >= 1")
        if self.queue_size < 1:
            raise ValueError("ServeConfig needs queue_size >= 1")


class _Job:
    """One unit of queued work plus its completion handshake.

    The connection thread waits on ``done``; the worker publishes
    ``result`` then sets it.  ``abandon()`` (called when the wait times
    out) wins any race with ``claim()`` (called by the worker before
    executing), so a timed-out job is either never run or its result is
    discarded -- but never both executed *and* re-queued.
    """

    __slots__ = (
        "endpoint", "fn", "context", "done", "result", "_state", "_lock",
        "enqueued_at", "claimed_at", "worker",
    )

    def __init__(self, endpoint: str, fn: Callable[[], tuple[int, dict]]) -> None:
        self.endpoint = endpoint
        self.fn = fn
        # Snapshot the caller's trace context at enqueue time so the
        # worker's child spans parent under this request's serve.request.
        self.context = contextvars.copy_context()
        self.done = threading.Event()
        self.result: tuple[int, dict] | None = None
        self._state = "queued"
        self._lock = threading.Lock()
        self.enqueued_at = time.perf_counter()
        self.claimed_at: float | None = None
        self.worker: str | None = None

    @property
    def queue_wait_ms(self) -> float:
        """Milliseconds the job sat queued before a worker claimed it."""
        if self.claimed_at is None:
            return 0.0
        return (self.claimed_at - self.enqueued_at) * 1000.0

    def claim(self) -> bool:
        """Worker-side: take the job; False if the client already gave up."""
        with self._lock:
            if self._state != "queued":
                return False
            self._state = "running"
            return True

    def abandon(self) -> bool:
        """Client-side: give up on the job; False if a worker already has it."""
        with self._lock:
            if self._state != "queued":
                return False
            self._state = "abandoned"
            return True

    def finish(self, result: tuple[int, dict]) -> None:
        self.result = result
        self.done.set()


class _Handler(BaseHTTPRequestHandler):
    """Connection-thread side: routing, framing, admission control."""

    protocol_version = "HTTP/1.1"
    # Backstop so an idle keep-alive (or dead) client can't pin its
    # connection thread forever -- drain joins these threads.
    timeout = 5
    server_version = "upcc-serve"
    sys_version = ""

    @property
    def upcc(self) -> "UpccServer":
        return self.server.upcc_server  # type: ignore[attr-defined]

    # Route BaseHTTPRequestHandler's stderr chatter through the obs logger.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _log.debug("%s %s", self.address_string(), format % args)

    #: Set per request (client-provided ``X-Request-Id`` or a fresh one)
    #: and echoed on every response.
    _request_id: str = ""
    #: The caller's W3C trace context (``traceparent``/``tracestate``
    #: headers), or None for untraced requests.  Echoed on the response,
    #: stamped on the access log, the serve.request span and the latency
    #: exemplar, so one trace id follows the request everywhere.
    _trace_context: TraceContext | None = None

    def _begin_request(self) -> None:
        incoming = self.headers.get("X-Request-Id", "").strip()
        self._request_id = incoming[:64] if incoming else new_request_id()
        context = parse_traceparent(self.headers.get(TRACEPARENT_HEADER))
        if context is not None:
            state = parse_tracestate(self.headers.get(TRACESTATE_HEADER))
            if state:
                context = replace(context, tracestate=state)
        self._trace_context = context

    def _span_attributes(self, endpoint: str) -> dict[str, Any]:
        """The serve.request span's attributes, trace identity included."""
        attributes: dict[str, Any] = {"endpoint": endpoint}
        if self._trace_context is not None:
            attributes["trace_id"] = self._trace_context.trace_id
            attributes["parent_span"] = self._trace_context.parent_id
        return attributes

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._begin_request()
        url = urlsplit(self.path)
        if url.path == "/healthz":
            self._respond_inline("healthz", self.upcc.app.health(self.upcc.draining))
        elif url.path == "/stats":
            self._respond_inline("stats", self.upcc.app.stats())
        elif url.path == "/metrics":
            # Answered inline (like /healthz) so scrapes stay responsive
            # while the worker pool is saturated.  Exemplars are an
            # OpenMetrics-only feature the classic 0.0.4 parser rejects,
            # so they are served only to scrapers that Accept the
            # OpenMetrics content type.
            started = time.perf_counter()
            openmetrics = (
                "application/openmetrics-text" in self.headers.get("Accept", "")
            )
            body = get_registry().render_prometheus(openmetrics=openmetrics)
            self._count("metrics", started, status=200)
            self._access("GET", url.path, 200, started)
            self._send_text(
                200, body,
                OPENMETRICS_CONTENT_TYPE if openmetrics else PROMETHEUS_CONTENT_TYPE,
            )
        elif url.path == "/slow":
            params = {
                key: values[0] for key, values in parse_qs(url.query).items()
            }
            self._respond_inline("slow", self.upcc.slow_requests(
                trace_id=params.get("trace_id"),
                request_id=params.get("request_id"),
            ))
        elif url.path == "/alerts":
            self._respond_inline("alerts", self.upcc.alerts())
        elif url.path == "/explain":
            params = {
                key: values[0] for key, values in parse_qs(url.query).items()
            }
            self._dispatch("explain", lambda: self.upcc.app.explain(params))
        else:
            self._send(404, {"error": f"no such endpoint: GET {url.path}"})

    def do_POST(self) -> None:  # noqa: N802
        self._begin_request()
        url = urlsplit(self.path)
        if url.path == "/generate":
            endpoint, handler = "generate", self.upcc.app.generate
        elif url.path == "/validate":
            endpoint, handler = "validate", self.upcc.app.validate
        else:
            self._send(404, {"error": f"no such endpoint: POST {url.path}"})
            return
        started = time.perf_counter()
        try:
            payload = self._read_json()
        except _BadRequest as error:
            # Malformed requests are real traffic: count them by status
            # (SLO availability objectives watch these) and log them, so
            # an error burst is visible in the same trails as successes.
            self._count(endpoint, status=error.status)
            self._access(self.command, self.path, error.status, started)
            self._send(error.status, {"error": str(error)})
            return
        self._dispatch(endpoint, lambda: handler(payload))

    # -- plumbing --------------------------------------------------------------

    def _read_json(self) -> Any:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            raise _BadRequest(411, "Content-Length required") from None
        if length > self.upcc.config.max_body_bytes:
            raise _BadRequest(
                413, f"request body exceeds {self.upcc.config.max_body_bytes} bytes"
            )
        body = self.rfile.read(length)
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest(400, f"request body is not valid JSON: {error}") from None

    def _respond_inline(self, endpoint: str, result: tuple[int, dict]) -> None:
        """Answer on the connection thread (healthz/stats never queue)."""
        started = time.perf_counter()
        with use_trace_context(self._trace_context):
            with span("serve.request", **self._span_attributes(endpoint)) as request_span:
                status, payload = result
                request_span.set(status=status)
        self._count(endpoint, started, status=status)
        self._access(self.command, self.path, status, started,
                     request_span=request_span)
        self._send(status, payload)

    def _dispatch(self, endpoint: str, fn: Callable[[], tuple[int, dict]]) -> None:
        """Admit work onto the queue and wait for (or give up on) its result."""
        upcc = self.upcc
        started = time.perf_counter()
        # The trace context is entered before the job exists: _Job's
        # contextvars snapshot then carries it (with the serve.request
        # span) across the worker-thread hop.
        with use_trace_context(self._trace_context):
            with span("serve.request", **self._span_attributes(endpoint)) as request_span:
                status, payload, job = upcc.submit_job(endpoint, fn)
                request_span.set(status=status)
        self._count(endpoint, started, status=status)
        self._access(self.command, self.path, status, started,
                     request_span=request_span, job=job)
        headers = {"Retry-After": "1"} if status == 503 else None
        self._send(status, payload, headers)

    def _count(
        self,
        endpoint: str,
        started: float | None = None,
        status: int | None = None,
    ) -> None:
        counter("serve.requests_total", endpoint=endpoint).inc()
        if status is not None:
            counter("serve.responses_total", code=status).inc()
        if started is not None:
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            exemplar = None
            if self._trace_context is not None:
                exemplar = Exemplar(
                    self._trace_context.trace_id, self._request_id, elapsed_ms
                )
            histogram("serve.request_ms", endpoint=endpoint).observe(
                elapsed_ms, exemplar
            )

    def _access(
        self,
        method: str,
        path: str,
        status: int,
        started: float,
        request_span: Any = None,
        job: "_Job | None" = None,
    ) -> None:
        """Write the request's access-log record and, past the slow
        threshold, hand its span tree to the capture store."""
        duration_ms = (time.perf_counter() - started) * 1000.0
        real_span = request_span if isinstance(request_span, Span) else None
        trace_id = (
            self._trace_context.trace_id if self._trace_context is not None else ""
        )
        self.upcc.access.log(
            method=method,
            path=path,
            status=status,
            duration_ms=duration_ms,
            queue_wait_ms=job.queue_wait_ms if job is not None else 0.0,
            worker=(job.worker if job is not None and job.worker else "inline"),
            request_id=self._request_id,
            span_id=real_span.span_id if real_span is not None else None,
            trace_id=trace_id,
        )
        if real_span is not None:
            self.upcc.maybe_capture_slow(
                real_span, self._request_id, trace_id=trace_id
            )

    def _send(
        self, status: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self._send_bytes(status, body, "application/json", headers)

    def _send_text(
        self, status: int, text: str, content_type: str
    ) -> None:
        self._send_bytes(status, text.encode("utf-8"), content_type)

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._request_id:
            self.send_header("X-Request-Id", self._request_id)
        if self._trace_context is not None:
            # Echo the caller's trace identity so the client can confirm
            # the correlation took (and log the id it should query by).
            self.send_header(TRACEPARENT_HEADER, self._trace_context.to_traceparent())
            if self._trace_context.tracestate:
                self.send_header(
                    TRACESTATE_HEADER,
                    render_tracestate(self._trace_context.tracestate),
                )
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if self.upcc.draining:
            # Nudge keep-alive clients off so drain's thread joins finish.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)


class _BadRequest(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _HttpServer(ThreadingHTTPServer):
    # Non-daemon connection threads + block_on_close: server_close() joins
    # them, so drain cannot finish before every response is written.
    daemon_threads = False
    block_on_close = True
    # The default listen(5) backlog rejects bursts the bounded queue is
    # designed to absorb (as 503s); admit the burst, answer it properly.
    request_queue_size = 128
    upcc_server: "UpccServer"


class UpccServer:
    """The long-running daemon: listener + bounded queue + worker pool.

    Lifecycle: ``start()`` binds and spins everything up (``port`` resolves
    the ephemeral port); ``drain()`` performs the graceful shutdown and
    returns whether it completed cleanly within the drain timeout.  Usable
    as a context manager in tests (``with UpccServer(...) as server:``) --
    exit drains.
    """

    def __init__(self, app: ServeApp | None = None, config: ServeConfig | None = None) -> None:
        self.app = app if app is not None else ServeApp()
        self.config = config if config is not None else ServeConfig()
        self.draining = False
        self._queue: queue.Queue[_Job | None] = queue.Queue(self.config.queue_size)
        self._inflight = 0
        self._idle = threading.Condition()
        self._workers: list[threading.Thread] = []
        self._serve_thread: threading.Thread | None = None
        self._httpd: _HttpServer | None = None
        self._started = False
        self._queue_depth = gauge("serve.queue_depth")
        self._rejected_backpressure = counter("serve.rejected_total", reason="backpressure")
        self._rejected_draining = counter("serve.rejected_total", reason="draining")
        self._rejected_timeout = counter("serve.rejected_total", reason="timeout")
        self._slow_total = counter("serve.slow_requests_total")
        #: Access log: JSON-lines file when configured, always an
        #: in-memory ring that /stats serves as recent_requests.
        self.access = AccessLog(
            self.config.access_log,
            ring=self.config.access_ring,
            max_bytes=self.config.access_log_max_bytes,
            keep_rolled=self.config.access_log_keep,
        )
        self.slow_store: SlowRequestStore | None = (
            SlowRequestStore(self.config.slow_dir, keep=self.config.slow_keep)
            if self.config.slow_ms is not None
            else None
        )
        #: SLO burn-rate engine: always on (GET /alerts must answer), with
        #: objectives from --slo when given, sensible defaults otherwise.
        specs = (
            load_slo_specs(self.config.slo_file)
            if self.config.slo_file is not None
            else DEFAULT_SLOS
        )
        self.slo_engine = SloEngine(
            specs,
            alert_log=AlertLog(self.config.alert_log, keep=self.config.alert_keep),
            sample_interval_s=self.config.runtime_interval_s,
        )
        # The engine rides the runtime sampler's cadence -- one timer
        # thread serves both process gauges and SLO evaluation.
        self._runtime = RuntimeCollector(
            interval_s=self.config.runtime_interval_s,
            hooks=[self.slo_engine.tick],
        )
        self._tracer_enabled_by_us = False
        self.app.server_info = self.info
        self.app.access_recent = self.access.recent

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "UpccServer":
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        if self.slow_store is not None and not get_tracer().enabled:
            # Slow capture needs real spans; the module-level span()
            # helper degrades to a shared no-op while tracing is off.
            get_tracer().enabled = True
            self._tracer_enabled_by_us = True
        self._runtime.start()
        self._httpd = _HttpServer(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.upcc_server = self
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"upcc-serve-worker-{index}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="upcc-serve-listener",
            daemon=True,
        )
        self._serve_thread.start()
        _log.info(
            "serving on http://%s:%d (%d workers, queue %d)",
            self.host, self.port, self.config.workers, self.config.queue_size,
        )
        return self

    def __enter__(self) -> "UpccServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.drain()

    @property
    def host(self) -> str:
        assert self._httpd is not None
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral ``port=0`` after ``start``)."""
        assert self._httpd is not None
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def info(self) -> dict[str, Any]:
        """Queue/pool facts for ``/stats``."""
        return {
            "workers": self.config.workers,
            "queue_size": self.config.queue_size,
            "queue_depth": self._queue.qsize(),
            "inflight": self._inflight,
            "draining": self.draining,
        }

    def drain(self, timeout_s: float | None = None) -> bool:
        """Gracefully stop: reject new work, finish admitted work, shut down.

        Returns True when the queue emptied and all in-flight jobs finished
        within the timeout (``config.drain_timeout_s`` by default); on
        False the server is still shut down, but some queued jobs were
        discarded (their clients received 503s at admission, never
        silence).
        """
        if not self._started:
            return True
        deadline = time.monotonic() + (
            self.config.drain_timeout_s if timeout_s is None else timeout_s
        )
        self.draining = True
        clean = True
        with self._idle:
            while self._queue.qsize() > 0 or self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._idle.wait(timeout=min(remaining, 0.1)):
                    if deadline - time.monotonic() <= 0:
                        clean = False
                        break
        for _ in self._workers:
            # Sentinels wake every worker; queue.put may block briefly if
            # an unclean drain left the queue full, hence the timeout.
            try:
                self._queue.put(None, timeout=0.5)
            except queue.Full:
                clean = False
        for worker in self._workers:
            worker.join(timeout=max(0.1, deadline - time.monotonic() + 1.0))
            if worker.is_alive():
                clean = False
        assert self._httpd is not None
        # Empty the TCP accept backlog before closing the listener: a
        # client whose connect() already succeeded must get a real
        # response (a 503 from admission), not a reset.  While the
        # listening socket polls readable there are pending connections;
        # serve_forever is still running and accepts them.
        while time.monotonic() < deadline + 1.0:
            try:
                pending, _, _ = select.select([self._httpd.socket], [], [], 0.05)
            except (OSError, ValueError):  # listener already closed
                break
            if not pending:
                break
            time.sleep(0.02)
        self._httpd.shutdown()
        self._httpd.server_close()  # joins connection threads: responses flushed
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        self._runtime.stop()
        if self._tracer_enabled_by_us:
            get_tracer().enabled = False
            self._tracer_enabled_by_us = False
        _log.info("drained %s", "cleanly" if clean else "with leftovers")
        return clean

    # -- observability ---------------------------------------------------------

    def slow_requests(
        self,
        trace_id: str | None = None,
        request_id: str | None = None,
    ) -> tuple[int, dict]:
        """``GET /slow``: the slow-capture index (404 when capture is off).

        ``trace_id``/``request_id`` narrow the capture list, so an
        exemplar scraped off ``/metrics`` resolves straight to its
        captured span tree.  The response also carries the current
        latency-bucket exemplars for the reverse lookup.
        """
        if self.slow_store is None:
            return 404, {
                "error": "slow-request capture is disabled; start with --slow-ms"
            }
        captures = self.slow_store.list()
        if trace_id:
            captures = [c for c in captures if c.get("trace_id") == trace_id]
        if request_id:
            captures = [c for c in captures if c.get("request_id") == request_id]
        return 200, {
            "slow_ms": self.config.slow_ms,
            "dir": str(self.slow_store.directory),
            "keep": self.slow_store.keep,
            "captures": captures,
            "exemplars": self.latency_exemplars(),
        }

    def latency_exemplars(self) -> list[dict[str, Any]]:
        """Current ``serve.request_ms`` bucket exemplars, JSON-ready."""
        entries: list[dict[str, Any]] = []
        _, _, histograms = get_registry().instruments()
        for instrument in histograms:
            if instrument.base_name != "serve.request_ms":
                continue
            for bound, exemplar in instrument.bucket_exemplars():
                if exemplar is None:
                    continue
                entry = exemplar.to_dict()
                entry["le"] = "+Inf" if bound == float("inf") else bound
                entry["endpoint"] = str(instrument.labels.get("endpoint", ""))
                entries.append(entry)
        return entries

    def alerts(self) -> tuple[int, dict]:
        """``GET /alerts``: SLO specs, live statuses, recent transitions."""
        return 200, self.slo_engine.to_dict()

    def maybe_capture_slow(
        self, request_span: Span, request_id: str, trace_id: str = ""
    ) -> None:
        """Capture ``request_span``'s tree when it crossed the threshold."""
        if self.slow_store is None or self.config.slow_ms is None:
            return
        if request_span.duration_ms < self.config.slow_ms:
            return
        self._slow_total.inc()
        try:
            self.slow_store.capture(
                request_span,
                request_id=request_id,
                endpoint=str(request_span.attributes.get("endpoint", "")),
                threshold_ms=self.config.slow_ms,
                trace_id=trace_id,
            )
        except OSError as error:
            _log.warning("slow-request capture failed: %s", error)

    # -- work admission --------------------------------------------------------

    def submit(self, endpoint: str, fn: Callable[[], tuple[int, dict]]) -> tuple[int, dict]:
        """Queue one unit of work and wait for its result (connection thread)."""
        status, payload, _job = self.submit_job(endpoint, fn)
        return status, payload

    def submit_job(
        self, endpoint: str, fn: Callable[[], tuple[int, dict]]
    ) -> tuple[int, dict, _Job | None]:
        """Like :meth:`submit`, also returning the job (for access-log
        queue-wait/worker attribution); the job is None when admission
        rejected the request before a job existed."""
        if self.draining:
            self._rejected_draining.inc()
            return 503, {"error": "server is draining"}, None
        job = _Job(endpoint, fn)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            self._rejected_backpressure.inc()
            return 503, {"error": "request queue is full, retry later"}, None
        self._queue_depth.set(self._queue.qsize())
        if job.done.wait(timeout=self.config.timeout_s):
            assert job.result is not None
            return job.result[0], job.result[1], job
        if job.abandon():
            # Never claimed: it will be skipped when a worker dequeues it.
            with self._idle:
                self._idle.notify_all()
            self._rejected_timeout.inc()
            return 504, {"error": f"request timed out after {self.config.timeout_s}s"}, job
        # A worker claimed it while we were giving up; the result is
        # imminent -- grant a short grace so the work isn't wasted.
        if job.done.wait(timeout=1.0):
            assert job.result is not None
            return job.result[0], job.result[1], job
        self._rejected_timeout.inc()
        return 504, {"error": f"request timed out after {self.config.timeout_s}s"}, job

    # -- worker side -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            self._queue_depth.set(self._queue.qsize())
            if job is None:
                return
            if not job.claim():  # client gave up while the job was queued
                self._job_done()
                continue
            job.claimed_at = time.perf_counter()
            job.worker = threading.current_thread().name
            with self._idle:
                self._inflight += 1
            try:
                # Run inside the connection thread's context snapshot so
                # pipeline spans parent under its serve.request span.
                result = job.context.run(self._execute, job)
            finally:
                with self._idle:
                    self._inflight -= 1
                self._job_done()
            job.finish(result)

    def _execute(self, job: _Job) -> tuple[int, dict]:
        try:
            return job.fn()
        except Exception as error:  # noqa: BLE001 -- a worker must survive anything
            _log.exception("unhandled error serving /%s", job.endpoint)
            return 500, {"error": f"internal error: {error.__class__.__name__}: {error}"}

    def _job_done(self) -> None:
        self._queue.task_done()
        with self._idle:
            self._idle.notify_all()
