"""Endpoint logic of the ``upcc serve`` daemon, free of HTTP plumbing.

:class:`ServeApp` owns the long-lived state a serving process accumulates:

* the process-wide warm :class:`~repro.xsdgen.cache.GenerationCache`
  (repeat ``/generate`` requests for an unchanged model hit the ~12x
  warm path PR 2 built),
* the process-wide :class:`~repro.xsd.compiled.CompilationCache`
  (``/validate`` requests against a known schema set reuse its compiled
  plans instead of re-resolving the schema graph),
* an LRU of parsed models keyed by the XMI text's content hash (repeat
  requests skip the XMI parse entirely), and
* a registry of generated schema sets keyed by
  :func:`~repro.xsd.compiled.fingerprint_schema_set`, so ``/validate``
  and ``/explain`` can reference a prior ``/generate`` by id instead of
  re-shipping schema documents on every request.

Every handler takes plain dicts and returns ``(http status, payload)``;
the HTTP layer (:mod:`repro.serve.server`) does framing, queueing and
backpressure.  Handlers never raise for bad input -- defects become 4xx
payloads -- so one malformed request can never take a worker down.

The ``/generate`` and ``/validate`` payloads are byte-compatible with the
CLI paths: schema texts are exactly what ``upcc generate --out`` writes,
and the validate report is exactly ``upcc validate-instances --report
json`` (asserted in ``tests/test_serve.py``).
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from pathlib import Path
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.ccts.model import CctsModel
from repro.errors import ReproError
from repro.instances.pipeline import ValidationPipeline
from repro.obs.logging_bridge import get_logger
from repro.obs.metrics import counter, get_registry
from repro.xmi import read_xmi
from repro.xsd.compiled import fingerprint_schema_set
from repro.xsd.parser import parse_schema
from repro.xsd.validator import SchemaSet
from repro.xsdgen import GenerationOptions, SchemaGenerator
from repro.xsdgen.provenance import ProvenanceIndex

_log = get_logger("repro.serve")

#: Pipeline engines a /validate request may select.
_ENGINES = ("compiled", "interpreted")


@dataclass
class SchemaSetEntry:
    """One registered schema set: validator-ready plus its provenance."""

    id: str
    schema_set: SchemaSet
    schemas: dict[str, str] = field(default_factory=dict)
    provenance: ProvenanceIndex | None = None
    library: str | None = None
    root: str | None = None
    created_at: float = field(default_factory=time.time)


class ServeApp:
    """The daemon's shared request-handling state and endpoint logic.

    Thread-safe: handlers run on the server's worker pool, so every
    mutable structure is guarded.  The expensive state (generation cache,
    compilation cache) is the *process-wide* instances -- a CLI run in the
    same process, or a second ``ServeApp``, shares the same warm paths.
    """

    def __init__(
        self,
        *,
        max_models: int = 32,
        max_schema_sets: int = 256,
        cache_dir: str | None = None,
    ) -> None:
        self.started_at = time.time()
        self.cache_dir = cache_dir
        self._lock = threading.Lock()
        self._models: OrderedDict[str, CctsModel] = OrderedDict()
        self._max_models = max_models
        self._schema_sets: OrderedDict[str, SchemaSetEntry] = OrderedDict()
        self._max_schema_sets = max_schema_sets
        self._model_hits = counter("serve.model_cache_hits")
        self._model_misses = counter("serve.model_cache_misses")
        #: Filled in by the HTTP layer so /stats can report queue facts.
        self.server_info: Callable[[], dict[str, Any]] | None = None
        #: Filled in by the HTTP layer: the access-log ring of recent
        #: requests, surfaced under ``recent_requests`` in /stats.
        self.access_recent: Callable[[], list[dict[str, Any]]] | None = None

    # -- shared state ----------------------------------------------------------

    def model_for(self, xmi_text: str) -> CctsModel:
        """The parsed model for ``xmi_text``, via the content-keyed LRU."""
        key = hashlib.sha256(xmi_text.encode("utf-8")).hexdigest()
        with self._lock:
            model = self._models.get(key)
            if model is not None:
                self._models.move_to_end(key)
                self._model_hits.inc()
                return model
        self._model_misses.inc()
        model = CctsModel(model=read_xmi(xmi_text))
        with self._lock:
            self._models[key] = model
            self._models.move_to_end(key)
            while len(self._models) > self._max_models:
                self._models.popitem(last=False)
        return model

    def register_schema_set(self, entry: SchemaSetEntry) -> None:
        """Insert (or refresh) a schema-set registry entry."""
        with self._lock:
            self._schema_sets[entry.id] = entry
            self._schema_sets.move_to_end(entry.id)
            while len(self._schema_sets) > self._max_schema_sets:
                self._schema_sets.popitem(last=False)

    def schema_set_entry(self, set_id: str) -> SchemaSetEntry | None:
        """The registered entry for ``set_id``, or None."""
        with self._lock:
            entry = self._schema_sets.get(set_id)
            if entry is not None:
                self._schema_sets.move_to_end(set_id)
            return entry

    def schema_set_ids(self) -> list[str]:
        with self._lock:
            return list(self._schema_sets)

    # -- endpoints -------------------------------------------------------------

    def generate(self, payload: Any) -> tuple[int, dict]:
        """``POST /generate``: XMI text in, schema bundle + registry id out."""
        if not isinstance(payload, dict):
            return 400, {"error": "request body must be a JSON object"}
        xmi_text = payload.get("xmi")
        library = payload.get("library")
        if not isinstance(xmi_text, str) or not xmi_text:
            return 400, {"error": "missing required string field 'xmi'"}
        if not isinstance(library, str) or not library:
            return 400, {"error": "missing required string field 'library'"}
        root = payload.get("root")
        if root is not None and not isinstance(root, str):
            return 400, {"error": "'root' must be a string"}
        raw_options = payload.get("options") or {}
        if not isinstance(raw_options, dict):
            return 400, {"error": "'options' must be an object"}
        options = GenerationOptions(
            annotated=bool(raw_options.get("annotated", False)),
            shared_aggregation_as_ref=bool(
                raw_options.get("shared_aggregation_as_ref", True)
            ),
            validate_first=bool(raw_options.get("validate", True)),
            use_cache=True,
            cache_dir=Path(self.cache_dir) if self.cache_dir else None,
        )
        try:
            model = self.model_for(xmi_text)
            result = SchemaGenerator(model, options).generate(library, root=root)
        except ReproError as error:
            return 400, {"error": str(error)}
        schema_set = result.schema_set()
        set_id = fingerprint_schema_set(schema_set)
        schemas = {
            f"{generated.namespace.folder}/{generated.namespace.file_name}":
                generated.to_string()
            for generated in result.schemas.values()
        }
        self.register_schema_set(
            SchemaSetEntry(
                id=set_id,
                schema_set=schema_set,
                schemas=schemas,
                provenance=result.provenance,
                library=library,
                root=root,
            )
        )
        _log.info(
            "generated %d schema(s) for %r (schema set %s)",
            len(schemas), library, set_id[:12],
        )
        return 200, {
            "schema_set": set_id,
            "library": library,
            "root": root,
            "schemas": schemas,
        }

    def validate(self, payload: Any) -> tuple[int, dict]:
        """``POST /validate``: schema-set ref (or inline schemas) + docs in,
        the ``upcc validate-instances --report json`` report out."""
        if not isinstance(payload, dict):
            return 400, {"error": "request body must be a JSON object"}
        documents = payload.get("documents")
        if not isinstance(documents, list) or not documents:
            return 400, {"error": "missing required non-empty list field 'documents'"}
        named: list[tuple[str, str]] = []
        for index, document in enumerate(documents):
            if isinstance(document, str):
                named.append((f"doc{index}", document))
            elif (
                isinstance(document, dict)
                and isinstance(document.get("xml"), str)
            ):
                named.append((str(document.get("name", f"doc{index}")), document["xml"]))
            else:
                return 400, {
                    "error": "each document must be an XML string or "
                    "{'name': ..., 'xml': ...}"
                }
        engine = payload.get("engine", "compiled")
        if engine not in _ENGINES:
            return 400, {"error": f"unknown engine {engine!r}; expected one of {_ENGINES}"}
        status, entry = self._resolve_schema_set(payload)
        if entry is None:
            return status  # type: ignore[return-value]  # (status, payload) tuple
        try:
            pipeline = ValidationPipeline(
                entry.schema_set,
                engine=engine,
                fail_fast=bool(payload.get("fail_fast", False)),
            )
            report = pipeline.run_strings(named)
        except ReproError as error:
            return 400, {"error": str(error)}
        payload_out = report.to_json()
        payload_out["schema_set"] = entry.id
        return 200, payload_out

    def _resolve_schema_set(self, payload: dict):
        """The registry entry a /validate request addresses.

        Returns ``((status, error payload), None)`` on failure, or
        ``(0, entry)`` on success.  Inline schema documents are parsed,
        fingerprinted and registered, so a second request with the same
        schemas -- or a ``schema_set`` ref -- takes the warm path.
        """
        set_id = payload.get("schema_set")
        inline = payload.get("schemas")
        if set_id is not None:
            if not isinstance(set_id, str):
                return (400, {"error": "'schema_set' must be a string id"}), None
            entry = self.schema_set_entry(set_id)
            if entry is None:
                return (
                    404,
                    {"error": f"unknown schema set {set_id!r}; POST /generate first"},
                ), None
            return 0, entry
        if not isinstance(inline, list) or not inline or not all(
            isinstance(text, str) for text in inline
        ):
            return (
                400,
                {"error": "provide 'schema_set' (id) or 'schemas' (list of XSD texts)"},
            ), None
        try:
            schema_set = SchemaSet([parse_schema(text) for text in inline])
        except (ReproError, ValueError) as error:
            return (400, {"error": f"unparsable schema document: {error}"}), None
        fingerprint = fingerprint_schema_set(schema_set)
        entry = self.schema_set_entry(fingerprint)
        if entry is None:
            entry = SchemaSetEntry(id=fingerprint, schema_set=schema_set)
            self.register_schema_set(entry)
        return 0, entry

    def explain(self, params: dict[str, str]) -> tuple[int, dict]:
        """``GET /explain``: provenance lookup against a generated set."""
        set_id = params.get("schema_set")
        if not set_id:
            return 400, {"error": "missing required query parameter 'schema_set'"}
        target = params.get("target")
        source = params.get("source")
        if not target and not source:
            return 400, {"error": "provide 'target' and/or 'source'"}
        entry = self.schema_set_entry(set_id)
        if entry is None:
            return 404, {"error": f"unknown schema set {set_id!r}; POST /generate first"}
        if entry.provenance is None:
            return 404, {
                "error": "schema set was registered without provenance "
                "(inline /validate schemas carry none)"
            }
        records = []
        if target:
            records.extend(entry.provenance.by_target(target))
        if source:
            records.extend(entry.provenance.by_source(source))
        return 200, {
            "schema_set": set_id,
            "matched": len(records),
            "records": [
                {**record.to_dict(), "describe": record.describe(), "rule_text": record.rule_text}
                for record in records
            ],
        }

    def stats(self) -> tuple[int, dict]:
        """``GET /stats``: server, cache and metrics snapshot."""
        from repro.xsd.compiled import get_compilation_cache
        from repro.xsdgen.cache import get_generation_cache

        payload: dict[str, Any] = {
            "uptime_s": round(time.time() - self.started_at, 3),
            "schema_sets": self.schema_set_ids(),
            "caches": {
                "generation_entries": len(get_generation_cache()),
                "compilation_entries": len(get_compilation_cache()),
                "models": len(self._models),
            },
            "metrics": get_registry().snapshot(),
        }
        if self.server_info is not None:
            payload["server"] = self.server_info()
        if self.access_recent is not None:
            payload["recent_requests"] = self.access_recent()
        return 200, payload

    def health(self, draining: bool) -> tuple[int, dict]:
        """``GET /healthz``: 200 while serving, 503 once draining."""
        if draining:
            return 503, {"status": "draining"}
        return 200, {"status": "ok"}
