"""``upcc top``: a curses-free terminal dashboard for a running daemon.

Polls ``GET /stats`` and ``GET /metrics`` on an interval and redraws one
screenful in place (plain ANSI clear-and-home, no :mod:`curses`), showing
the numbers an operator watches during a load event:

* throughput -- requests/s over the last poll interval (delta of
  ``serve.requests_total`` between frames) and cumulative totals,
* tails -- p50/p90/p99 of ``serve.request_ms`` estimated from the scraped
  cumulative bucket series (:func:`repro.obs.export.quantile_from_buckets`),
* saturation -- queue depth vs capacity, in-flight jobs, rejects,
* caches -- model/generation/compilation entries and model hit rate,
* runtime -- RSS, thread count, open fds, GC collections, uptime,
* SLOs -- per-objective burn rates and alert state from ``GET /alerts``
  (omitted gracefully against daemons without the endpoint),
* the tail of the access-log ring (method, path, status, latency).

``--once`` renders a single frame without clearing the screen (useful in
scripts and asserted by the test suite); ``--json`` dumps the raw
snapshot instead of the board.  In loop mode a poll failure does not kill
the board: the loop reconnects with exponential backoff (a restarting
daemon comes back into view by itself) and only gives up after
``--max-poll-failures`` consecutive misses.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

from repro.obs.export import parse_prometheus_text, quantile_from_buckets
from repro.serve.loadgen import request_json, request_text

__all__ = ["fetch_snapshot", "render_board", "main"]

#: ANSI: clear screen, cursor home (the whole "UI framework").
_CLEAR = "\x1b[2J\x1b[H"


def fetch_snapshot(url: str, *, timeout_s: float = 10.0) -> dict[str, Any]:
    """One combined /stats + /metrics poll, reduced to board facts."""
    status, stats = request_json(url, "/stats", timeout_s=timeout_s)
    if status != 200:
        raise RuntimeError(f"GET /stats returned {status}")
    metrics_status, text = request_text(url, "/metrics", timeout_s=timeout_s)
    if metrics_status != 200:
        raise RuntimeError(f"GET /metrics returned {metrics_status}")
    families = parse_prometheus_text(text)

    def family_total(name: str) -> float:
        family = families.get(name)
        return sum(family.values()) if family is not None else 0.0

    def gauge_value(name: str) -> float:
        family = families.get(name)
        values = family.values() if family is not None else []
        return values[-1] if values else 0.0

    latency = families.get("serve_request_ms")
    buckets = latency.buckets() if latency is not None else []
    quantiles = {
        f"p{q:g}": round(quantile_from_buckets(buckets, q), 3)
        for q in (50.0, 90.0, 99.0)
    } if buckets and buckets[-1][1] > 0 else {"p50": 0.0, "p90": 0.0, "p99": 0.0}

    # SLO burn rates ride along when the daemon serves /alerts; older
    # daemons (or a race during restart) simply leave the panel empty.
    slo: dict[str, Any] = {"statuses": [], "alerts": []}
    try:
        alerts_status, alerts_payload = request_json(
            url, "/alerts", timeout_s=timeout_s
        )
        if alerts_status == 200 and isinstance(alerts_payload, dict):
            slo = {
                "statuses": alerts_payload.get("statuses", []),
                "alerts": alerts_payload.get("alerts", [])[-4:],
            }
    except (OSError, ValueError):
        pass

    server = stats.get("server", {})
    caches = stats.get("caches", {})
    hits = family_total("serve_model_cache_hits_total")
    misses = family_total("serve_model_cache_misses_total")
    lookups = hits + misses
    return {
        "polled_at": time.monotonic(),
        "uptime_s": stats.get("uptime_s", 0.0),
        "requests_total": family_total("serve_requests_total"),
        "rejected_total": family_total("serve_rejected_total"),
        "slow_total": family_total("serve_slow_requests_total"),
        "latency_ms": quantiles,
        "queue_depth": server.get("queue_depth", 0),
        "queue_size": server.get("queue_size", 0),
        "inflight": server.get("inflight", 0),
        "workers": server.get("workers", 0),
        "draining": server.get("draining", False),
        "caches": {
            "models": caches.get("models", 0),
            "generation": caches.get("generation_entries", 0),
            "compilation": caches.get("compilation_entries", 0),
            "model_hit_rate": round(hits / lookups, 3) if lookups else 0.0,
        },
        "runtime": {
            "rss_bytes": int(gauge_value("runtime_rss_bytes")),
            "threads": int(gauge_value("runtime_threads")),
            "open_fds": int(gauge_value("runtime_open_fds")),
            "gc_collections": int(family_total("runtime_gc_collections")),
        },
        "slo": slo,
        "recent_requests": stats.get("recent_requests", [])[-8:],
    }


def _fmt_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{value:.1f}GiB"  # pragma: no cover - loop always returns


def render_board(
    snapshot: dict[str, Any],
    previous: dict[str, Any] | None = None,
    *,
    url: str = "",
) -> str:
    """One dashboard frame as plain text (no ANSI; the loop adds that)."""
    if previous is not None:
        dt = snapshot["polled_at"] - previous["polled_at"]
        dreq = snapshot["requests_total"] - previous["requests_total"]
        rps = dreq / dt if dt > 0 else 0.0
        rps_label = f"{rps:8.1f} req/s (last {dt:.1f}s)"
    else:
        uptime = snapshot["uptime_s"] or 1.0
        rps_label = f"{snapshot['requests_total'] / uptime:8.1f} req/s (lifetime)"
    latency = snapshot["latency_ms"]
    caches = snapshot["caches"]
    runtime = snapshot["runtime"]
    state = "DRAINING" if snapshot["draining"] else "serving"
    lines = [
        f"upcc top -- {url}  [{state}]  uptime {snapshot['uptime_s']:.0f}s",
        "",
        f"  throughput  {rps_label}   total={int(snapshot['requests_total'])} "
        f"rejected={int(snapshot['rejected_total'])} slow={int(snapshot['slow_total'])}",
        f"  latency ms  p50={latency['p50']:<9g} p90={latency['p90']:<9g} "
        f"p99={latency['p99']:<9g}",
        f"  saturation  queue {snapshot['queue_depth']}/{snapshot['queue_size']}   "
        f"inflight {snapshot['inflight']}/{snapshot['workers']} workers",
        f"  caches      models={caches['models']} generation={caches['generation']} "
        f"compilation={caches['compilation']} model_hit_rate={caches['model_hit_rate']:.1%}",
        f"  runtime     rss={_fmt_bytes(runtime['rss_bytes'])} "
        f"threads={runtime['threads']} fds={runtime['open_fds']} "
        f"gc={runtime['gc_collections']}",
    ]
    statuses = snapshot.get("slo", {}).get("statuses", [])
    for index, status in enumerate(statuses):
        label = "slo        " if index == 0 else "           "
        state = status.get("state", "?")
        marker = state.upper() if state == "firing" else state
        lines.append(
            f"  {label} {status.get('name', '?'):<18} [{marker}] "
            f"burn fast={status.get('burn_fast', 0.0):g} "
            f"slow={status.get('burn_slow', 0.0):g} "
            f"budget={status.get('budget_remaining', 0.0):.1%}"
        )
    alerts = snapshot.get("slo", {}).get("alerts", [])
    if alerts:
        lines.append("  alerts:")
        for alert in alerts:
            lines.append(
                f"    {alert.get('state', '?'):<8} {alert.get('slo', '?'):<18} "
                f"{alert.get('message', '')}"
            )
    lines += [
        "",
        "  recent requests:",
    ]
    recent = snapshot["recent_requests"]
    if recent:
        for record in recent:
            lines.append(
                f"    {record.get('method', '?'):>4} {record.get('path', '?'):<12} "
                f"{record.get('status', 0):>3}  {record.get('duration_ms', 0.0):>9.2f}ms  "
                f"wait {record.get('queue_wait_ms', 0.0):>7.2f}ms  "
                f"{record.get('worker', '')}  {record.get('request_id', '')}"
            )
    else:
        lines.append("    (none yet)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI loop: poll, render, clear, repeat (or one frame with ``--once``)."""
    parser = argparse.ArgumentParser(
        prog="upcc top",
        description="live terminal dashboard for a running upcc serve daemon",
    )
    parser.add_argument("--url", required=True, help="server base URL, e.g. http://127.0.0.1:8437")
    parser.add_argument("--interval", type=float, default=2.0, help="poll period in seconds (default 2)")
    parser.add_argument("--once", action="store_true", help="render a single frame and exit")
    parser.add_argument("--count", type=int, default=0, help="stop after N frames (0 = until interrupted)")
    parser.add_argument("--json", action="store_true", help="emit the raw snapshot as JSON instead of the board")
    parser.add_argument(
        "--max-poll-failures", type=int, default=10,
        help="consecutive poll failures before giving up in loop mode "
             "(default 10; --once always fails on the first)",
    )
    args = parser.parse_args(argv)

    previous: dict[str, Any] | None = None
    frames = 0
    failures = 0
    try:
        while True:
            try:
                snapshot = fetch_snapshot(args.url, timeout_s=max(1.0, args.interval * 2))
            except (OSError, RuntimeError, ValueError) as error:
                failures += 1
                # --once is a probe: report and exit.  The live board
                # instead backs off and reconnects -- a daemon restart
                # should not kill the operator's screen.
                if args.once or failures >= max(1, args.max_poll_failures):
                    print(f"error: cannot poll {args.url}: {error}", file=sys.stderr)
                    return 1
                backoff = min(30.0, max(0.1, args.interval) * (2 ** (failures - 1)))
                print(
                    f"poll failed ({error}); retrying in {backoff:.1f}s "
                    f"[{failures}/{args.max_poll_failures}]",
                    file=sys.stderr,
                )
                time.sleep(backoff)
                continue
            failures = 0
            if args.json:
                print(json.dumps(snapshot, indent=2, sort_keys=True))
            else:
                frame = render_board(snapshot, previous, url=args.url)
                if args.once:
                    print(frame)
                else:
                    print(f"{_CLEAR}{frame}", flush=True)
            frames += 1
            previous = snapshot
            if args.once or (args.count and frames >= args.count):
                return 0
            time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        print()
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
