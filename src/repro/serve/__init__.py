"""Long-running ``upcc serve`` daemon: warm-cache HTTP schema services.

The paper's pipeline -- model in, schemas out, instances validated -- is
batch-shaped, but the workload it describes (partners continuously
exchanging business documents) is a *service*.  This package turns the
pipeline into one process that stays warm:

* :class:`~repro.serve.app.ServeApp` -- endpoint logic sharing the
  process-wide generation and compilation caches plus a parsed-model LRU
  and a fingerprint-keyed schema-set registry,
* :class:`~repro.serve.server.UpccServer` /
  :class:`~repro.serve.server.ServeConfig` -- the stdlib HTTP daemon:
  bounded worker pool, 503 backpressure, per-request timeouts, graceful
  drain with zero dropped responses,
* :mod:`repro.serve.loadgen` -- the stdlib load generator driving the
  throughput benchmark and the CI smoke test.

Endpoints: ``POST /generate``, ``POST /validate``, ``GET /explain``,
``GET /stats``, ``GET /healthz``.  See the README's "Running as a
service" section for the wire formats.
"""

from repro.serve.app import SchemaSetEntry, ServeApp
from repro.serve.server import ServeConfig, UpccServer

__all__ = [
    "SchemaSetEntry",
    "ServeApp",
    "ServeConfig",
    "UpccServer",
]
