"""Long-running ``upcc serve`` daemon: warm-cache HTTP schema services.

The paper's pipeline -- model in, schemas out, instances validated -- is
batch-shaped, but the workload it describes (partners continuously
exchanging business documents) is a *service*.  This package turns the
pipeline into one process that stays warm:

* :class:`~repro.serve.app.ServeApp` -- endpoint logic sharing the
  process-wide generation and compilation caches plus a parsed-model LRU
  and a fingerprint-keyed schema-set registry,
* :class:`~repro.serve.server.UpccServer` /
  :class:`~repro.serve.server.ServeConfig` -- the stdlib HTTP daemon:
  bounded worker pool, 503 backpressure, per-request timeouts, graceful
  drain with zero dropped responses,
* :mod:`repro.serve.access` -- structured JSON-lines request logging
  (request ids, queue-wait attribution) and the bounded slow-request
  span-capture store,
* :mod:`repro.serve.loadgen` -- the stdlib load generator driving the
  throughput benchmark and the CI smoke test,
* :mod:`repro.serve.top` -- the ``upcc top`` terminal dashboard polling
  ``/stats`` + ``/metrics``.

Endpoints: ``POST /generate``, ``POST /validate``, ``GET /explain``,
``GET /stats``, ``GET /healthz``, ``GET /metrics`` (Prometheus text
exposition), ``GET /slow`` (slow-request captures).  See the README's
"Running as a service" section for the wire formats.
"""

from repro.serve.access import AccessLog, SlowRequestStore, new_request_id
from repro.serve.app import SchemaSetEntry, ServeApp
from repro.serve.server import ServeConfig, UpccServer

__all__ = [
    "AccessLog",
    "SchemaSetEntry",
    "ServeApp",
    "ServeConfig",
    "SlowRequestStore",
    "UpccServer",
    "new_request_id",
]
