"""Stdlib load generator for the ``upcc serve`` daemon.

Drives concurrent request streams against a running server and reports
throughput (req/s) and tail latency (p50/p95/p99).  Doubles as:

* the CI smoke driver -- ``python -m repro.serve.loadgen --url URL
  --requests 50 --concurrency 8`` boots its own easybiz workload (one
  ``/generate``, then a barrage of ``/validate``) against an already
  running server and exits non-zero on any dropped response, and
* the measurement core of ``benchmarks/bench_serve_throughput.py`` and
  the ``serve_validate`` arm of ``tools/bench_report.py`` (via
  :func:`run_load`).

Each worker thread holds one keep-alive :class:`http.client.HTTPConnection`
and replays the request loop; ``503`` (backpressure) responses are retried
with a short linear backoff and counted separately -- a load test that
outruns the queue is *supposed* to see 503s, and the report distinguishes
"shed and retried" from "failed".

Every logical request originates a W3C ``traceparent`` header (a fresh
trace id, the same one across 503 retries), so a load run is observable
end to end: the ids land in the server's access log, slow captures, and
latency exemplars, and :class:`LoadResult.trace_ids` records what was
sent for round-trip assertions.  ``--error-rate`` injects malformed
request bodies at a deterministic cadence -- the resulting 400s exercise
SLO burn-rate alerting without needing a broken server.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import threading
import time
from dataclasses import dataclass, field
from urllib.parse import urlsplit

from repro.obs.propagation import TRACEPARENT_HEADER, TraceContext

__all__ = [
    "LoadResult",
    "request_json",
    "request_text",
    "run_load",
    "scrape_server_quantiles",
    "main",
]


@dataclass
class LoadResult:
    """Aggregate outcome of one load run."""

    requests: int  #: responses received (any status)
    ok: int  #: 2xx responses
    retried_503: int  #: backpressure shed-and-retry events
    failed: int  #: non-2xx final outcomes (incl. exhausted retries)
    dropped: int  #: requests that got *no* response (connection died)
    elapsed_s: float
    latencies_ms: list[float] = field(default_factory=list)
    injected_errors: int = 0  #: deliberately malformed requests sent
    trace_ids: list[str] = field(default_factory=list)  #: originated trace ids

    @property
    def rps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def percentile(self, q: float) -> float:
        """The q-th latency percentile in ms (q in 0..100); 0 when empty."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
        return ordered[index]

    def to_json(self) -> dict:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "retried_503": self.retried_503,
            "failed": self.failed,
            "dropped": self.dropped,
            "elapsed_s": round(self.elapsed_s, 4),
            "rps": round(self.rps, 1),
            "p50_ms": round(self.percentile(50), 3),
            "p95_ms": round(self.percentile(95), 3),
            "p99_ms": round(self.percentile(99), 3),
            "injected_errors": self.injected_errors,
            "trace_ids_sampled": self.trace_ids[:5],
        }


def request_json(
    url: str,
    path: str,
    payload: dict | None = None,
    *,
    method: str | None = None,
    timeout_s: float = 60.0,
) -> tuple[int, dict]:
    """One JSON request on a fresh connection; ``(status, parsed body)``."""
    parts = urlsplit(url)
    connection = http.client.HTTPConnection(
        parts.hostname, parts.port, timeout=timeout_s
    )
    try:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        connection.request(
            method or ("POST" if payload is not None else "GET"),
            path,
            body=body,
            headers={"Content-Type": "application/json"} if body else {},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def request_text(
    url: str, path: str, *, timeout_s: float = 30.0
) -> tuple[int, str]:
    """One GET on a fresh connection; ``(status, body text)``."""
    parts = urlsplit(url)
    connection = http.client.HTTPConnection(
        parts.hostname, parts.port, timeout=timeout_s
    )
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        connection.close()


def scrape_server_quantiles(
    url: str,
    *,
    metric: str = "serve_request_ms",
    labels: dict[str, str] | None = None,
    quantiles: tuple[float, ...] = (50.0, 95.0, 99.0),
    timeout_s: float = 30.0,
) -> dict[str, float] | None:
    """Server-side latency quantiles scraped from ``GET /metrics``.

    Parses the Prometheus exposition and estimates quantiles from the
    cumulative bucket series, so the numbers are the *server's* view of
    latency (no client/network time) -- the counterpart to
    :meth:`LoadResult.percentile`.  ``labels`` restricts to one series
    (e.g. ``{"endpoint": "validate"}``); by default bucket counts are
    summed across all series of the family.  None when the endpoint or
    metric is unavailable.
    """
    from repro.obs.export import parse_prometheus_text, quantile_from_buckets

    try:
        status, text = request_text(url, "/metrics", timeout_s=timeout_s)
    except (OSError, http.client.HTTPException):
        return None
    if status != 200:
        return None
    try:
        families = parse_prometheus_text(text)
    except ValueError:
        return None
    family = families.get(metric)
    if family is None or family.type != "histogram":
        return None
    buckets = family.buckets(labels)
    if not buckets or buckets[-1][1] <= 0:
        return None
    return {
        f"p{format(q, 'g')}": round(quantile_from_buckets(buckets, q), 3)
        for q in quantiles
    }


def run_load(
    url: str,
    path: str,
    payload: dict,
    *,
    requests: int,
    concurrency: int,
    timeout_s: float = 60.0,
    max_retries: int = 50,
    trace: bool = True,
    error_rate: float = 0.0,
) -> LoadResult:
    """Fire ``requests`` POSTs at ``url``+``path`` from ``concurrency`` threads.

    Every worker reuses one keep-alive connection; 503 responses back off
    (5 ms * attempt) and retry up to ``max_retries`` times.  The payload is
    serialized once -- the wire bytes are identical across requests, so
    the server's warm paths are exercised, not JSON encoding.

    With ``trace`` (the default) every logical request carries a freshly
    originated ``traceparent``; 503 retries reuse the same trace id, so
    one trace follows one logical request through the shed-and-retry
    dance.  ``error_rate`` in ``(0, 1]`` replaces the body of every
    ``round(1/error_rate)``-th request with malformed JSON -- a
    deterministic 400 stream for exercising SLO alerting.
    """
    parts = urlsplit(url)
    body = json.dumps(payload).encode("utf-8")
    error_body = b'{"malformed'
    inject_every = round(1.0 / error_rate) if error_rate > 0 else 0
    lock = threading.Lock()
    counters = {
        "ok": 0, "retried": 0, "failed": 0, "dropped": 0, "responses": 0,
        "injected": 0,
    }
    latencies: list[float] = []
    trace_ids: list[str] = []
    remaining = iter(range(requests))

    def next_request() -> int | None:
        with lock:
            return next(remaining, None)

    def worker() -> None:
        connection = http.client.HTTPConnection(
            parts.hostname, parts.port, timeout=timeout_s
        )
        try:
            while (index := next_request()) is not None:
                inject = inject_every > 0 and index % inject_every == 0
                headers = {"Content-Type": "application/json"}
                if trace:
                    context = TraceContext.new()
                    headers[TRACEPARENT_HEADER] = context.to_traceparent()
                    with lock:
                        trace_ids.append(context.trace_id)
                started = time.perf_counter()
                status = None
                for attempt in range(max_retries + 1):
                    try:
                        connection.request(
                            "POST", path,
                            body=error_body if inject else body,
                            headers=headers,
                        )
                        response = connection.getresponse()
                        response.read()
                        status = response.status
                    except (OSError, http.client.HTTPException):
                        # The server never drops an admitted request, so a
                        # dead connection here is a real finding; reconnect
                        # for the next request but record the drop.
                        connection.close()
                        connection = http.client.HTTPConnection(
                            parts.hostname, parts.port, timeout=timeout_s
                        )
                        break
                    if status != 503:
                        break
                    with lock:
                        counters["retried"] += 1
                    time.sleep(0.005 * (attempt + 1))
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                with lock:
                    if status is None:
                        counters["dropped"] += 1
                        continue
                    counters["responses"] += 1
                    latencies.append(elapsed_ms)
                    if inject:
                        counters["injected"] += 1
                    if 200 <= status < 300:
                        counters["ok"] += 1
                    else:
                        counters["failed"] += 1
        finally:
            connection.close()

    started = time.perf_counter()
    threads = [
        threading.Thread(target=worker, name=f"loadgen-{index}", daemon=True)
        for index in range(max(1, concurrency))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed_s = time.perf_counter() - started
    return LoadResult(
        requests=counters["responses"],
        ok=counters["ok"],
        retried_503=counters["retried"],
        failed=counters["failed"],
        dropped=counters["dropped"],
        elapsed_s=elapsed_s,
        latencies_ms=latencies,
        injected_errors=counters["injected"],
        trace_ids=trace_ids,
    )


def _easybiz_workload(url: str, documents: int) -> tuple[str, dict]:
    """Register the easybiz schemas on the server; a ready /validate payload.

    Builds the catalog model in-process, POSTs it to ``/generate``, derives
    a sample instance from the returned schemas, and returns ``(schema set
    id, validate payload)`` -- everything the barrage needs.
    """
    from repro.catalog import build_easybiz_model
    from repro.instances import InstanceGenerator
    from repro.xmi import write_xmi
    from repro.xsd.parser import parse_schema
    from repro.xsd.validator import SchemaSet

    catalog = build_easybiz_model()
    xmi_text = write_xmi(catalog.model.model, None)
    status, generated = request_json(
        url,
        "/generate",
        {"xmi": xmi_text, "library": catalog.doc_library.name, "root": "HoardingPermit"},
    )
    if status != 200:
        raise RuntimeError(f"/generate failed with {status}: {generated.get('error')}")
    schema_set = SchemaSet(
        [parse_schema(text) for text in generated["schemas"].values()]
    )
    instance = InstanceGenerator(schema_set).generate_string("HoardingPermit")
    payload = {
        "schema_set": generated["schema_set"],
        "documents": [
            {"name": f"doc{index}.xml", "xml": instance} for index in range(documents)
        ],
    }
    return generated["schema_set"], payload


def main(argv: list[str] | None = None) -> int:
    """CLI: self-contained easybiz load run against a live server."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="drive load against a running upcc serve daemon",
    )
    parser.add_argument("--url", required=True, help="server base URL, e.g. http://127.0.0.1:8437")
    parser.add_argument("--requests", type=int, default=100, help="total /validate requests (default 100)")
    parser.add_argument("--concurrency", type=int, default=8, help="worker threads (default 8)")
    parser.add_argument("--documents", type=int, default=4, help="instance documents per request (default 4)")
    parser.add_argument("--timeout", type=float, default=60.0, help="per-request timeout in seconds")
    parser.add_argument("--json", action="store_true", help="emit the result as JSON")
    parser.add_argument(
        "--error-rate", type=float, default=0.0,
        help="fraction of requests sent with malformed bodies (expected 400s, "
             "for SLO alert drills; default 0)",
    )
    parser.add_argument(
        "--no-trace", action="store_true",
        help="do not originate traceparent headers",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.error_rate <= 1.0:
        print("error: --error-rate must be in [0, 1]", file=sys.stderr)
        return 2

    status, health = request_json(args.url, "/healthz", timeout_s=args.timeout)
    if status != 200:
        print(f"error: {args.url}/healthz returned {status}: {health}", file=sys.stderr)
        return 1
    _set_id, payload = _easybiz_workload(args.url, max(1, args.documents))
    result = run_load(
        args.url,
        "/validate",
        payload,
        requests=args.requests,
        concurrency=args.concurrency,
        timeout_s=args.timeout,
        trace=not args.no_trace,
        error_rate=args.error_rate,
    )
    server_side = scrape_server_quantiles(
        args.url, labels={"endpoint": "validate"}, timeout_s=args.timeout
    )
    summary = result.to_json()
    if server_side is not None:
        summary["server_p50_ms"] = server_side["p50"]
        summary["server_p95_ms"] = server_side["p95"]
        summary["server_p99_ms"] = server_side["p99"]
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(
            f"{summary['requests']} responses in {summary['elapsed_s']}s "
            f"({summary['rps']} req/s); ok={summary['ok']} failed={summary['failed']} "
            f"dropped={summary['dropped']} retried_503={summary['retried_503']} "
            f"injected_errors={summary['injected_errors']}"
        )
        if result.trace_ids:
            print(f"first trace id: {result.trace_ids[0]}")
        print(
            f"latency ms: p50={summary['p50_ms']} p95={summary['p95_ms']} "
            f"p99={summary['p99_ms']}"
        )
        if server_side is not None:
            print(
                f"server-side /validate ms (from /metrics buckets): "
                f"p50={server_side['p50']} p95={server_side['p95']} "
                f"p99={server_side['p99']}"
            )
    # Injected errors come back as 400s by design; only unexpected
    # failures (or a shortfall of OK responses) fail the run.
    expected_ok = args.requests - result.injected_errors
    unexpected_failed = result.failed - result.injected_errors
    if result.dropped or unexpected_failed > 0 or result.ok != expected_ok:
        print("error: load run saw failed or dropped responses", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
