"""Structured request logging and slow-request capture for ``upcc serve``.

Two small, thread-safe stores the HTTP layer writes into:

* :class:`AccessLog` -- one JSON object per finished request (method,
  path, status, ``duration_ms``, ``queue_wait_ms``, worker, request id,
  root span id), appended to a JSON-lines file when a path is configured
  and always kept in a bounded in-memory ring surfaced by ``GET /stats``.
  Request ids come from :func:`new_request_id` (or the client's
  ``X-Request-Id``) and are echoed back on every response, so one id
  follows a request from client log to access log to span capture.

* :class:`SlowRequestStore` -- a bounded on-disk ring of full span trees
  for requests slower than ``--slow-ms``.  Each capture writes a JSONL
  file (one span per line, ids preserved -- the ``upcc trace`` shape) and
  a Chrome trace-event JSON (:func:`repro.obs.prof.to_trace_events`) that
  loads straight into Perfetto; the oldest captures are deleted once
  ``keep`` is exceeded.  ``GET /slow`` lists the ring's index.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from collections import deque
from pathlib import Path
from typing import Any

from repro.obs.logging_bridge import get_logger
from repro.obs.prof import to_trace_events
from repro.obs.trace import Span

__all__ = ["AccessLog", "SlowRequestStore", "new_request_id"]

_log = get_logger("repro.serve")

#: Keys every access-log record carries, in emission order.
ACCESS_LOG_FIELDS = (
    "ts", "method", "path", "status", "duration_ms", "queue_wait_ms",
    "worker", "request_id", "span_id", "trace_id",
)


def new_request_id() -> str:
    """A fresh request id: 12 hex chars, unique for practical purposes."""
    return uuid.uuid4().hex[:12]


class AccessLog:
    """JSON-lines access log plus an in-memory ring of recent requests.

    ``path=None`` keeps only the ring (the daemon default until
    ``--access-log`` is passed); the ring is always on because ``/stats``
    serves it.  Writes append-and-flush under a lock, so concurrent
    connection threads never interleave partial lines.

    ``max_bytes`` bounds the live file: once an append pushes it past the
    limit, the file rotates to ``<name>.1`` (older generations shift to
    ``.2`` .. ``.<keep_rolled>``, the oldest is deleted), so a
    long-running daemon's disk use stays at roughly
    ``max_bytes * (keep_rolled + 1)``.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        ring: int = 256,
        max_bytes: int | None = None,
        keep_rolled: int = 3,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.ring: deque[dict[str, Any]] = deque(maxlen=max(1, ring))
        self.max_bytes = max_bytes if max_bytes and max_bytes > 0 else None
        self.keep_rolled = max(1, keep_rolled)
        self.lines_written = 0
        self.rotations = 0
        self._bytes = 0
        self._lock = threading.Lock()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            try:
                self._bytes = self.path.stat().st_size
            except OSError:
                self._bytes = 0

    def _rotate_locked(self) -> None:
        """Shift ``name`` -> ``name.1`` -> ... -> ``name.keep_rolled``."""
        assert self.path is not None
        oldest = self.path.with_name(f"{self.path.name}.{self.keep_rolled}")
        try:
            oldest.unlink()
        except OSError:
            pass
        for index in range(self.keep_rolled - 1, 0, -1):
            source = self.path.with_name(f"{self.path.name}.{index}")
            if source.exists():
                try:
                    source.rename(self.path.with_name(f"{self.path.name}.{index + 1}"))
                except OSError as error:
                    _log.warning("access log rotation failed: %s", error)
        try:
            self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        except OSError as error:
            # The live file is still in place: keep _bytes so the next
            # append retries rotation instead of letting the file grow
            # past max_bytes forever behind a reset counter.
            _log.warning("access log rotation failed: %s", error)
            return
        self._bytes = 0
        self.rotations += 1

    def log(
        self,
        *,
        method: str,
        path: str,
        status: int,
        duration_ms: float,
        queue_wait_ms: float = 0.0,
        worker: str = "inline",
        request_id: str = "",
        span_id: str | None = None,
        trace_id: str = "",
    ) -> dict[str, Any]:
        """Record one finished request; returns the record."""
        record: dict[str, Any] = {
            "ts": round(time.time(), 3),
            "method": method,
            "path": path,
            "status": status,
            "duration_ms": round(duration_ms, 3),
            "queue_wait_ms": round(queue_wait_ms, 3),
            "worker": worker,
            "request_id": request_id,
            "span_id": span_id,
            "trace_id": trace_id,
        }
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self.ring.append(record)
            if self.path is not None:
                try:
                    with self.path.open("a", encoding="utf-8") as handle:
                        handle.write(line + "\n")
                    self.lines_written += 1
                    # Size accounting must match what stat() would say:
                    # encoded bytes, not characters.
                    self._bytes += len(line.encode("utf-8")) + 1
                    if self.max_bytes is not None and self._bytes > self.max_bytes:
                        self._rotate_locked()
                except OSError as error:
                    _log.warning("access log write failed: %s", error)
            else:
                self.lines_written += 1
        return record

    def recent(self) -> list[dict[str, Any]]:
        """The ring's records, oldest first (copies, JSON-ready)."""
        with self._lock:
            return [dict(record) for record in self.ring]


class SlowRequestStore:
    """Bounded on-disk ring of captured slow-request span trees.

    One capture produces ``<stamp>-<request id>.jsonl`` (one span per
    line with ``id``/``parent_id``, reconstructable) and the matching
    ``.trace.json`` Chrome trace-event file.  ``keep`` bounds the number
    of *captures*; exceeding it deletes the oldest pair.  All methods are
    thread-safe -- multiple workers can cross the threshold at once.
    """

    def __init__(self, directory: str | Path, keep: int = 32) -> None:
        self.directory = Path(directory)
        self.keep = max(1, keep)
        self._lock = threading.Lock()
        self._seq = 0
        #: Newest-last index of captures (what ``GET /slow`` serves).
        self._index: deque[dict[str, Any]] = deque(maxlen=self.keep)

    def capture(
        self,
        root: Span,
        *,
        request_id: str,
        endpoint: str = "",
        threshold_ms: float = 0.0,
        trace_id: str = "",
    ) -> dict[str, Any]:
        """Persist ``root``'s full span tree; returns the index entry."""
        self.directory.mkdir(parents=True, exist_ok=True)
        with self._lock:
            self._seq += 1
            stamp = f"{self._seq:06d}"
        base = f"slow-{stamp}-{request_id or root.span_id}"
        jsonl_path = self.directory / f"{base}.jsonl"
        trace_path = self.directory / f"{base}.trace.json"
        span_lines = []
        for span_, _depth in root.walk():
            payload = span_.to_dict()
            payload.pop("children", None)
            payload["id"] = span_.span_id
            payload["parent_id"] = (
                span_.parent.span_id if span_.parent is not None else None
            )
            span_lines.append(json.dumps(payload, sort_keys=True))
        jsonl_path.write_text("\n".join(span_lines) + "\n", encoding="utf-8")
        trace_path.write_text(
            json.dumps(to_trace_events([root]), sort_keys=True), encoding="utf-8"
        )
        entry = {
            "request_id": request_id,
            "trace_id": trace_id,
            "endpoint": endpoint or root.attributes.get("endpoint", ""),
            "duration_ms": round(root.duration_ms, 3),
            "threshold_ms": threshold_ms,
            "spans": len(span_lines),
            "captured_at": round(time.time(), 3),
            "jsonl": jsonl_path.name,
            "trace": trace_path.name,
        }
        with self._lock:
            evicted = None
            if len(self._index) == self._index.maxlen:
                evicted = self._index[0]
            self._index.append(entry)
        if evicted is not None:
            for name in (evicted["jsonl"], evicted["trace"]):
                try:
                    (self.directory / name).unlink()
                except OSError:
                    pass
        _log.info(
            "captured slow request %s (%.1fms > %.1fms) -> %s",
            request_id, entry["duration_ms"], threshold_ms, trace_path,
        )
        return entry

    def list(self) -> list[dict[str, Any]]:
        """Index entries, oldest first (what ``GET /slow`` returns)."""
        with self._lock:
            return [dict(entry) for entry in self._index]

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)
