"""Serialize UML models to XMI.

Document shape (XMI 2.1 style, with documented simplifications)::

    <xmi:XMI xmlns:xmi="..." xmlns:uml="..." xmlns:upcc="...">
      <uml:Model xmi:id="id_1" name="EasyBiz">
        <packagedElement xmi:type="uml:Package" xmi:id="id_2" name="...">
          <packagedElement xmi:type="uml:Class" xmi:id="id_3" name="Person">
            <ownedAttribute xmi:id="id_4" name="FirstName" type="id_9"
                            lower="1" upper="1"/>
          </packagedElement>
          <packagedElement xmi:type="uml:Association" xmi:id="...">
            <ownedEnd xmi:id="..." type="id_3" aggregation="composite" .../>
            <ownedEnd xmi:id="..." name="Private" type="id_7" lower="0" upper="1"/>
          </packagedElement>
          <packagedElement xmi:type="uml:Dependency" xmi:id="..."
                           client="id_x" supplier="id_y"/>
        </packagedElement>
      </uml:Model>
      <upcc:ACC xmi:id="..." base="id_3" definition="..."/>
    </xmi:XMI>

Simplifications vs. full OMG XMI: multiplicities are ``lower``/``upper``
attributes instead of ``lowerValue``/``upperValue`` children; stereotype
applications reference their element through a uniform ``base`` attribute;
enumeration literal display values use a ``value`` attribute.
"""

from __future__ import annotations

from pathlib import Path

from repro.uml.association import Association
from repro.uml.classifier import Class, Classifier, DataType, Enumeration, PrimitiveType
from repro.uml.dependency import Dependency
from repro.uml.elements import Element
from repro.uml.model import Model
from repro.uml.multiplicity import Multiplicity
from repro.uml.package import Package
from repro.xmi.ids import assign_ids, id_of
from repro.xmlutil.writer import XmlElement, XmlWriter

#: Namespace URIs used in the XMI document.
XMI_NS = "http://www.omg.org/XMI"
UML_NS = "http://www.omg.org/spec/UML/20090901"
UPCC_NS = "urn:un:unece:uncefact:profile:upcc:1.0"

_XMI_TYPES: list[tuple[type, str]] = [
    (PrimitiveType, "uml:PrimitiveType"),
    (Enumeration, "uml:Enumeration"),
    (DataType, "uml:DataType"),
    (Class, "uml:Class"),
    (Package, "uml:Package"),
]


def _xmi_type(element: Element) -> str:
    for cls, name in _XMI_TYPES:
        if isinstance(element, cls):
            return name
    raise ValueError(f"no XMI type mapping for {type(element).__name__}")


def _set_multiplicity(node: XmlElement, multiplicity: Multiplicity) -> None:
    node.set("lower", str(multiplicity.lower))
    node.set("upper", "*" if multiplicity.upper is None else str(multiplicity.upper))


def model_to_xmi(model: Model) -> XmlElement:
    """Build the ``xmi:XMI`` element tree for ``model``."""
    assign_ids(model)
    root = XmlElement("xmi:XMI")
    root.set("xmlns:xmi", XMI_NS)
    root.set("xmlns:uml", UML_NS)
    root.set("xmlns:upcc", UPCC_NS)
    root.set("xmi:version", "2.1")
    model_node = root.add("uml:Model", {"xmi:id": id_of(model), "name": model.name})
    _write_documentation(model_node, model)
    for package in model.packages:
        model_node.append(_package_to_xml(package))
    for classifier in model.classifiers:
        model_node.append(_classifier_to_xml(classifier))
    for element in model.walk():
        for stereotype, tags in element.stereotype_applications.items():
            application = root.add(f"upcc:{stereotype}", {"base": id_of(element)})
            for tag, value in tags.items():
                application.set(tag, value)
    return root


def write_xmi(model: Model, path: str | Path | None = None) -> str:
    """Serialize ``model`` to an XMI string, optionally writing it to disk."""
    text = XmlWriter().to_string(model_to_xmi(model))
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def _write_documentation(node: XmlElement, element: Element) -> None:
    if element.documentation:
        node.add("ownedComment", {"xmi:type": "uml:Comment", "body": element.documentation})


def _package_to_xml(package: Package) -> XmlElement:
    node = XmlElement(
        "packagedElement",
        {"xmi:type": _xmi_type(package), "xmi:id": id_of(package), "name": package.name},
    )
    _write_documentation(node, package)
    for classifier in package.classifiers:
        node.append(_classifier_to_xml(classifier))
    for association in package.associations:
        node.append(_association_to_xml(association))
    for dependency in package.dependencies:
        node.append(_dependency_to_xml(dependency))
    for subpackage in package.packages:
        node.append(_package_to_xml(subpackage))
    return node


def _classifier_to_xml(classifier: Classifier) -> XmlElement:
    node = XmlElement(
        "packagedElement",
        {"xmi:type": _xmi_type(classifier), "xmi:id": id_of(classifier), "name": classifier.name},
    )
    _write_documentation(node, classifier)
    for prop in classifier.attributes:
        attribute = node.add("ownedAttribute", {"xmi:id": id_of(prop), "name": prop.name})
        if prop.type is not None:
            attribute.set("type", id_of(prop.type))
        _set_multiplicity(attribute, prop.multiplicity)
        if prop.default is not None:
            attribute.set("default", prop.default)
    if isinstance(classifier, Enumeration):
        for literal in classifier.literals:
            node.add(
                "ownedLiteral",
                {"xmi:id": id_of(literal), "name": literal.name, "value": literal.value},
            )
    return node


def _association_to_xml(association: Association) -> XmlElement:
    node = XmlElement(
        "packagedElement",
        {"xmi:type": "uml:Association", "xmi:id": id_of(association)},
    )
    if association.name:
        node.set("name", association.name)
    for end in (association.source, association.target):
        end_node = node.add("ownedEnd", {"xmi:id": id_of(end)})
        if end.name:
            end_node.set("name", end.name)
        end_node.set("type", id_of(end.type))
        if end.aggregation.value != "none":
            end_node.set("aggregation", end.aggregation.value)
        _set_multiplicity(end_node, end.multiplicity)
        end_node.set("navigable", "true" if end.navigable else "false")
    return node


def _dependency_to_xml(dependency: Dependency) -> XmlElement:
    node = XmlElement(
        "packagedElement",
        {
            "xmi:type": "uml:Dependency",
            "xmi:id": id_of(dependency),
            "client": id_of(dependency.client),
            "supplier": id_of(dependency.supplier),
        },
    )
    if dependency.name:
        node.set("name", dependency.name)
    return node
