"""XMI interchange for UML core-component models.

The paper motivates the UML profile partly with interchange: "there is no
format defined to register and exchange core components ... we hope to gain
better tool support and to use XMI for registering and exchanging core
components."  This package provides that format:

* :func:`write_xmi` / :func:`model_to_xmi` -- serialize a
  :class:`repro.uml.Model` (with all stereotype applications and tagged
  values) to an XMI 2.1-shaped document,
* :func:`read_xmi` / :func:`model_from_xmi` -- load it back.

Simplifications relative to full OMG XMI are documented in
:mod:`repro.xmi.writer` (multiplicities as ``lower``/``upper`` attributes,
stereotype applications as ``upcc:*`` elements referencing ``base`` ids).
Round-tripping is exact for everything the UPCC profile uses; the property
test suite verifies write->read->write is the identity.

Loading is fault-tolerant on demand: :func:`read_xmi` is strict (fail
fast with located :class:`~repro.errors.XmiError`), while
:func:`load_xmi` collects every recoverable defect as a located
:class:`LoadIssue` and still returns whatever model content was sound.
"""

from repro.xmi.reader import (
    DEFAULT_MAX_DEPTH,
    DEFAULT_MAX_ELEMENTS,
    LoadIssue,
    LoadResult,
    load_xmi,
    model_from_xmi,
    read_xmi,
)
from repro.xmi.writer import model_to_xmi, write_xmi

__all__ = [
    "DEFAULT_MAX_DEPTH",
    "DEFAULT_MAX_ELEMENTS",
    "LoadIssue",
    "LoadResult",
    "load_xmi",
    "model_from_xmi",
    "model_to_xmi",
    "read_xmi",
    "write_xmi",
]
