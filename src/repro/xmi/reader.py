"""Deserialize XMI documents back into UML models.

Two-pass loading: the first pass materializes every element and records the
id table plus unresolved references (property types, association ends,
dependency client/supplier); the second pass resolves references and
replays stereotype applications.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import XmiError
from repro.obs.logging_bridge import get_logger
from repro.obs.metrics import counter
from repro.obs.trace import span
from repro.uml.association import AggregationKind, Association, AssociationEnd
from repro.uml.classifier import Class, Classifier, DataType, Enumeration, PrimitiveType
from repro.uml.dependency import Dependency
from repro.uml.elements import Element, NamedElement
from repro.uml.model import Model
from repro.uml.multiplicity import Multiplicity
from repro.uml.package import Package
from repro.uml.property import Property
from repro.xmlutil.writer import XmlElement, parse_xml

_CLASSIFIER_TYPES: dict[str, type[Classifier]] = {
    "uml:Class": Class,
    "uml:DataType": DataType,
    "uml:PrimitiveType": PrimitiveType,
    "uml:Enumeration": Enumeration,
}


class _Loader:
    def __init__(self) -> None:
        self.by_id: dict[str, Element] = {}
        self.pending_types: list[tuple[Property, str]] = []
        self.pending_ends: list[tuple[AssociationEnd, str]] = []
        self.pending_dependencies: list[tuple[Dependency, str, str]] = []

    # -- pass 1 ------------------------------------------------------------------

    def register(self, node: XmlElement, element: Element) -> None:
        xmi_id = node.attributes.get("xmi:id")
        if xmi_id is None:
            raise XmiError(f"element {node.tag!r} lacks an xmi:id")
        if xmi_id in self.by_id:
            raise XmiError(f"duplicate xmi:id {xmi_id!r}")
        element.xmi_id = xmi_id
        self.by_id[xmi_id] = element

    def load_model(self, node: XmlElement) -> Model:
        model = Model(node.attributes.get("name", ""))
        self.register(node, model)
        self._load_documentation(node, model)
        for child in node.element_children:
            if child.tag == "packagedElement":
                self._load_packaged(child, model)
        return model

    def _load_documentation(self, node: XmlElement, element: Element) -> None:
        comment = node.find("ownedComment")
        if comment is not None:
            element.documentation = comment.attributes.get("body", "")

    def _load_packaged(self, node: XmlElement, owner: Package) -> None:
        xmi_type = node.attributes.get("xmi:type", "")
        if xmi_type == "uml:Package":
            package = Package(node.attributes.get("name", ""))
            package.owner = owner
            owner.packages.append(package)
            self.register(node, package)
            self._load_documentation(node, package)
            for child in node.element_children:
                if child.tag == "packagedElement":
                    self._load_packaged(child, package)
        elif xmi_type in _CLASSIFIER_TYPES:
            self._load_classifier(node, owner, _CLASSIFIER_TYPES[xmi_type])
        elif xmi_type == "uml:Association":
            self._load_association(node, owner)
        elif xmi_type == "uml:Dependency":
            self._load_dependency(node, owner)
        else:
            raise XmiError(f"unsupported packagedElement xmi:type {xmi_type!r}")

    def _load_classifier(self, node: XmlElement, owner: Package, cls: type[Classifier]) -> None:
        classifier = cls(node.attributes.get("name", ""))
        classifier.owner = owner
        owner.classifiers.append(classifier)
        self.register(node, classifier)
        self._load_documentation(node, classifier)
        for child in node.element_children:
            if child.tag == "ownedAttribute":
                prop = Property(
                    child.attributes.get("name", ""),
                    None,
                    self._multiplicity(child),
                    child.attributes.get("default"),
                )
                prop.owner = classifier
                classifier.attributes.append(prop)
                self.register(child, prop)
                type_ref = child.attributes.get("type")
                if type_ref is not None:
                    self.pending_types.append((prop, type_ref))
            elif child.tag == "ownedLiteral" and isinstance(classifier, Enumeration):
                literal = classifier.add_literal(
                    child.attributes.get("name", ""), child.attributes.get("value")
                )
                literal.xmi_id = child.attributes.get("xmi:id")
                if literal.xmi_id:
                    self.by_id[literal.xmi_id] = literal

    def _multiplicity(self, node: XmlElement) -> Multiplicity:
        lower = int(node.attributes.get("lower", "1"))
        upper_text = node.attributes.get("upper", "1")
        upper = None if upper_text == "*" else int(upper_text)
        return Multiplicity(lower, upper)

    def _load_association(self, node: XmlElement, owner: Package) -> None:
        ends: list[AssociationEnd] = []
        end_nodes = node.find_all("ownedEnd")
        if len(end_nodes) != 2:
            raise XmiError(
                f"association {node.attributes.get('xmi:id')!r} has {len(end_nodes)} ends, expected 2"
            )
        placeholder = Class("")  # replaced during reference resolution
        for end_node in end_nodes:
            end = AssociationEnd(
                placeholder,
                end_node.attributes.get("name", ""),
                self._multiplicity(end_node),
                AggregationKind(end_node.attributes.get("aggregation", "none")),
                end_node.attributes.get("navigable", "true") == "true",
            )
            self.register(end_node, end)
            self.pending_ends.append((end, end_node.attributes["type"]))
            ends.append(end)
        association = Association(ends[0], ends[1], node.attributes.get("name", ""))
        association.owner = owner
        owner.associations.append(association)
        self.register(node, association)

    def _load_dependency(self, node: XmlElement, owner: Package) -> None:
        placeholder = NamedElement("")
        dependency = Dependency(placeholder, placeholder, node.attributes.get("name", ""))
        dependency.owner = owner
        owner.dependencies.append(dependency)
        self.register(node, dependency)
        self.pending_dependencies.append(
            (dependency, node.attributes["client"], node.attributes["supplier"])
        )

    # -- pass 2 --------------------------------------------------------------------

    def resolve(self) -> None:
        for prop, ref in self.pending_types:
            target = self.by_id.get(ref)
            if not isinstance(target, Classifier):
                raise XmiError(f"property {prop.name!r} references non-classifier id {ref!r}")
            prop.type = target
        for end, ref in self.pending_ends:
            target = self.by_id.get(ref)
            if not isinstance(target, Class):
                raise XmiError(f"association end references non-class id {ref!r}")
            end.type = target
        for dependency, client_ref, supplier_ref in self.pending_dependencies:
            client = self.by_id.get(client_ref)
            supplier = self.by_id.get(supplier_ref)
            if not isinstance(client, NamedElement) or not isinstance(supplier, NamedElement):
                raise XmiError(
                    f"dependency references unresolved ids {client_ref!r}/{supplier_ref!r}"
                )
            dependency.client = client
            dependency.supplier = supplier

    def apply_stereotypes(self, root: XmlElement) -> None:
        for child in root.element_children:
            if not child.tag.startswith("upcc:"):
                continue
            stereotype = child.tag[len("upcc:"):]
            base_ref = child.attributes.get("base")
            element = self.by_id.get(base_ref or "")
            if element is None:
                raise XmiError(
                    f"stereotype application <<{stereotype}>> references unknown id {base_ref!r}"
                )
            tags = {
                name: value
                for name, value in child.attributes.items()
                if name not in ("base",) and not name.startswith("xmi:")
            }
            element.apply_stereotype(stereotype, **tags)


_log = get_logger("repro.xmi")


def model_from_xmi(root: XmlElement) -> Model:
    """Load a model from a parsed ``xmi:XMI`` element tree."""
    if root.tag != "xmi:XMI":
        raise XmiError(f"expected an xmi:XMI root, got {root.tag!r}")
    model_node = root.find("uml:Model")
    if model_node is None:
        raise XmiError("document contains no uml:Model")
    with span("xmi.load") as load_span:
        loader = _Loader()
        model = loader.load_model(model_node)
        loader.resolve()
        loader.apply_stereotypes(root)
        counter("xmi.elements_parsed").inc(len(loader.by_id))
        load_span.set(model=model.name, elements=len(loader.by_id))
        _log.debug("loaded model %r: %d element(s)", model.name, len(loader.by_id))
    return model


def read_xmi(source: str | Path) -> Model:
    """Load a model from an XMI string or file path."""
    if isinstance(source, Path) or (isinstance(source, str) and "\n" not in source and source.endswith(".xmi")):
        text = Path(source).read_text(encoding="utf-8")
    else:
        text = source
    with span("xmi.read", bytes=len(text)):
        counter("xmi.bytes_read").inc(len(text))
        return model_from_xmi(parse_xml(text))
