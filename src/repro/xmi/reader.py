"""Deserialize XMI documents back into UML models.

Two-pass loading: the first pass materializes every element and records the
id table plus unresolved references (property types, association ends,
dependency client/supplier); the second pass resolves references and
replays stereotype applications.

Error handling comes in two modes (see docs/architecture.md, "Strict and
lenient loading"):

* **strict** (the default of :func:`read_xmi` / :func:`model_from_xmi`) --
  fail fast: the first defect raises :class:`~repro.errors.XmiError`, now
  carrying the offending element's xmi:id, element path and the 1-based
  line/column of its start tag (threaded through
  :func:`repro.xmlutil.writer.parse_xml`).
* **lenient** (:func:`load_xmi`, or ``strict=False``) -- recoverable
  defects (missing or duplicate ``xmi:id``, unresolvable type/client/
  supplier references, unknown ``packagedElement`` types, bad
  multiplicities, dangling stereotype bases, ...) are recorded as located
  :class:`LoadIssue` records, the offending element is skipped or
  placeholder-repaired, and loading continues.  One pass collects *every*
  problem; whatever is sound still becomes a model.

Resource limits (``max_elements``, ``max_depth``) guard the reader against
pathological inputs in both modes.  Lenient-mode defect counts land on the
``xmi.load_issues{kind=...}`` counters.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ModelError, XmiError
from repro.obs.logging_bridge import get_logger
from repro.obs.metrics import counter
from repro.obs.trace import span
from repro.uml.association import AggregationKind, Association, AssociationEnd
from repro.uml.classifier import Class, Classifier, DataType, Enumeration, PrimitiveType
from repro.uml.dependency import Dependency
from repro.uml.elements import Element, NamedElement
from repro.uml.model import Model
from repro.uml.multiplicity import Multiplicity
from repro.uml.package import Package
from repro.uml.property import Property
from repro.validation.diagnostics import SourceLocation
from repro.xmlutil.writer import XmlElement, parse_xml

_CLASSIFIER_TYPES: dict[str, type[Classifier]] = {
    "uml:Class": Class,
    "uml:DataType": DataType,
    "uml:PrimitiveType": PrimitiveType,
    "uml:Enumeration": Enumeration,
}

#: Default resource-limit guards; generous enough for any real model.
DEFAULT_MAX_ELEMENTS = 1_000_000
DEFAULT_MAX_DEPTH = 100


@dataclass(frozen=True)
class LoadIssue:
    """One recoverable defect found while loading an XMI document.

    ``kind`` is a stable machine-readable slug (``duplicate-id``,
    ``dangling-type-ref``, ...; the full catalog is in
    docs/architecture.md), ``xmi_id`` the offending element's id when
    known, ``path`` the slash-separated element path from the model root
    and ``source`` the position of the element's start tag in the input.
    """

    kind: str
    message: str
    xmi_id: str | None = None
    path: str = ""
    source: SourceLocation | None = None

    @property
    def line(self) -> int | None:
        """The 1-based source line, or None when unknown."""
        return self.source.line if self.source is not None else None

    @property
    def column(self) -> int | None:
        """The 1-based source column, or None when unknown."""
        return self.source.column if self.source is not None else None

    def __str__(self) -> str:
        details = []
        if self.xmi_id is not None:
            details.append(f"xmi:id={self.xmi_id}")
        if self.path:
            details.append(f"path={self.path}")
        if self.source is not None:
            details.append(str(self.source))
        suffix = f" ({', '.join(details)})" if details else ""
        return f"[{self.kind}] {self.message}{suffix}"


@dataclass
class LoadResult:
    """The outcome of one lenient load: the model (if any) plus issues.

    ``model`` is ``None`` only for unrecoverable documents (XML syntax
    errors, a non-XMI root, a breached resource limit); otherwise it holds
    whatever sound content the document contained.
    """

    model: Model | None
    issues: list[LoadIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when a model loaded and no defect was recorded."""
        return self.model is not None and not self.issues

    def summary(self) -> str:
        """One-line summary for status displays."""
        name = self.model.name if self.model is not None else "<no model>"
        return f"{name}: {len(self.issues)} issue(s)"


class _LimitError(XmiError):
    """A resource limit was breached; never downgraded to a LoadIssue."""


def _located(node: XmlElement | None) -> SourceLocation | None:
    if node is None or node.source_line is None:
        return None
    return SourceLocation(node.source_line, node.source_column)


class _Loader:
    def __init__(
        self,
        strict: bool = True,
        max_elements: int = DEFAULT_MAX_ELEMENTS,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> None:
        self.strict = strict
        self.max_elements = max_elements
        self.max_depth = max_depth
        self.issues: list[LoadIssue] = []
        self.by_id: dict[str, Element] = {}
        self._synthetic_ids = 0
        #: (property, ref, site) -- site located where the ref was written.
        self.pending_types: list[tuple[Property, str, tuple]] = []
        self.pending_ends: list[tuple[AssociationEnd, str, Association, tuple]] = []
        self.pending_dependencies: list[tuple[Dependency, str, str, tuple]] = []

    # -- issue plumbing ----------------------------------------------------------

    def issue(
        self,
        kind: str,
        message: str,
        *,
        node: XmlElement | None = None,
        xmi_id: str | None = None,
        path: str = "",
        source: SourceLocation | None = None,
    ) -> None:
        """Raise (strict) or record (lenient) one recoverable defect."""
        if source is None:
            source = _located(node)
        if self.strict:
            raise XmiError(
                message,
                xmi_id=xmi_id,
                path=path,
                line=source.line if source else None,
                column=source.column if source else None,
            )
        self.issues.append(LoadIssue(kind, message, xmi_id=xmi_id, path=path, source=source))
        counter("xmi.load_issues", kind=kind).inc()

    def _site(self, node: XmlElement, xmi_id: str | None, path: str) -> tuple:
        """Located facts captured in pass 1 for diagnostics raised in pass 2."""
        return (xmi_id, path, _located(node))

    # -- pass 1 ------------------------------------------------------------------

    def register(self, node: XmlElement, element: Element, path: str = "") -> bool:
        """Assign ``element`` its xmi:id; False when the id was unusable."""
        if len(self.by_id) >= self.max_elements:
            raise _LimitError(
                f"document exceeds max_elements={self.max_elements}; "
                f"refusing to load more model elements"
            )
        xmi_id = node.attributes.get("xmi:id")
        if xmi_id is None:
            self.issue(
                "missing-id",
                f"element {node.tag!r} lacks an xmi:id",
                node=node,
                path=path,
            )
            # Lenient recovery: synthesize an id so later passes can still
            # address the element (the prefix cannot clash with real ids).
            self._synthetic_ids += 1
            xmi_id = f"__synthetic_{self._synthetic_ids}"
            element.xmi_id = xmi_id
            self.by_id[xmi_id] = element
            return True
        if xmi_id in self.by_id:
            self.issue(
                "duplicate-id",
                f"duplicate xmi:id {xmi_id!r}",
                node=node,
                xmi_id=xmi_id,
                path=path,
            )
            # First registration wins; the element stays in the model but
            # references to this id keep resolving to the original.
            element.xmi_id = xmi_id
            return False
        element.xmi_id = xmi_id
        self.by_id[xmi_id] = element
        return True

    def load_model(self, node: XmlElement) -> Model:
        model = Model(node.attributes.get("name", ""))
        path = model.name or node.tag
        self.register(node, model, path)
        self._load_documentation(node, model)
        for child in node.element_children:
            if child.tag == "packagedElement":
                self._load_packaged(child, model, path, 1)
        return model

    def _load_documentation(self, node: XmlElement, element: Element) -> None:
        comment = node.find("ownedComment")
        if comment is not None:
            element.documentation = comment.attributes.get("body", "")

    def _load_packaged(self, node: XmlElement, owner: Package, path: str, depth: int) -> None:
        if depth > self.max_depth:
            raise _LimitError(
                f"document exceeds max_depth={self.max_depth} nested packagedElements"
            )
        xmi_type = node.attributes.get("xmi:type", "")
        child_path = f"{path}/{node.attributes.get('name') or node.tag}"
        if xmi_type == "uml:Package":
            package = Package(node.attributes.get("name", ""))
            package.owner = owner
            owner.packages.append(package)
            self.register(node, package, child_path)
            self._load_documentation(node, package)
            for child in node.element_children:
                if child.tag == "packagedElement":
                    self._load_packaged(child, package, child_path, depth + 1)
        elif xmi_type in _CLASSIFIER_TYPES:
            self._load_classifier(node, owner, _CLASSIFIER_TYPES[xmi_type], child_path)
        elif xmi_type == "uml:Association":
            self._load_association(node, owner, child_path)
        elif xmi_type == "uml:Dependency":
            self._load_dependency(node, owner, child_path)
        else:
            self.issue(
                "unknown-element",
                f"unsupported packagedElement xmi:type {xmi_type!r}",
                node=node,
                xmi_id=node.attributes.get("xmi:id"),
                path=child_path,
            )

    def _load_classifier(
        self, node: XmlElement, owner: Package, cls: type[Classifier], path: str
    ) -> None:
        classifier = cls(node.attributes.get("name", ""))
        classifier.owner = owner
        owner.classifiers.append(classifier)
        self.register(node, classifier, path)
        self._load_documentation(node, classifier)
        for child in node.element_children:
            child_path = f"{path}/{child.attributes.get('name') or child.tag}"
            if child.tag == "ownedAttribute":
                prop = Property(
                    child.attributes.get("name", ""),
                    None,
                    self._multiplicity(child, child_path),
                    child.attributes.get("default"),
                )
                prop.owner = classifier
                classifier.attributes.append(prop)
                self.register(child, prop, child_path)
                type_ref = child.attributes.get("type")
                if type_ref is not None:
                    self.pending_types.append(
                        (prop, type_ref, self._site(child, prop.xmi_id, child_path))
                    )
            elif child.tag == "ownedLiteral" and isinstance(classifier, Enumeration):
                try:
                    literal = classifier.add_literal(
                        child.attributes.get("name", ""), child.attributes.get("value")
                    )
                except ModelError as error:
                    if self.strict:
                        raise
                    self.issue("bad-literal", str(error), node=child, path=child_path)
                    continue
                # Through register() so colliding literal ids are caught;
                # literals without an id stay addressable-by-nothing, as
                # before.
                if child.attributes.get("xmi:id") is not None:
                    self.register(child, literal, child_path)

    def _multiplicity(self, node: XmlElement, path: str = "") -> Multiplicity:
        lower_text = node.attributes.get("lower", "1")
        upper_text = node.attributes.get("upper", "1")
        try:
            lower = int(lower_text)
            upper = None if upper_text == "*" else int(upper_text)
            return Multiplicity(lower, upper)
        except ValueError as error:
            xmi_id = node.attributes.get("xmi:id")
            if self.strict:
                source = _located(node)
                raise XmiError(
                    f"element {xmi_id!r} has an invalid multiplicity "
                    f"lower={lower_text!r} upper={upper_text!r}: {error}",
                    xmi_id=xmi_id,
                    path=path,
                    line=source.line if source else None,
                    column=source.column if source else None,
                ) from error
            self.issue(
                "bad-multiplicity",
                f"invalid multiplicity lower={lower_text!r} upper={upper_text!r}: {error}",
                node=node,
                xmi_id=xmi_id,
                path=path,
            )
            return Multiplicity(0, None)

    def _load_association(self, node: XmlElement, owner: Package, path: str) -> None:
        xmi_id = node.attributes.get("xmi:id")
        end_nodes = node.find_all("ownedEnd")
        if len(end_nodes) != 2:
            self.issue(
                "bad-association",
                f"association {xmi_id!r} has {len(end_nodes)} ends, expected 2",
                node=node,
                xmi_id=xmi_id,
                path=path,
            )
            return
        placeholder = Class("")  # replaced during reference resolution
        ends: list[AssociationEnd] = []
        end_refs: list[tuple[str | None, XmlElement]] = []
        for end_node in end_nodes:
            end_path = f"{path}/{end_node.attributes.get('name') or end_node.tag}"
            try:
                aggregation = AggregationKind(end_node.attributes.get("aggregation", "none"))
            except ValueError:
                if self.strict:
                    raise
                self.issue(
                    "bad-aggregation",
                    f"unknown aggregation kind "
                    f"{end_node.attributes.get('aggregation')!r}",
                    node=end_node,
                    xmi_id=end_node.attributes.get("xmi:id"),
                    path=end_path,
                )
                aggregation = AggregationKind.NONE
            end = AssociationEnd(
                placeholder,
                end_node.attributes.get("name", ""),
                self._multiplicity(end_node, end_path),
                aggregation,
                end_node.attributes.get("navigable", "true") == "true",
            )
            self.register(end_node, end, end_path)
            type_ref = end_node.attributes.get("type")
            if type_ref is None:
                self.issue(
                    "missing-end-type",
                    f"association end {end.xmi_id!r} lacks a type reference",
                    node=end_node,
                    xmi_id=end.xmi_id,
                    path=end_path,
                )
                return  # lenient: drop the whole association
            end_refs.append((type_ref, end_node))
            ends.append(end)
        association = Association(ends[0], ends[1], node.attributes.get("name", ""))
        association.owner = owner
        owner.associations.append(association)
        self.register(node, association, path)
        for end, (type_ref, end_node) in zip(ends, end_refs):
            end_path = f"{path}/{end_node.attributes.get('name') or end_node.tag}"
            self.pending_ends.append(
                (end, type_ref, association, self._site(end_node, end.xmi_id, end_path))
            )

    def _load_dependency(self, node: XmlElement, owner: Package, path: str) -> None:
        placeholder = NamedElement("")
        dependency = Dependency(placeholder, placeholder, node.attributes.get("name", ""))
        dependency.owner = owner
        owner.dependencies.append(dependency)
        self.register(node, dependency, path)
        missing = [key for key in ("client", "supplier") if key not in node.attributes]
        if missing:
            owner.dependencies.remove(dependency)
            self.issue(
                "missing-dependency-ref",
                f"dependency {dependency.xmi_id!r} lacks a "
                f"{' and '.join(missing)} reference",
                node=node,
                xmi_id=dependency.xmi_id,
                path=path,
            )
            return
        self.pending_dependencies.append(
            (
                dependency,
                node.attributes["client"],
                node.attributes["supplier"],
                self._site(node, dependency.xmi_id, path),
            )
        )

    # -- pass 2 --------------------------------------------------------------------

    def resolve(self) -> None:
        for prop, ref, (xmi_id, path, source) in self.pending_types:
            target = self.by_id.get(ref)
            if not isinstance(target, Classifier):
                self.issue(
                    "dangling-type-ref",
                    f"property {prop.name!r} references non-classifier id {ref!r}",
                    xmi_id=xmi_id,
                    path=path,
                    source=source,
                )
                continue  # lenient: the property stays untyped
            prop.type = target
        for end, ref, association, (xmi_id, path, source) in self.pending_ends:
            target = self.by_id.get(ref)
            if not isinstance(target, Class):
                self.issue(
                    "dangling-end-ref",
                    f"association end references non-class id {ref!r}",
                    xmi_id=xmi_id,
                    path=path,
                    source=source,
                )
                owner = association.owner
                if isinstance(owner, Package) and association in owner.associations:
                    owner.associations.remove(association)
                continue
            end.type = target
        for dependency, client_ref, supplier_ref, (xmi_id, path, source) in self.pending_dependencies:
            client = self.by_id.get(client_ref)
            supplier = self.by_id.get(supplier_ref)
            if not isinstance(client, NamedElement) or not isinstance(supplier, NamedElement):
                self.issue(
                    "dangling-dependency-ref",
                    f"dependency references unresolved ids {client_ref!r}/{supplier_ref!r}",
                    xmi_id=xmi_id,
                    path=path,
                    source=source,
                )
                owner = dependency.owner
                if isinstance(owner, Package) and dependency in owner.dependencies:
                    owner.dependencies.remove(dependency)
                continue
            dependency.client = client
            dependency.supplier = supplier

    def apply_stereotypes(self, root: XmlElement) -> None:
        for child in root.element_children:
            if not child.tag.startswith("upcc:"):
                continue
            stereotype = child.tag[len("upcc:"):]
            base_ref = child.attributes.get("base")
            element = self.by_id.get(base_ref or "")
            if element is None:
                self.issue(
                    "dangling-stereotype-base",
                    f"stereotype application <<{stereotype}>> references unknown id {base_ref!r}",
                    node=child,
                    xmi_id=base_ref,
                )
                continue
            tags = {
                name: value
                for name, value in child.attributes.items()
                if name not in ("base",) and not name.startswith("xmi:")
            }
            element.apply_stereotype(stereotype, **tags)


_log = get_logger("repro.xmi")


def _load_document(
    root: XmlElement,
    strict: bool,
    max_elements: int,
    max_depth: int,
) -> tuple[Model | None, list[LoadIssue]]:
    """Load one parsed document; (model, issues).  Strict mode raises."""
    if root.tag != "xmi:XMI":
        fatal = LoadIssue(
            "document", f"expected an xmi:XMI root, got {root.tag!r}", source=_located(root)
        )
        if strict:
            raise XmiError(fatal.message, line=fatal.line, column=fatal.column)
        counter("xmi.load_issues", kind=fatal.kind).inc()
        return None, [fatal]
    model_node = root.find("uml:Model")
    if model_node is None:
        fatal = LoadIssue("document", "document contains no uml:Model", source=_located(root))
        if strict:
            raise XmiError(fatal.message, line=fatal.line, column=fatal.column)
        counter("xmi.load_issues", kind=fatal.kind).inc()
        return None, [fatal]
    with span("xmi.load") as load_span:
        loader = _Loader(strict=strict, max_elements=max_elements, max_depth=max_depth)
        try:
            model = loader.load_model(model_node)
            loader.resolve()
            loader.apply_stereotypes(root)
        except _LimitError as error:
            if strict:
                raise
            counter("xmi.load_issues", kind="resource-limit").inc()
            issues = loader.issues + [LoadIssue("resource-limit", str(error))]
            load_span.set(issues=len(issues))
            return None, issues
        counter("xmi.elements_parsed").inc(len(loader.by_id))
        load_span.set(model=model.name, elements=len(loader.by_id))
        if loader.issues:
            load_span.set(issues=len(loader.issues))
        _log.debug("loaded model %r: %d element(s)", model.name, len(loader.by_id))
    return model, loader.issues


def model_from_xmi(root: XmlElement) -> Model:
    """Load a model from a parsed ``xmi:XMI`` element tree (strict mode)."""
    model, _ = _load_document(
        root, strict=True, max_elements=DEFAULT_MAX_ELEMENTS, max_depth=DEFAULT_MAX_DEPTH
    )
    assert model is not None  # strict mode raises instead
    return model


def _source_text(source: str | Path) -> str:
    """Resolve the path-or-content convention of :func:`read_xmi`.

    A :class:`~pathlib.Path` is always read from disk.  A string is XML
    content when it starts (after whitespace) with ``<``; otherwise it is
    treated as a file path when it names an existing file or carries the
    conventional ``.xmi`` suffix -- so an XMI file named ``model.xml`` is
    read from disk, not parsed as literal XML text.
    """
    if isinstance(source, Path):
        return source.read_text(encoding="utf-8")
    if source.lstrip().startswith("<"):
        return source
    if "\n" not in source and (Path(source).exists() or source.endswith(".xmi")):
        return Path(source).read_text(encoding="utf-8")
    return source


def load_xmi(
    source: str | Path,
    *,
    strict: bool = False,
    max_elements: int = DEFAULT_MAX_ELEMENTS,
    max_depth: int = DEFAULT_MAX_DEPTH,
) -> LoadResult:
    """Load a model leniently, collecting every defect as a located issue.

    In the default lenient mode the returned :class:`LoadResult` never
    raises for malformed *content*: XML syntax errors, non-XMI documents
    and breached resource limits yield ``model=None`` plus a fatal issue,
    and recoverable defects are skipped or placeholder-repaired while the
    rest of the document still loads.  With ``strict=True`` this behaves
    like :func:`read_xmi` but returns a :class:`LoadResult`.
    """
    text = _source_text(source)
    with span("xmi.read", bytes=len(text)):
        counter("xmi.bytes_read").inc(len(text))
        try:
            root = parse_xml(text)
        except (ET.ParseError, ValueError) as error:
            if strict:
                raise
            position = getattr(error, "position", None)
            located = SourceLocation(*position) if position else None
            counter("xmi.load_issues", kind="xml-syntax").inc()
            return LoadResult(
                None, [LoadIssue("xml-syntax", f"not well-formed XML: {error}", source=located)]
            )
        model, issues = _load_document(root, strict, max_elements, max_depth)
        return LoadResult(model, issues)


def read_xmi(
    source: str | Path,
    *,
    strict: bool = True,
    max_elements: int = DEFAULT_MAX_ELEMENTS,
    max_depth: int = DEFAULT_MAX_DEPTH,
) -> Model:
    """Load a model from an XMI string or file path.

    Strict by default: the first defect raises a located
    :class:`~repro.errors.XmiError`.  With ``strict=False`` defects are
    repaired or skipped where possible (use :func:`load_xmi` to also get
    the issue records); an unrecoverable document still raises.
    """
    result = load_xmi(source, strict=strict, max_elements=max_elements, max_depth=max_depth)
    if result.model is None:
        first = result.issues[0] if result.issues else None
        raise XmiError(
            "cannot recover a model from the document"
            + (f": {first.message}" if first is not None else ""),
            line=first.line if first is not None else None,
            column=first.column if first is not None else None,
        )
    return result.model
