"""Deterministic xmi:id allocation.

Ids are assigned in model walk order (``id_1``, ``id_2``, ...) unless an
element already carries an ``xmi_id`` (e.g. after a previous load), which
keeps ids stable across repeated save/load cycles.
"""

from __future__ import annotations

from repro.uml.elements import Element
from repro.uml.model import Model


def assign_ids(model: Model) -> dict[int, str]:
    """Ensure every element has an xmi:id; returns id(element) -> xmi:id."""
    taken = {
        element.xmi_id
        for element in model.walk()
        if element.xmi_id is not None
    }
    mapping: dict[int, str] = {}
    counter = 0
    for element in model.walk():
        if element.xmi_id is None:
            counter += 1
            candidate = f"id_{counter}"
            while candidate in taken:
                counter += 1
                candidate = f"id_{counter}"
            element.xmi_id = candidate
            taken.add(candidate)
        mapping[id(element)] = element.xmi_id
    return mapping


def id_of(element: Element) -> str:
    """The element's xmi:id (must have been assigned)."""
    if element.xmi_id is None:
        raise ValueError(f"element {element!r} has no xmi:id; call assign_ids first")
    return element.xmi_id
