"""UPCC: a UML profile for UN/CEFACT core components and their XSD transformation.

A from-scratch Python reproduction of *Huemer & Liegl, "A UML Profile for
Core Components and their Transformation to XSD", ICDE 2007*:

* :mod:`repro.uml` -- a UML 2 kernel subset (the Enterprise Architect
  substitute),
* :mod:`repro.profile` -- the UPCC profile (Figure 3),
* :mod:`repro.ccts` -- the CCTS layer: ACC/BCC/ASCC, CDT/QDT, ABIE/BBIE/
  ASBIE, libraries, dictionary entry names, derivation by restriction,
* :mod:`repro.validation` -- the model validation engine,
* :mod:`repro.ndr` -- the UN/CEFACT XML naming and design rules,
* :mod:`repro.xsdgen` -- the XSD generator (Figures 5-8),
* :mod:`repro.xsd` -- an XSD object model, writer, parser and instance
  validator,
* :mod:`repro.instances` -- sample-instance generation and mutation,
* :mod:`repro.xmi` -- XMI interchange,
* :mod:`repro.interchange` -- the spreadsheet baseline and model diffing,
* :mod:`repro.registry` -- a file-based core-component registry,
* :mod:`repro.catalog` -- ready-made models (standards catalog, the
  paper's Figure-1 and Figure-4 examples, an e-commerce order model).

Quickstart::

    from repro import SchemaGenerator
    from repro.catalog import build_easybiz_model

    easybiz = build_easybiz_model()
    result = SchemaGenerator(easybiz.model).generate(
        easybiz.doc_library, root="HoardingPermit"
    )
    print(result.root.to_string())
"""

from repro.ccts.model import CctsModel
from repro.errors import ReproError
from repro.validation import validate_model
from repro.xmi import read_xmi, write_xmi
from repro.xsd.validator import SchemaSet, validate_instance
from repro.xsdgen import GenerationOptions, SchemaGenerator

__version__ = "1.0.0"

__all__ = [
    "CctsModel",
    "GenerationOptions",
    "ReproError",
    "SchemaGenerator",
    "SchemaSet",
    "__version__",
    "read_xmi",
    "validate_instance",
    "validate_model",
    "write_xmi",
]
