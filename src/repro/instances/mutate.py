"""Controlled instance corruptions for negative testing.

Each mutation takes a valid instance tree (as produced by
:class:`repro.instances.InstanceGenerator`), applies one specific defect and
returns True when it found a spot to apply it.  Tests assert that the
validator rejects every successfully mutated instance -- silence from a
validator is only meaningful when it provably can say no.
"""

from __future__ import annotations

from repro.xmlutil.writer import XmlElement


def _walk(element: XmlElement):
    yield element
    for child in element.element_children:
        yield from _walk(child)


def drop_required_child(root: XmlElement, child_name: str) -> bool:
    """Remove the first child element whose tag ends in ``child_name``."""
    for element in _walk(root):
        for index, child in enumerate(element.children):
            if isinstance(child, XmlElement) and child.tag.rpartition(":")[2] == child_name:
                del element.children[index]
                return True
    return False


def drop_required_attribute(root: XmlElement, attribute_name: str) -> bool:
    """Remove the first occurrence of ``attribute_name`` anywhere."""
    for element in _walk(root):
        if attribute_name in element.attributes:
            del element.attributes[attribute_name]
            return True
    return False


def corrupt_enumeration_value(root: XmlElement, element_name: str, bad_value: str = "__not_a_code__") -> bool:
    """Replace the text of the first ``element_name`` element with ``bad_value``."""
    for element in _walk(root):
        if element.tag.rpartition(":")[2] == element_name:
            element.children = [child for child in element.children if isinstance(child, XmlElement)]
            element.children.insert(0, bad_value)
            return True
    return False


def add_unknown_child(root: XmlElement, under: str | None = None, tag: str = "Bogus") -> bool:
    """Append an undeclared child element (to ``under`` or the root)."""
    target = root
    if under is not None:
        target = next(
            (element for element in _walk(root) if element.tag.rpartition(":")[2] == under),
            root,
        )
    prefix = root.tag.partition(":")[0] if ":" in root.tag else None
    target.add(f"{prefix}:{tag}" if prefix else tag)
    return True


def add_unknown_attribute(root: XmlElement, name: str = "bogus", value: str = "x") -> bool:
    """Set an undeclared (non-xmlns) attribute on the root element."""
    root.attributes[name] = value
    return True
