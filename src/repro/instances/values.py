"""Deterministic sample values for built-in types and facets."""

from __future__ import annotations

from repro.xmlutil.qname import QName
from repro.xsd.components import Facet

#: Sample lexical value per XSD built-in local name.
_SAMPLES: dict[str, str] = {
    "string": "Sample text",
    "normalizedString": "Sample text",
    "token": "sample-token",
    "language": "en",
    "NCName": "SampleName",
    "Name": "SampleName",
    "ID": "id-1",
    "IDREF": "id-1",
    "anyURI": "urn:example:sample",
    "boolean": "true",
    "integer": "42",
    "nonNegativeInteger": "42",
    "positiveInteger": "42",
    "nonPositiveInteger": "-42",
    "negativeInteger": "-42",
    "long": "42",
    "int": "42",
    "short": "42",
    "byte": "42",
    "unsignedLong": "42",
    "unsignedInt": "42",
    "unsignedShort": "42",
    "unsignedByte": "42",
    "decimal": "42.00",
    "float": "42.0",
    "double": "42.0",
    "date": "2007-04-15",
    "time": "10:30:00",
    "dateTime": "2007-04-15T10:30:00Z",
    "duration": "P1D",
    "gYear": "2007",
    "gYearMonth": "2007-04",
    "base64Binary": "U2FtcGxl",
    "hexBinary": "53616d706c65",
}


def sample_value(base: QName, facets: list[Facet]) -> str:
    """A value lexically valid for ``base`` and its constraining facets.

    Enumeration facets dominate: the first enumerated value is used.
    Length/pattern facets beyond the enumeration case are satisfied on a
    best-effort basis (the NDR generator never emits them).
    """
    for facet in facets:
        if facet.kind == "enumeration":
            return facet.value
    value = _SAMPLES.get(base.local, "Sample text")
    for facet in facets:
        if facet.kind == "length":
            value = ("x" * int(facet.value))[: int(facet.value)]
        elif facet.kind == "minLength" and len(value) < int(facet.value):
            value = value + "x" * (int(facet.value) - len(value))
        elif facet.kind == "maxLength" and len(value) > int(facet.value):
            value = value[: int(facet.value)]
        elif facet.kind == "minInclusive":
            value = facet.value
        elif facet.kind == "maxInclusive":
            value = facet.value
    return value
