"""Generate valid sample instances from a :class:`SchemaSet`.

The generator walks type definitions exactly like the validator does (same
flattening of simpleContent chains, same occurrence rules) and emits an
:class:`repro.xmlutil.XmlElement` tree with one prefix per target namespace
declared on the root element.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.xmlutil.qname import QName
from repro.xmlutil.writer import XmlElement, XmlWriter
from repro.xsd.components import (
    XSD_NS,
    AttributeDecl,
    AttributeUse,
    ChoiceGroup,
    ComplexType,
    ElementDecl,
    SequenceGroup,
    SimpleType,
)
from repro.xsd.validator import SchemaSet
from repro.instances.values import sample_value


class InstanceGenerator:
    """Builds deterministic valid instances for global elements.

    ``fill_optional`` emits optional elements/attributes too (one occurrence
    each); ``repeat_unbounded`` controls how many occurrences an unbounded
    particle gets; ``max_depth`` guards against recursive compositions by
    dropping *optional* content beyond the limit (required recursion deeper
    than four times the limit raises :class:`SchemaError`).
    """

    def __init__(
        self,
        schema_set: SchemaSet,
        fill_optional: bool = True,
        repeat_unbounded: int = 2,
        max_depth: int = 24,
    ) -> None:
        self.schema_set = schema_set
        self.fill_optional = fill_optional
        self.repeat_unbounded = repeat_unbounded
        self.max_depth = max_depth
        self._prefixes: dict[str, str] = {}
        for index, namespace in enumerate(sorted(schema_set.namespaces), start=1):
            if namespace:
                self._prefixes[namespace] = f"ns{index}"

    # -- public API -----------------------------------------------------------------

    def generate(self, root: QName | str, namespace: str | None = None) -> XmlElement:
        """Build an instance for the global element ``root``.

        ``root`` may be a :class:`QName` or a local name; a local name is
        resolved against ``namespace`` when given, otherwise against every
        registered namespace (must be unambiguous).
        """
        qname = self._resolve_root(root, namespace)
        decl = self.schema_set.find_global_element(qname)
        if decl is None:
            raise SchemaError(f"no global element {qname.clark()} in the schema set")
        element = self._element(decl, self.schema_set.schema_for(qname.namespace).target_namespace, 0)
        for namespace_uri, prefix in sorted(self._prefixes.items()):
            element.attributes[f"xmlns:{prefix}"] = namespace_uri
        return element

    def generate_string(self, root: QName | str, namespace: str | None = None) -> str:
        """Like :meth:`generate` but rendered to a document string."""
        return XmlWriter().to_string(self.generate(root, namespace))

    # -- internals ----------------------------------------------------------------------

    def _resolve_root(self, root: QName | str, namespace: str | None) -> QName:
        if isinstance(root, QName):
            return root
        if namespace is not None:
            return QName(namespace, root)
        matches = [
            QName(candidate, root)
            for candidate in self.schema_set.namespaces
            if self.schema_set.find_global_element(QName(candidate, root)) is not None
        ]
        if len(matches) != 1:
            raise SchemaError(
                f"global element {root!r} resolves to {len(matches)} namespaces; "
                f"pass the namespace explicitly"
            )
        return matches[0]

    def _tag(self, qname: QName) -> str:
        prefix = self._prefixes.get(qname.namespace)
        return qname.prefixed(prefix)

    def _element(self, decl: ElementDecl, schema_ns: str, depth: int) -> XmlElement:
        if decl.is_ref:
            target = self.schema_set.find_global_element(decl.ref)
            if target is None:
                raise SchemaError(f"dangling element reference {decl.ref.clark()}")
            return self._element(target, decl.ref.namespace, depth)
        qname = QName(schema_ns, decl.name)
        element = XmlElement(self._tag(qname))
        if decl.type is None:
            return element
        self._fill(element, decl.type, depth)
        return element

    def _fill(self, element: XmlElement, type_name: QName, depth: int) -> None:
        if type_name.namespace == XSD_NS:
            element.text(sample_value(type_name, []))
            return
        definition = self.schema_set.find_type(type_name)
        if definition is None:
            raise SchemaError(f"unresolved type {type_name.clark()}")
        if isinstance(definition, SimpleType):
            base, facets = self._flatten_simple(type_name)
            element.text(sample_value(base, facets))
            return
        if definition.simple_content is not None:
            base, attributes, facets = self._flatten_content(definition)
            for attribute in attributes:
                self._attribute(element, attribute)
            element.text(sample_value(base, facets))
            return
        for attribute in definition.attributes:
            self._attribute(element, attribute)
        if definition.particle is not None:
            schema = self.schema_set.schema_for(type_name.namespace)
            self._particle(element, definition.particle, schema.target_namespace, depth)

    def _attribute(self, element: XmlElement, attribute: AttributeDecl) -> None:
        if attribute.use is AttributeUse.PROHIBITED:
            return
        if attribute.use is AttributeUse.OPTIONAL and not self.fill_optional:
            return
        base, facets = self._flatten_simple(attribute.type)
        element.attributes[attribute.name] = sample_value(base, facets)

    def _particle(
        self,
        element: XmlElement,
        particle: ElementDecl | SequenceGroup | ChoiceGroup,
        schema_ns: str,
        depth: int,
    ) -> None:
        occurrences = self._occurrences(particle.min_occurs, particle.max_occurs, depth)
        for _ in range(occurrences):
            if isinstance(particle, ElementDecl):
                element.children.append(self._element(particle, schema_ns, depth + 1))
            elif isinstance(particle, SequenceGroup):
                for child in particle.particles:
                    self._particle(element, child, schema_ns, depth)
            else:  # ChoiceGroup: pick the first branch deterministically
                if particle.particles:
                    self._particle(element, particle.particles[0], schema_ns, depth)

    def _occurrences(self, min_occurs: int, max_occurs: int | None, depth: int) -> int:
        if min_occurs > 0 and depth > self.max_depth * 4:
            # Only *required* content can force unbounded nesting; optional
            # content is already cut at max_depth below.
            raise SchemaError(
                f"required recursion deeper than {self.max_depth * 4} levels; "
                f"the schema demands infinitely nested content"
            )
        if depth > self.max_depth:
            return min_occurs
        if not self.fill_optional:
            return min_occurs
        if max_occurs is None:
            return max(min_occurs, self.repeat_unbounded)
        return max(min_occurs, min(1, max_occurs))

    # -- flattening (mirrors the validator) ----------------------------------------------

    def _flatten_simple(self, type_name: QName):
        if type_name.namespace == XSD_NS:
            return type_name, []
        definition = self.schema_set.find_type(type_name)
        if definition is None or isinstance(definition, ComplexType):
            raise SchemaError(f"cannot flatten simple type {type_name.clark()}")
        base, facets = self._flatten_simple(definition.base)
        return base, facets + list(definition.facets)

    def _flatten_content(self, definition: ComplexType):
        content = definition.simple_content
        assert content is not None
        base = content.base
        facets = list(content.facets)
        if base.namespace == XSD_NS:
            return base, list(content.attributes), facets
        base_definition = self.schema_set.find_type(base)
        if base_definition is None:
            raise SchemaError(f"unresolved simpleContent base {base.clark()}")
        if isinstance(base_definition, SimpleType):
            flat_base, flat_facets = self._flatten_simple(base)
            return flat_base, list(content.attributes), flat_facets + facets
        inherited_base, inherited_attrs, inherited_facets = self._flatten_content(base_definition)
        if content.derivation == "extension":
            merged = inherited_attrs + content.attributes
        else:
            by_name = {attribute.name: attribute for attribute in inherited_attrs}
            for attribute in content.attributes:
                by_name[attribute.name] = attribute
            merged = list(by_name.values())
        return inherited_base, merged, inherited_facets + facets
