"""Sample-instance tooling for generated schemas.

The paper's pipeline ends with schemas "used to validate XML messages"; this
package produces such messages:

* :mod:`repro.instances.generator` -- build a valid sample instance for any
  global element of a :class:`repro.xsd.SchemaSet`,
* :mod:`repro.instances.values` -- deterministic sample values per built-in
  type and facet set,
* :mod:`repro.instances.mutate` -- controlled corruptions used by negative
  tests and the end-to-end benchmark (a validator that accepts everything
  proves nothing),
* :mod:`repro.instances.pipeline` -- batch validation of whole corpora
  (compiled or interpreted engine, optional thread-pool fan-out,
  per-document fault isolation).
"""

from repro.instances.generator import InstanceGenerator
from repro.instances.mutate import (
    add_unknown_attribute,
    add_unknown_child,
    corrupt_enumeration_value,
    drop_required_attribute,
    drop_required_child,
)
from repro.instances.pipeline import (
    BatchReport,
    DocumentReport,
    ValidationPipeline,
    discover_corpus,
)
from repro.instances.values import sample_value

__all__ = [
    "BatchReport",
    "DocumentReport",
    "InstanceGenerator",
    "ValidationPipeline",
    "discover_corpus",
    "add_unknown_attribute",
    "add_unknown_child",
    "corrupt_enumeration_value",
    "drop_required_attribute",
    "drop_required_child",
    "sample_value",
]
