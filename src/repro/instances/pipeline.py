"""Batch instance validation: a corpus in, located per-document reports out.

The paper's pipeline ends with generated schemas "used to validate XML
messages exchanged during a business process" (section 4).  This module is
that workload's serving layer:

* :func:`discover_corpus` -- resolve a corpus argument (directory, single
  ``.xml`` file, or manifest file listing one document path per line) to a
  deterministic document list,
* :class:`DocumentReport` / :class:`BatchReport` -- the result model; a
  malformed or unreadable document becomes a located report entry, never an
  exception that aborts the batch,
* :class:`ValidationPipeline` -- validates every document with either the
  compiled engine (a cached :class:`~repro.xsd.CompiledSchemaSet`) or the
  interpreted ``validate_instance`` path, serially or fanned out over a
  thread pool.

Observability: the batch runs under an ``instances.batch`` span with one
``instances.validate`` child span per document (worker threads snapshot the
trace context per submit, so child spans parent correctly across threads),
and records ``instances.docs_total`` / ``instances.docs_invalid`` counters
plus an ``instances.validate_ms`` histogram.

Report stability: :meth:`BatchReport.to_json` contains only document
identities and findings -- no timings, job counts or engine names -- so the
serialized report is byte-identical across ``--jobs`` values and across
engines (the compiled engine reproduces the interpreted engine's problem
list exactly).
"""

from __future__ import annotations

import contextvars
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import InstanceValidationError, ReproError
from repro.obs.metrics import counter, histogram
from repro.obs.trace import span
from repro.xsd.compiled import CompiledSchemaSet, compile_schema_set
from repro.xsd.validator import SchemaSet, ValidationProblem, validate_instance

__all__ = [
    "BatchReport",
    "DocumentReport",
    "ValidationPipeline",
    "discover_corpus",
]

_ENGINES = ("compiled", "interpreted")


# -- corpus discovery ----------------------------------------------------------


def discover_corpus(corpus: str | Path) -> list[Path]:
    """Resolve a corpus argument to a sorted, deterministic document list.

    A directory yields every ``*.xml`` under it (recursively, sorted); a
    ``.xml`` file yields itself; any other file is read as a manifest with
    one document path per line (blank lines and ``#`` comments ignored,
    relative paths resolved against the manifest's directory).
    """
    root = Path(corpus)
    if root.is_dir():
        # os.walk instead of Path.rglob: same files, same sorted order,
        # a fraction of the pathlib overhead on large corpora.
        found: list[Path] = []
        for directory, _dirnames, filenames in os.walk(root):
            base = Path(directory)
            for filename in filenames:
                if filename.endswith(".xml"):
                    found.append(base / filename)
        return sorted(found)
    if not root.is_file():
        raise InstanceValidationError(f"corpus not found: {root}")
    if root.suffix.lower() == ".xml":
        return [root]
    paths: list[Path] = []
    for line in root.read_text(encoding="utf-8").splitlines():
        entry = line.strip()
        if not entry or entry.startswith("#"):
            continue
        candidate = Path(entry)
        if not candidate.is_absolute():
            candidate = root.parent / candidate
        paths.append(candidate)
    return paths


# -- report model --------------------------------------------------------------


@dataclass
class DocumentReport:
    """The outcome of validating one document of a corpus.

    Exactly one of three shapes: valid (``ok`` and no problems), invalid
    (``problems`` non-empty), or faulted (``error`` set -- the document
    could not be read or parsed; validation never ran).
    """

    path: str
    ok: bool
    problems: list[ValidationProblem] = field(default_factory=list)
    error: str | None = None

    def to_json(self) -> dict:
        """Deterministic JSON shape (no timings; stable across jobs/engines)."""
        payload: dict = {"path": self.path, "ok": self.ok}
        if self.error is not None:
            payload["error"] = self.error
        else:
            payload["problems"] = [
                {"path": problem.path, "message": problem.message}
                for problem in self.problems
            ]
        return payload


@dataclass
class BatchReport:
    """A whole corpus run: per-document reports plus aggregates."""

    documents: list[DocumentReport]
    jobs: int
    engine: str
    elapsed_ms: float

    @property
    def docs_total(self) -> int:
        return len(self.documents)

    @property
    def docs_invalid(self) -> int:
        return sum(1 for report in self.documents if not report.ok)

    @property
    def ok(self) -> bool:
        return self.docs_invalid == 0

    def to_json(self) -> dict:
        """Deterministic JSON shape -- byte-identical across jobs and engines.

        Deliberately excludes ``jobs``, ``engine`` and ``elapsed_ms``: the
        report describes the corpus, not the run.
        """
        return {
            "docs_total": self.docs_total,
            "docs_invalid": self.docs_invalid,
            "documents": [report.to_json() for report in self.documents],
        }

    def to_text(self) -> str:
        """Human-readable summary, one line per finding."""
        lines: list[str] = []
        for report in self.documents:
            if report.error is not None:
                lines.append(f"FAULT {report.path}: {report.error}")
            elif report.problems:
                lines.append(f"INVALID {report.path}")
                for problem in report.problems:
                    lines.append(f"  {problem}")
            else:
                lines.append(f"ok {report.path}")
        lines.append(
            f"{self.docs_total} document(s), {self.docs_invalid} invalid"
        )
        return "\n".join(lines)


# -- the pipeline --------------------------------------------------------------


class ValidationPipeline:
    """Validate corpora of instance documents against one schema set.

    ``engine="compiled"`` compiles the schema set once (through the
    process-wide :class:`~repro.xsd.CompilationCache`, so repeated
    pipelines over the same schemas reuse plans); ``engine="interpreted"``
    calls :func:`validate_instance` per document.  Both produce identical
    reports -- the compiled engine exists purely for throughput.
    """

    def __init__(
        self,
        schema_set: SchemaSet,
        *,
        engine: str = "compiled",
        jobs: int = 1,
        fail_fast: bool = False,
    ) -> None:
        if engine not in _ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
        self.schema_set = schema_set
        self.engine = engine
        self.jobs = max(1, int(jobs))
        self.fail_fast = fail_fast
        self._compiled: CompiledSchemaSet | None = (
            compile_schema_set(schema_set) if engine == "compiled" else None
        )
        # Resolve the instruments once: the registry lookup takes a lock
        # and renders labels, which is measurable at per-document rates.
        self._docs_total = counter("instances.docs_total")
        self._docs_invalid = counter("instances.docs_invalid")
        self._validate_ms = histogram("instances.validate_ms")

    # -- single documents ------------------------------------------------------

    def validate_text(self, text: str) -> list[ValidationProblem]:
        """Validate one document given as XML text."""
        if self._compiled is not None:
            return self._compiled.validate(text)
        return validate_instance(self.schema_set, text)

    def validate_path(self, path: str | Path, label: str | None = None) -> DocumentReport:
        """Validate one document file; faults become the report, not raises."""
        name = label if label is not None else str(path)
        started = time.perf_counter()
        with span("instances.validate", document=name, engine=self.engine):
            try:
                if not isinstance(path, Path):
                    path = Path(path)
                text = path.read_bytes().decode("utf-8")
                problems = self.validate_text(text)
            except (InstanceValidationError, OSError, UnicodeDecodeError) as error:
                report = DocumentReport(path=name, ok=False, error=str(error))
            except ReproError as error:
                # Schema-side defects (e.g. a cyclic reference) are still
                # isolated per document so the rest of the batch completes.
                report = DocumentReport(path=name, ok=False, error=str(error))
            else:
                report = DocumentReport(path=name, ok=not problems, problems=problems)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self._validate_ms.observe(elapsed_ms)
        self._docs_total.inc()
        if not report.ok:
            self._docs_invalid.inc()
        return report

    def validate_string(self, text: str, label: str) -> DocumentReport:
        """Validate one in-memory document; the fault-isolated twin of
        :meth:`validate_path` for callers (e.g. ``upcc serve``) whose
        documents arrive over the wire instead of from disk."""
        started = time.perf_counter()
        with span("instances.validate", document=label, engine=self.engine):
            try:
                problems = self.validate_text(text)
            except ReproError as error:
                report = DocumentReport(path=label, ok=False, error=str(error))
            else:
                report = DocumentReport(path=label, ok=not problems, problems=problems)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self._validate_ms.observe(elapsed_ms)
        self._docs_total.inc()
        if not report.ok:
            self._docs_invalid.inc()
        return report

    # -- batches ---------------------------------------------------------------

    def run(self, corpus: str | Path) -> BatchReport:
        """Validate every document of ``corpus``; never raises per-document."""
        paths = discover_corpus(corpus)
        labels = [str(path) for path in paths]
        started = time.perf_counter()
        with span(
            "instances.batch",
            corpus=str(corpus),
            documents=len(paths),
            jobs=self.jobs,
            engine=self.engine,
        ):
            if self.jobs > 1 and not self.fail_fast and len(paths) > 1:
                reports = self._run_parallel(paths, labels)
            else:
                reports = self._run_serial(paths, labels)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        return BatchReport(
            documents=reports,
            jobs=self.jobs,
            engine=self.engine,
            elapsed_ms=elapsed_ms,
        )

    def run_strings(self, documents: list[tuple[str, str]]) -> BatchReport:
        """Validate ``(name, xml text)`` pairs; the in-memory twin of :meth:`run`.

        Always serial: the serving layer calls this once per request from a
        worker thread that is already one lane of a pool, so fanning out
        again would oversubscribe the process.
        """
        started = time.perf_counter()
        with span(
            "instances.batch",
            corpus="<memory>",
            documents=len(documents),
            jobs=1,
            engine=self.engine,
        ):
            reports: list[DocumentReport] = []
            for name, text in documents:
                report = self.validate_string(text, name)
                reports.append(report)
                if self.fail_fast and not report.ok:
                    break
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        return BatchReport(
            documents=reports,
            jobs=1,
            engine=self.engine,
            elapsed_ms=elapsed_ms,
        )

    def _run_serial(self, paths: list[Path], labels: list[str]) -> list[DocumentReport]:
        reports: list[DocumentReport] = []
        for path, label in zip(paths, labels):
            report = self.validate_path(path, label)
            reports.append(report)
            if self.fail_fast and not report.ok:
                break
        return reports

    def _run_parallel(self, paths: list[Path], labels: list[str]) -> list[DocumentReport]:
        # One contiguous chunk per worker, not one future per document:
        # at sub-millisecond document cost the submit/future overhead
        # would otherwise swamp the fan-out.  Chunks are reassembled by
        # input index, so the report order (and therefore the serialized
        # report) is independent of completion order -- --jobs 4 output
        # is byte-identical to --jobs 1.
        chunk_size = -(-len(paths) // self.jobs)  # ceil division
        chunks = [
            list(zip(paths[offset : offset + chunk_size], labels[offset : offset + chunk_size]))
            for offset in range(0, len(paths), chunk_size)
        ]

        def run_chunk(chunk: list[tuple[Path, str]]) -> list[DocumentReport]:
            return [self.validate_path(path, label) for path, label in chunk]

        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            futures = []
            for chunk in chunks:
                # Snapshot the trace context (the open instances.batch span)
                # per submit; Context.run is single-flight, so each task
                # needs its own copy.
                task_context = contextvars.copy_context()
                futures.append(pool.submit(task_context.run, run_chunk, chunk))
            reports: list[DocumentReport] = []
            for future in futures:
                reports.extend(future.result())
            return reports
