"""Shared ABIE-to-complexType translation for DOC and BIE libraries.

Implements the core rules of the paper's section 4.1:

* "For every aggregate business information entity a complexType is defined
  which is named after the business entity plus a Type postfix" -- a
  sequence of the BBIE elements first, then the ASBIE elements;
* BBIE data types and multiplicities are "taken according to the definition
  in the UML model and transferred into the XML schema";
* ASBIE names are compound (role + target ABIE name), the type is the
  target ABIE's type, multiplicities come from the aggregation;
* an ASBIE connected by *shared aggregation* is "first declared globally
  and then referenced" (Figure 7), while composition-connected ASBIEs are
  typed inline (Figure 6).

Every construct is traced: local BBIE/ASBIE elements through
``builder.record`` (paths like ``HoardingPermitType/StartDate``), top-level
globals and the complexType through ``builder.emit``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ccts.bie import Abie, Asbie
from repro.ndr.names import asbie_element_name, bbie_element_name, complex_type_name
from repro.uml.association import AggregationKind
from repro.xsd.components import ComplexType, ElementDecl, SequenceGroup

if TYPE_CHECKING:  # pragma: no cover
    from repro.xsdgen.generator import SchemaBuilder


def build_abie_complex_type(
    builder: "SchemaBuilder", abie: Abie
) -> tuple[list[tuple[ElementDecl, Asbie]], ComplexType]:
    """Translate one ABIE; returns ((global element, source ASBIE) pairs, complexType)."""
    type_name = complex_type_name(abie.name)
    sequence = SequenceGroup()
    global_elements: list[tuple[ElementDecl, Asbie]] = []

    for bbie in abie.bbies:
        data_type = bbie.data_type
        if data_type is None:
            builder.generator.session.fail(
                f"BBIE {abie.name}.{bbie.name} has no CDT/QDT type; cannot generate an element"
            )
        type_library = builder.generator.library_of(data_type)
        type_qname = builder.qname_in(type_library, complex_type_name(data_type.name))
        element_name = bbie_element_name(bbie.name)
        sequence.particles.append(
            ElementDecl(
                name=element_name,
                type=type_qname,
                min_occurs=bbie.multiplicity.lower,
                max_occurs=bbie.multiplicity.upper,
                annotation=builder.annotation_for(bbie, "BBIE", bbie.den()),
            )
        )
        builder.record(
            kind="element",
            name=element_name,
            path=f"{type_name}/{element_name}",
            source=bbie,
            rule="NDR-BBIE-EL",
            type_ref=type_qname,
        )

    for asbie in abie.asbies:
        target = asbie.target
        target_library = builder.generator.library_of(target)
        type_qname = builder.qname_in(target_library, complex_type_name(target.name))
        element_name = asbie_element_name(asbie.role, target.name)
        as_ref = (
            asbie.aggregation is AggregationKind.SHARED
            and builder.generator.options.shared_aggregation_as_ref
        )
        if as_ref:
            if not any(g.name == element_name for g, _ in global_elements):
                global_elements.append(
                    (
                        ElementDecl(
                            name=element_name,
                            type=type_qname,
                            annotation=builder.annotation_for(asbie, "ASBIE", asbie.den()),
                        ),
                        asbie,
                    )
                )
            sequence.particles.append(
                ElementDecl(
                    ref=builder.own_qname(element_name),
                    min_occurs=asbie.multiplicity.lower,
                    max_occurs=asbie.multiplicity.upper,
                )
            )
            builder.record(
                kind="element",
                name=element_name,
                path=f"{type_name}/{element_name}",
                source=asbie,
                rule="NDR-ASBIE-REF",
                type_ref=type_qname,
            )
        else:
            sequence.particles.append(
                ElementDecl(
                    name=element_name,
                    type=type_qname,
                    min_occurs=asbie.multiplicity.lower,
                    max_occurs=asbie.multiplicity.upper,
                    annotation=builder.annotation_for(asbie, "ASBIE", asbie.den()),
                )
            )
            builder.record(
                kind="element",
                name=element_name,
                path=f"{type_name}/{element_name}",
                source=asbie,
                rule="NDR-ASBIE-INLINE",
                type_ref=type_qname,
            )

    complex_type = ComplexType(
        name=type_name,
        particle=sequence,
        annotation=builder.annotation_for(abie, "ABIE", abie.den()),
    )
    return global_elements, complex_type


def append_abie(builder: "SchemaBuilder", abie: Abie) -> None:
    """Append an ABIE's globals-then-complexType to the schema (Figure-7 order)."""
    global_elements, complex_type = build_abie_complex_type(builder, abie)
    existing_globals = {item.name for item in builder.schema.global_elements}
    for element, asbie in global_elements:
        if element.name not in existing_globals:
            builder.emit(element, source=asbie, rule="NDR-ASBIE-REF", type_ref=element.type)
    builder.emit(complex_type, source=abie, rule="NDR-ABIE-CT")
