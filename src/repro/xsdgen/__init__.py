"""The XSD generator: UPCC model -> XML schemas per the NDR.

This is the paper's section-4 contribution.  The entry point is
:class:`SchemaGenerator`; one call generates the schema for a chosen
library plus -- transitively -- a schema for every library it references
("Relevant schemas are automatically generated and imported for every
element defined in a different package and used in the DOCLibrary").

Per-library generation rules live in their own modules, one per Figure of
the paper:

* :mod:`repro.xsdgen.doc_library` (Figure 6) and
  :mod:`repro.xsdgen.bie_library` (Figure 7) -- ABIE complex types, ASBIE
  compound names, composition-inline vs shared-aggregation global+ref,
* :mod:`repro.xsdgen.cdt_library` (Figure 8) -- simpleContent extension
  with supplementary-component attributes,
* :mod:`repro.xsdgen.qdt_library` -- enum-restricted extension or
  CDT restriction,
* :mod:`repro.xsdgen.enum_library` -- token-based enumeration simple types.
"""

from repro.xsdgen.cache import (
    CachedGeneration,
    GenerationCache,
    cache_for_directory,
    fingerprint_library,
    get_generation_cache,
    library_dependencies,
    set_generation_cache,
)
from repro.xsdgen.docgen import document_schemas, write_documentation
from repro.xsdgen.generator import (
    GeneratedSchema,
    GenerationResult,
    LibraryFailure,
    SchemaGenerator,
)
from repro.xsdgen.primitives import builtin_for_primitive_name, builtin_or_string
from repro.xsdgen.provenance import (
    NDR_RULES,
    CoverageReport,
    ProvenanceIndex,
    ProvenanceRecord,
    records_from_schema_text,
)
from repro.xsdgen.session import GenerationOptions, GenerationSession, wrap_build_errors

__all__ = [
    "CachedGeneration",
    "CoverageReport",
    "GeneratedSchema",
    "GenerationCache",
    "GenerationOptions",
    "GenerationResult",
    "GenerationSession",
    "LibraryFailure",
    "NDR_RULES",
    "ProvenanceIndex",
    "ProvenanceRecord",
    "SchemaGenerator",
    "records_from_schema_text",
    "wrap_build_errors",
    "builtin_for_primitive_name",
    "builtin_or_string",
    "cache_for_directory",
    "document_schemas",
    "fingerprint_library",
    "get_generation_cache",
    "library_dependencies",
    "set_generation_cache",
]
