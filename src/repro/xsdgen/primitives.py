"""Mapping from CCTS primitive types to XSD built-ins.

Paper section 4.1: "For PRIMLibraries currently no schema generation
mechanism is implemented.  Where primitive types are needed (String,
Integer ...) the build-in types of the XSD schema are taken."
"""

from __future__ import annotations

from repro.xmlutil.qname import QName
from repro.xsd.components import XSD_NS

#: CCTS primitive name -> XSD built-in local name.
PRIMITIVE_BUILTINS: dict[str, str] = {
    "String": "string",
    "NormalizedString": "normalizedString",
    "Token": "token",
    "Integer": "integer",
    "Int": "int",
    "Long": "long",
    "Short": "short",
    "NonNegativeInteger": "nonNegativeInteger",
    "PositiveInteger": "positiveInteger",
    "Decimal": "decimal",
    "Double": "double",
    "Float": "float",
    "Boolean": "boolean",
    "Date": "date",
    "Time": "time",
    "DateTime": "dateTime",
    "Duration": "duration",
    "Binary": "base64Binary",
    "Base64Binary": "base64Binary",
    "HexBinary": "hexBinary",
    "URI": "anyURI",
    "AnyURI": "anyURI",
    "Language": "language",
    "TimePoint": "dateTime",
}


def builtin_for_primitive_name(name: str) -> QName | None:
    """The XSD built-in for a CCTS primitive name, or None when unknown."""
    local = PRIMITIVE_BUILTINS.get(name)
    if local is None:
        return None
    return QName(XSD_NS, local)


def builtin_or_string(name: str) -> QName:
    """Like :func:`builtin_for_primitive_name` but falls back to ``xsd:string``."""
    return builtin_for_primitive_name(name) or QName(XSD_NS, "string")
