"""Mapping from CCTS primitive types to XSD built-ins.

Paper section 4.1: "For PRIMLibraries currently no schema generation
mechanism is implemented.  Where primitive types are needed (String,
Integer ...) the build-in types of the XSD schema are taken."
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.xmlutil.qname import QName
from repro.xsd.components import XSD_NS

if TYPE_CHECKING:  # pragma: no cover
    from repro.uml.classifier import Classifier
    from repro.xsdgen.generator import SchemaBuilder

#: CCTS primitive name -> XSD built-in local name.
PRIMITIVE_BUILTINS: dict[str, str] = {
    "String": "string",
    "NormalizedString": "normalizedString",
    "Token": "token",
    "Integer": "integer",
    "Int": "int",
    "Long": "long",
    "Short": "short",
    "NonNegativeInteger": "nonNegativeInteger",
    "PositiveInteger": "positiveInteger",
    "Decimal": "decimal",
    "Double": "double",
    "Float": "float",
    "Boolean": "boolean",
    "Date": "date",
    "Time": "time",
    "DateTime": "dateTime",
    "Duration": "duration",
    "Binary": "base64Binary",
    "Base64Binary": "base64Binary",
    "HexBinary": "hexBinary",
    "URI": "anyURI",
    "AnyURI": "anyURI",
    "Language": "language",
    "TimePoint": "dateTime",
}


def builtin_for_primitive_name(name: str) -> QName | None:
    """The XSD built-in for a CCTS primitive name, or None when unknown."""
    local = PRIMITIVE_BUILTINS.get(name)
    if local is None:
        return None
    return QName(XSD_NS, local)


def builtin_or_string(name: str) -> QName:
    """Like :func:`builtin_for_primitive_name` but falls back to ``xsd:string``."""
    return builtin_for_primitive_name(name) or QName(XSD_NS, "string")


def record_primitive_mapping(
    builder: "SchemaBuilder", classifier: "Classifier", path: str
) -> None:
    """Record a primitive-to-built-in substitution at ``path``.

    PRIMLibraries generate no schema of their own, so the only observable
    artifact of a primitive type is the XSD built-in standing in for it at
    a CON/SUP use site.  The classifier is a raw UML element (not a CCTS
    wrapper), so the record is built directly rather than via
    :func:`~repro.xsdgen.provenance.record_for`.
    """
    from repro.obs.metrics import counter
    from repro.xsdgen.provenance import ProvenanceRecord

    qname = builtin_or_string(classifier.name)
    counter("xsdgen.provenance_records").inc()
    builder.provenance.append(
        ProvenanceRecord(
            target_namespace=builder.namespace.urn,
            schema_file=builder.schema_file,
            target_kind="builtin",
            target_name=qname.local,
            target_path=path,
            source_stereotype="PRIM",
            source_name=classifier.name,
            source_path=classifier.qualified_name,
            source_id=getattr(classifier, "xmi_id", None),
            rule="NDR-PRIM-BUILTIN",
        )
    )
