"""The generation orchestrator.

:class:`SchemaGenerator` walks the library dependency graph, memoizes one
schema per (library, DOC root) pair, consults the fingerprint-keyed
:class:`~repro.xsdgen.cache.GenerationCache` when caching is enabled, and
resolves cross-library type references into imports with NDR-conformant
prefixes.  :class:`SchemaBuilder` is the per-document working context the
library builders write into.

Concurrency: ``GenerationOptions.jobs > 1`` builds independent libraries
in parallel.  The library dependency DAG is derived structurally
(:func:`repro.xsdgen.cache.library_dependencies`), condensed into strongly
connected components (cyclic BIE libraries build together on one thread),
topologically ordered and scheduled on a ``ThreadPoolExecutor``.  Each
library's schema is still built by exactly one thread, so the output is
byte-identical to a serial run.
"""

from __future__ import annotations

import contextvars
import threading
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path

from repro.ccts.base import ElementWrapper
from repro.ccts.bie import Abie
from repro.ccts.libraries import DocLibrary, Library
from repro.ccts.model import CctsModel
from repro.errors import CctsError, GenerationError, ReproError
from repro.ndr.annotations import CCTS_DOCUMENTATION_NS, annotation_entries_for
from repro.obs.logging_bridge import get_logger
from repro.obs.metrics import counter
from repro.obs.trace import span
from repro.ndr.namespaces import LibraryNamespace, NamespacePolicy, PrefixAllocator, prefix_stem
from repro.profile import (
    BIE_LIBRARY,
    CDT_LIBRARY,
    DOC_LIBRARY,
    ENUM_LIBRARY,
    PRIM_LIBRARY,
    QDT_LIBRARY,
)
from repro.uml.elements import structural_revision
from repro.xmlutil.qname import QName
from repro.xsd.components import (
    XSD_NS,
    Annotation,
    ComplexType,
    ElementDecl,
    ImportDecl,
    Schema,
    SimpleType,
)
from repro.xsd.validator import SchemaSet
from repro.xsd.writer import schema_to_string
from repro.xsdgen.cache import (
    CachedGeneration,
    FingerprintContext,
    GenerationCache,
    cache_for_directory,
    fingerprint_library,
    get_generation_cache,
    library_dependencies,
)
from repro.xsdgen.provenance import (
    CoverageReport,
    ProvenanceIndex,
    ProvenanceRecord,
    coverage,
    record_for,
)
from repro.xsdgen.session import GenerationOptions, GenerationSession

_log = get_logger("repro.xsdgen")

#: Memo key: (identity of the library package, resolved DOC root or None).
_MemoKey = tuple[int, "str | None"]

#: Library stereotypes that generate a schema document of their own --
#: the only ones the parallel scheduler can hand to a worker thread.
_SCHEMA_STEREOTYPES = frozenset(
    {BIE_LIBRARY, CDT_LIBRARY, DOC_LIBRARY, ENUM_LIBRARY, QDT_LIBRARY}
)


@dataclass
class GeneratedSchema:
    """One generated schema document plus its namespace facts.

    ``provenance`` holds one :class:`~repro.xsdgen.provenance.ProvenanceRecord`
    per emitted construct, in emission order; cache hits replay the records
    that were stored with the schema.  ``embed_provenance`` (mirroring
    ``GenerationOptions.embed_provenance``) renders them into an
    ``xs:annotation/xs:appinfo`` block -- off by default, keeping the
    serialized schema byte-identical to a provenance-unaware run.
    """

    library: Library
    namespace: LibraryNamespace
    schema: Schema
    provenance: list[ProvenanceRecord] = field(default_factory=list)
    embed_provenance: bool = False

    def to_string(self) -> str:
        """Render the schema document."""
        if self.embed_provenance and self.provenance:
            return schema_to_string(
                self.schema, [record.to_dict() for record in self.provenance]
            )
        return schema_to_string(self.schema)


@dataclass
class LibraryFailure:
    """One isolated library failure from an ``on_error="collect"`` run.

    ``error`` is the exception the library's build raised (or the
    poisoning error for a library that imports a failed one); its
    ``__cause__`` links preserve the full chain back to the original
    defect, exposed as :attr:`cause_chain`.
    """

    library_name: str
    stereotype: str
    root_name: str | None
    error: ReproError

    @property
    def cause_chain(self) -> list[BaseException]:
        """The error plus every chained cause, outermost first."""
        chain: list[BaseException] = []
        current: BaseException | None = self.error
        while current is not None and current not in chain:
            chain.append(current)
            current = current.__cause__
        return chain

    def __str__(self) -> str:
        root = f" (root {self.root_name!r})" if self.root_name else ""
        causes = " <- ".join(str(cause) for cause in self.cause_chain[1:])
        suffix = f" [caused by: {causes}]" if causes else ""
        return f"{self.stereotype} {self.library_name!r}{root}: {self.error}{suffix}"


@dataclass
class GenerationResult:
    """All schemas produced by one generation run, keyed by namespace URN.

    ``schemas`` contains exactly the libraries reachable from the requested
    library in this run -- a generator reused across runs does not leak the
    previous run's schemas into later results.

    Under ``on_error="collect"`` a failing library lands in ``errors``
    instead of aborting the run, ``schemas`` holds every library that
    built (none of which import a failed one), and ``root_namespace`` is
    ``None`` when the requested library itself failed.
    """

    schemas: dict[str, GeneratedSchema] = field(default_factory=dict)
    session: GenerationSession = field(default_factory=GenerationSession)
    root_namespace: str | None = None
    errors: list[LibraryFailure] = field(default_factory=list)
    provenance: ProvenanceIndex = field(default_factory=ProvenanceIndex)

    @property
    def ok(self) -> bool:
        """True when no library failure was collected."""
        return not self.errors

    def coverage(self) -> CoverageReport:
        """Dead-model report: generated-library elements with no artifact."""
        return coverage(
            [generated.library for generated in self.schemas.values()],
            self.provenance,
        )

    def write_provenance(self, path: str | Path) -> Path:
        """Write the provenance index as a JSON-lines sidecar file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.provenance.to_jsonl() + "\n", encoding="utf-8")
        return path

    @property
    def root(self) -> GeneratedSchema:
        """The schema generated for the library the run started from."""
        if self.root_namespace is None:
            if self.errors:
                raise GenerationError(
                    f"the requested library failed to generate: {self.errors[0]}"
                )
            generated = sorted(g.library.name for g in self.schemas.values())
            if generated:
                raise GenerationError(
                    "generation produced no root schema (libraries generated: "
                    + ", ".join(generated)
                    + ")"
                )
            raise GenerationError(
                "generation produced no root schema (no libraries were generated)"
            )
        return self.schemas[self.root_namespace]

    def schema_set(self) -> SchemaSet:
        """All generated schemas as a validator-ready :class:`SchemaSet`."""
        return SchemaSet([generated.schema for generated in self.schemas.values()])

    def write_to(self, directory: str | Path) -> list[Path]:
        """Write every schema into ``directory`` using the NDR folder layout.

        Each schema lands in ``{underscored-baseURN}/{file}.xsd`` so that the
        relative ``../folder/file`` schemaLocations of the imports resolve.
        Returns the written paths in namespace order.
        """
        directory = Path(directory)
        written: list[Path] = []
        with span("xsdgen.write", directory=str(directory)) as write_span:
            for urn in sorted(self.schemas):
                generated = self.schemas[urn]
                folder = directory / generated.namespace.folder
                folder.mkdir(parents=True, exist_ok=True)
                path = folder / generated.namespace.file_name
                text = generated.to_string()
                path.write_text(text, encoding="utf-8")
                counter("xsdgen.bytes_written").inc(len(text.encode("utf-8")))
                counter("xsdgen.files_written").inc()
                written.append(path)
            write_span.set(files=len(written))
        return written


class SchemaBuilder:
    """Per-document context: the schema plus prefix/import management."""

    def __init__(self, generator: "SchemaGenerator", library: Library) -> None:
        self.generator = generator
        self.library = library
        self.namespace = generator.policy.namespace_for(library)
        self.allocator = PrefixAllocator()
        self_prefix = library.namespace_prefix or prefix_stem(library.stereotype)
        self.allocator.reserve(self_prefix, self.namespace.urn)
        self.schema = Schema(
            target_namespace=self.namespace.urn,
            prefixes={self_prefix: self.namespace.urn},
            version=library.library_version,
        )
        self._imported: set[str] = set()
        #: Libraries whose schemas this document imports, in import order --
        #: recorded so the generator can scope results and cache dependencies.
        self.imported_libraries: list[Library] = []
        #: Provenance records of every construct this document emits.
        self.provenance: list[ProvenanceRecord] = []
        self.schema_file = f"{self.namespace.folder}/{self.namespace.file_name}"
        # Figure 6 line 1 declares xmlns:ccts even with annotations omitted:
        # the add-in always binds the CCTS documentation namespace.
        self._bind_ccts_prefix()

    def _bind_ccts_prefix(self) -> None:
        if "ccts" not in self.schema.prefixes:
            self.schema.prefixes["ccts"] = CCTS_DOCUMENTATION_NS
            self.allocator.reserve("ccts", CCTS_DOCUMENTATION_NS)

    # -- cross-library references ------------------------------------------------

    def qname_in(self, library: Library, local_name: str) -> QName:
        """A QName for ``local_name`` defined by ``library``'s schema.

        When the library is not the one being generated, its schema is
        (transitively) generated, an import is recorded and a prefix bound.
        """
        if library.element is self.library.element:
            return QName(self.namespace.urn, local_name)
        generated = self.generator.ensure_library(library)
        if generated.namespace.urn not in self._imported:
            self._imported.add(generated.namespace.urn)
            self.imported_libraries.append(library)
            self.schema.imports.append(
                ImportDecl(generated.namespace.urn, generated.namespace.location)
            )
            prefix = self.allocator.allocate(generated.namespace)
            self.schema.prefixes[prefix] = generated.namespace.urn
            counter("xsdgen.imports_resolved").inc()
            self.generator.session.status(
                f"Imported {generated.namespace.urn} as prefix "
                f"{self.schema.prefix_for(generated.namespace.urn)!r}"
            )
            self.provenance.append(
                record_for(
                    namespace_urn=self.namespace.urn,
                    schema_file=self.schema_file,
                    kind="import",
                    name=generated.namespace.urn,
                    path=f"import[{generated.namespace.urn}]",
                    source=library,
                    rule="NDR-IMPORT",
                    imported_namespace=generated.namespace.urn,
                )
            )
        return QName(generated.namespace.urn, local_name)

    def own_qname(self, local_name: str) -> QName:
        """A QName in the schema being generated."""
        return QName(self.namespace.urn, local_name)

    # -- provenance-recorded emission ----------------------------------------------

    def emit(
        self,
        item: "ComplexType | SimpleType | ElementDecl",
        *,
        source: ElementWrapper,
        rule: str,
        type_ref: QName | None = None,
    ) -> None:
        """Append a top-level schema component, recording its provenance.

        The only sanctioned way for library builders to add top-level
        items (enforced by ``tools/check_provenance_recording.py``):
        every emitted component gets a :class:`ProvenanceRecord` naming
        its UML source and NDR rule.
        """
        if isinstance(item, ComplexType):
            kind = "complexType"
        elif isinstance(item, SimpleType):
            kind = "simpleType"
        elif isinstance(item, ElementDecl):
            kind = "element"
        else:  # pragma: no cover - the component model is closed
            raise GenerationError(f"cannot emit schema item {item!r}")
        self.schema.items.append(item)
        self.record(kind=kind, name=item.name, path=item.name, source=source, rule=rule, type_ref=type_ref)

    def record(
        self,
        *,
        kind: str,
        name: str,
        path: str,
        source: ElementWrapper,
        rule: str,
        type_ref: QName | None = None,
    ) -> None:
        """Record provenance for a construct emitted at ``path``.

        ``type_ref`` marks the construct's type reference; when it lives
        in another library's namespace the record carries the import edge.
        """
        imported: str | None = None
        if type_ref is not None and type_ref.namespace not in (self.namespace.urn, XSD_NS):
            imported = type_ref.namespace
        self.provenance.append(
            record_for(
                namespace_urn=self.namespace.urn,
                schema_file=self.schema_file,
                kind=kind,
                name=name,
                path=path,
                source=source,
                rule=rule,
                imported_namespace=imported,
            )
        )

    # -- annotations -----------------------------------------------------------------

    def annotation_for(self, wrapper: ElementWrapper, acronym: str, den: str | None = None) -> Annotation | None:
        """A CCTS annotation block, or None when annotations are off."""
        if not self.generator.options.annotated:
            return None
        self._bind_ccts_prefix()
        return Annotation(annotation_entries_for(wrapper, acronym, den))


class SchemaGenerator:
    """Generates NDR-conformant schemas from a core-components model.

    ``cache`` overrides cache selection explicitly; otherwise
    ``options.cache_dir`` selects the shared disk-backed cache for that
    directory, ``options.use_cache`` the shared in-process cache, and the
    default is no caching (every run regenerates, as the paper's add-in
    does).  Cached schemas are treated as immutable and may be shared
    between results and generator instances.
    """

    def __init__(
        self,
        model: CctsModel,
        options: GenerationOptions | None = None,
        cache: GenerationCache | None = None,
    ) -> None:
        self.model = model
        self.options = options or GenerationOptions()
        self.policy = NamespacePolicy(include_version_in_urn=self.options.include_version_in_urn)
        self.session = GenerationSession()
        if cache is not None:
            self.cache: GenerationCache | None = cache
        elif self.options.cache_dir is not None:
            self.cache = cache_for_directory(self.options.cache_dir)
        elif self.options.use_cache:
            self.cache = get_generation_cache()
        else:
            self.cache = None
        self._generated: dict[_MemoKey, GeneratedSchema] = {}
        self._deps: dict[_MemoKey, list[_MemoKey]] = {}
        self._building: dict[_MemoKey, tuple[int, threading.Event]] = {}
        #: Per-run failure records (collect mode) and the keys this run touched.
        self._failed: dict[_MemoKey, LibraryFailure] = {}
        self._run_keys: dict[_MemoKey, None] = {}
        self._lock = threading.Lock()
        self._run_fingerprints: dict[_MemoKey, str] = {}
        self._fingerprint_context = FingerprintContext()
        self._libraries_by_name: dict[str, Library] | None = None
        self._ids_revision: int | None = None
        # ensure_library is the hottest instrumented call site; bind its
        # counters once per generator instead of per lookup.
        self._memo_hits = counter("xsdgen.memo_hits")
        self._memo_misses = counter("xsdgen.memo_misses")

    # -- public API -----------------------------------------------------------------

    def generate(self, library: Library | str, root: "Abie | str | None" = None) -> GenerationResult:
        """Generate the schema for ``library`` plus everything it imports.

        ``library`` may be a wrapper or a library name; ``root`` selects the
        DOCLibrary root element (required for DOC libraries with more than
        one ABIE, mirroring the Figure-5 dialog).  The result contains only
        the schemas reachable from ``library`` in this run.
        """
        if isinstance(library, str):
            library = self.model.library_named(library)
        with span("xsdgen.generate", library=library.name) as generate_span:
            if self.options.validate_first:
                self._validate_first()
            # Stable xmi:ids first: assigning ids mutates elements (bumping
            # the structural revision), so it must precede fingerprinting.
            self._ensure_xmi_ids()
            # Per-run state: the model may have mutated since the last run.
            self._run_fingerprints = {}
            self._fingerprint_context = FingerprintContext()
            self._libraries_by_name = None
            self._failed = {}
            self._run_keys = {}
            collect = self.options.on_error == "collect"
            self.session.status(f"Generating schema for {library.stereotype} {library.name!r}")
            _log.info("generating schema for %s %r", library.stereotype, library.name)
            with self.model.model.indexed():
                # Collect mode always prebuilds from the structural
                # dependency graph: a failing library must not hide the
                # independent libraries it would have discovered serially.
                if collect:
                    self._parallel_prebuild(library, root, max(1, self.options.jobs))
                elif self.options.jobs > 1:
                    if self._worth_prebuilding():
                        self._parallel_prebuild(library, root, self.options.jobs)
                    else:
                        # The whole model holds fewer libraries than the
                        # parallel threshold, so even dependency discovery
                        # is overhead: build serially via ensure_library.
                        counter("xsdgen.parallel_fallback").inc()
                root_namespace: str | None = None
                try:
                    generated = self.ensure_library(library, root)
                    root_namespace = generated.namespace.urn
                except ReproError:
                    if not collect:
                        raise
                if collect:
                    schemas = self._run_schemas()
                else:
                    schemas = self._reachable_schemas(library, root)
            # Assemble the run's provenance index in sorted-URN order so
            # serial, parallel and warm-cache runs index identically.
            provenance = ProvenanceIndex()
            for urn in sorted(schemas):
                provenance.extend(schemas[urn].provenance)
            result = GenerationResult(
                schemas=schemas,
                session=self.session,
                root_namespace=root_namespace,
                errors=list(self._failed.values()),
                provenance=provenance,
            )
            generate_span.set(schemas=len(result.schemas))
            if result.errors:
                generate_span.set(failures=len(result.errors))
                self.session.status(
                    f"Generation finished with {len(result.errors)} failed "
                    f"librar{'y' if len(result.errors) == 1 else 'ies'}: "
                    f"{len(result.schemas)} schema(s)"
                )
            else:
                self.session.status(f"Generation finished: {len(result.schemas)} schema(s)")
            _log.info("generation finished: %d schema(s)", len(result.schemas))
            if self.options.target_directory is not None:
                paths = result.write_to(self.options.target_directory)
                self.session.status(
                    f"Wrote {len(paths)} schema file(s) to {self.options.target_directory}"
                )
        return result

    # -- internals ----------------------------------------------------------------------

    def _ensure_xmi_ids(self) -> None:
        """Give every model element a deterministic xmi:id for provenance.

        Models loaded from XMI already carry ids (:func:`assign_ids` keeps
        them); programmatically built models get ``id_N`` in walk order.
        Memoized on the structural revision *after* assignment, since id
        assignment itself mutates elements.
        """
        if self._ids_revision == structural_revision():
            return
        from repro.xmi.ids import assign_ids

        assign_ids(self.model.model)
        self._ids_revision = structural_revision()

    def _validate_first(self) -> None:
        from repro.validation.engine import validate_model

        report = validate_model(self.model, basic_only=True)
        for warning in report.warnings:
            self.session.status(f"WARNING: {warning.message}")
        if not report.ok:
            details = "; ".join(str(error) for error in report.errors[:5])
            self.session.fail(
                f"the UML model is erroneous ({len(report.errors)} error(s)): {details}"
            )

    def _root_token(self, library: Library, root: "Abie | str | None") -> str | None:
        """The resolved DOC root name, normalized for memo/cache keys.

        Non-DOC libraries ignore ``root`` (token None).  An unresolvable
        selection also yields None -- the build then fails with the same
        session error as before.
        """
        if library.stereotype != DOC_LIBRARY:
            return None
        if isinstance(root, Abie):
            return root.name
        if isinstance(root, str):
            return root
        if isinstance(library, DocLibrary):
            candidates = library.root_candidates()
            if len(candidates) == 1:
                return candidates[0].name
        return None

    def _memo_key(self, library: Library, root: "Abie | str | None" = None) -> _MemoKey:
        return (id(library.element), self._root_token(library, root))

    def ensure_library(self, library: Library, root: "Abie | str | None" = None) -> GeneratedSchema:
        """Generate (memoized) the schema of one library.

        The memo key is the library identity *plus* the resolved DOC root,
        so one generator serves ``generate(doclib, root="A")`` and
        ``generate(doclib, root="B")`` distinct schemas.  Cyclic library
        references are legal: the namespace facts needed by importers are
        computed before the schema body, so re-entrant calls on the same
        thread return the in-progress entry.  Thread-safe: concurrent calls
        build each library exactly once; a thread needing a library under
        construction elsewhere waits for it.
        """
        key = self._memo_key(library, root)
        while True:
            with self._lock:
                failure = self._failed.get(key)
                if failure is not None:
                    # Collect mode: a library that already failed this run
                    # poisons its importers instead of being retried.
                    raise GenerationError(
                        f"{library.stereotype} {library.name!r} failed earlier "
                        f"in this run: {failure.error}"
                    ) from failure.error
                existing = self._generated.get(key)
                if existing is not None:
                    self._memo_hits.inc()
                    self._run_keys[key] = None
                    return existing
                building = self._building.get(key)
                if building is None:
                    self._building[key] = (threading.get_ident(), threading.Event())
                    break
                owner, event = building
                if owner == threading.get_ident():
                    # Cycle: hand back namespace facts with a placeholder schema.
                    namespace = self.policy.namespace_for(library)
                    placeholder = GeneratedSchema(library, namespace, Schema(namespace.urn))
                    self._generated[key] = placeholder
                    self._run_keys[key] = None
                    return placeholder
            # Another thread is building this library; wait and re-check.
            event.wait()
        self._memo_misses.inc()
        try:
            generated, dep_keys = self._obtain(library, root, key)
        except ReproError as error:
            with self._lock:
                # Drop any placeholder a cycle installed for the failed build
                # so a half-built schema never reaches a result or the cache.
                self._generated.pop(key, None)
                self._run_keys.pop(key, None)
            if self.options.on_error == "collect":
                self._record_failure(key, library, error)
            raise
        finally:
            with self._lock:
                _, event = self._building.pop(key)
            event.set()
        with self._lock:
            # A cycle may have installed a placeholder; replace its schema body.
            placeholder = self._generated.get(key)
            if placeholder is not None:
                placeholder.schema = generated.schema
                placeholder.provenance = generated.provenance
                placeholder.embed_provenance = generated.embed_provenance
                generated = placeholder
            else:
                self._generated[key] = generated
            self._deps[key] = dep_keys
            self._run_keys[key] = None
        return generated

    def _obtain(
        self, library: Library, root: "Abie | str | None", key: _MemoKey
    ) -> tuple[GeneratedSchema, list[_MemoKey]]:
        """Produce one library's schema: cache hit or fresh build."""
        fingerprint: str | None = None
        if self.cache is not None and library.stereotype != PRIM_LIBRARY:
            fingerprint = self._fingerprint_for(library, key)
            entry = self.cache.get(fingerprint)
            if entry is not None:
                return self._adopt(library, entry)
        generated, dep_libraries = self._build(library, root)
        dep_keys = [self._memo_key(dep) for dep in dep_libraries]
        if self.cache is not None and fingerprint is not None:
            self.cache.put(
                CachedGeneration(
                    key=fingerprint,
                    library_name=library.name,
                    stereotype=library.stereotype,
                    root_name=key[1],
                    namespace=generated.namespace,
                    schema=generated.schema,
                    dependencies=tuple(dep.name for dep in dep_libraries),
                    provenance=tuple(generated.provenance),
                )
            )
        return generated, dep_keys

    def _fingerprint_for(self, library: Library, key: _MemoKey) -> str:
        cached = self._run_fingerprints.get(key)
        if cached is None:
            cached = fingerprint_library(
                self.model,
                library,
                self.options,
                root_name=key[1],
                context=self._fingerprint_context,
            )
            self._run_fingerprints[key] = cached
        return cached

    def _library_named(self, name: str) -> Library:
        """Name lookup through a per-run map (``library_named`` is O(model))."""
        if self._libraries_by_name is None:
            self._libraries_by_name = {lib.name: lib for lib in self.model.libraries()}
        library = self._libraries_by_name.get(name)
        if library is None:
            raise CctsError(f"model {self.model.name!r} contains no library named {name!r}")
        return library

    def _adopt(
        self, library: Library, entry: CachedGeneration
    ) -> tuple[GeneratedSchema, list[_MemoKey]]:
        """Turn a cache hit into a run entry and pull in its dependencies."""
        self.session.status(
            f"Reusing cached schema for {library.stereotype} {library.name!r} "
            f"({entry.key[:12]})"
        )
        _log.debug("cache hit for %s %r (%s)", library.stereotype, library.name, entry.key[:12])
        generated = GeneratedSchema(
            library,
            entry.namespace,
            entry.schema,
            provenance=list(entry.provenance),
            embed_provenance=self.options.embed_provenance,
        )
        dep_keys: list[_MemoKey] = []
        for name in entry.dependencies:
            try:
                dependency = self._library_named(name)
            except CctsError:
                raise GenerationError(
                    f"cached schema for {library.name!r} imports library {name!r}, "
                    f"which no longer exists in model {self.model.name!r}"
                )
            self.ensure_library(dependency)
            dep_keys.append(self._memo_key(dependency))
        return generated, dep_keys

    def _record_failure(self, key: _MemoKey, library: Library, error: ReproError) -> None:
        """Collect-mode bookkeeping for one failed library build.

        Records the failure, and cascades it onto any *already built*
        library whose imports reach a failed one (possible only inside
        dependency cycles, where an importer can complete before its
        partner fails) -- those schemas would carry dangling imports, so
        they are withdrawn from the run and marked failed too.
        """
        cascaded: list[LibraryFailure] = []
        with self._lock:
            if key in self._failed:
                return
            # An error that propagated out of a failed dependency's build is
            # re-labelled as an import failure so the chain reads causally.
            culprit = next(
                (f for f in self._failed.values() if f.error is error), None
            )
            if culprit is not None:
                chained = GenerationError(
                    f"{library.stereotype} {library.name!r} imports failed "
                    f"library {culprit.library_name!r}"
                )
                chained.__cause__ = error
                error = chained
            elif not isinstance(error, GenerationError):
                wrapped = GenerationError(
                    f"building {library.stereotype} {library.name!r} failed: {error}"
                )
                wrapped.__cause__ = error
                error = wrapped
            failure = LibraryFailure(library.name, library.stereotype, key[1], error)
            self._failed[key] = failure
            changed = True
            while changed:
                changed = False
                for built_key, deps in list(self._deps.items()):
                    if built_key in self._failed:
                        continue
                    if not any(dep in self._failed for dep in deps):
                        continue
                    poisoned = self._generated.pop(built_key, None)
                    self._run_keys.pop(built_key, None)
                    if poisoned is None:
                        continue
                    chained = GenerationError(
                        f"{poisoned.library.stereotype} {poisoned.library.name!r} "
                        f"imports failed library {library.name!r}"
                    )
                    chained.__cause__ = failure.error
                    self._failed[built_key] = LibraryFailure(
                        poisoned.library.name,
                        poisoned.library.stereotype,
                        built_key[1],
                        chained,
                    )
                    cascaded.append(self._failed[built_key])
                    changed = True
        counter("xsdgen.library_failures", stereotype=library.stereotype).inc()
        self.session.status(f"ERROR: {failure}")
        _log.warning("library build failed: %s", failure)
        for poisoned_failure in cascaded:
            counter(
                "xsdgen.library_failures", stereotype=poisoned_failure.stereotype
            ).inc()
            self.session.status(f"ERROR: {poisoned_failure}")
            _log.warning("library build failed: %s", poisoned_failure)

    def _run_schemas(self) -> dict[str, GeneratedSchema]:
        """Every schema successfully built or reused during this run.

        Collect-mode result scoping: the run's touched keys, minus failed
        ones, in first-touch order.  Equals the reachable set when nothing
        failed, and never leaks schemas from a previous run.
        """
        with self._lock:
            keys = [key for key in self._run_keys if key not in self._failed]
            return {
                generated.namespace.urn: generated
                for key in keys
                if (generated := self._generated.get(key)) is not None
            }

    def _reachable_schemas(self, library: Library, root: "Abie | str | None") -> dict[str, GeneratedSchema]:
        """The schemas transitively reachable from the requested library."""
        start = self._memo_key(library, root)
        order: list[_MemoKey] = []
        seen: set[_MemoKey] = set()
        queue: list[_MemoKey] = [start]
        while queue:
            key = queue.pop(0)
            if key in seen:
                continue
            seen.add(key)
            order.append(key)
            queue.extend(self._deps.get(key, ()))
        schemas: dict[str, GeneratedSchema] = {}
        for key in order:
            generated = self._generated.get(key)
            if generated is not None:
                schemas[generated.namespace.urn] = generated
        return schemas

    # -- parallel builds ------------------------------------------------------------

    def _parallel_prebuild(self, library: Library, root: "Abie | str | None", jobs: int) -> None:
        """Build the reachable library DAG concurrently (``--jobs N``).

        The graph is discovered structurally, condensed into SCCs (cyclic
        libraries build together, preserving the single-thread cycle
        handling) and scheduled dependencies-first, so no worker ever waits
        on another thread's in-flight build.  The subsequent serial pass in
        :meth:`generate` then assembles the result purely from memo hits.

        Small models fall back to a serial loop: when fewer
        cache-miss-eligible libraries than ``min_parallel_libraries``
        (default ``2 * jobs``) are reachable, thread-pool setup costs more
        than it saves, so the components build in dependency order on the
        calling thread and ``xsdgen.parallel_fallback`` counts the skip.

        Worker threads run inside a :func:`contextvars.copy_context`
        snapshot taken at submit time, so the ``xsdgen.parallel`` span
        active here is the active span *inside* the worker too -- library
        build spans parent under it instead of surfacing as orphan roots.
        """
        graph: dict[int, tuple[Library, list[int]]] = {}

        def discover(candidate: Library) -> None:
            node = id(candidate.element)
            if node in graph:
                return
            dependencies = library_dependencies(
                self.model, candidate, context=self._fingerprint_context
            )
            graph[node] = (candidate, [id(dep.element) for dep in dependencies])
            for dependency in dependencies:
                discover(dependency)

        discover(library)
        if len(graph) < 2:
            return
        components = _strongly_connected({node: deps for node, (_, deps) in graph.items()})
        component_of = {node: index for index, comp in enumerate(components) for node in comp}
        dependents: dict[int, set[int]] = {index: set() for index in range(len(components))}
        indegree = [0] * len(components)
        for index, comp in enumerate(components):
            upstream = {
                component_of[dep]
                for node in comp
                for dep in graph[node][1]
                if component_of[dep] != index
            }
            indegree[index] = len(upstream)
            for up in upstream:
                dependents[up].add(index)

        entry_node = id(library.element)

        def build_component(index: int) -> None:
            for node in components[index]:
                candidate = graph[node][0]
                self.ensure_library(candidate, root if node == entry_node else None)

        eligible = self._eligible_builds(graph, entry_node, root)
        threshold = self.options.min_parallel_libraries
        if threshold is None:
            threshold = 2 * jobs
        if jobs <= 1 or eligible < threshold:
            if jobs > 1:
                counter("xsdgen.parallel_fallback").inc()
                _log.debug(
                    "serial fallback: %d eligible librar%s below threshold %d (jobs=%d)",
                    eligible, "y" if eligible == 1 else "ies", threshold, jobs,
                )
            with span(
                "xsdgen.parallel",
                libraries=len(graph), jobs=jobs, eligible=eligible, mode="serial",
            ):
                # Tarjan emits components dependencies-first, so an
                # in-order loop never builds an importer before its imports.
                for index in range(len(components)):
                    try:
                        build_component(index)
                    except ReproError:
                        if self.options.on_error != "collect":
                            raise
            return
        ready = [index for index in range(len(components)) if indegree[index] == 0]
        pending: dict[Future, int] = {}
        with span(
            "xsdgen.parallel",
            libraries=len(graph), jobs=jobs, eligible=eligible, mode="threads",
        ):
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                while ready or pending:
                    for index in ready:
                        # Snapshot the trace context (the open xsdgen.parallel
                        # span) per submit; Context.run is single-flight, so
                        # each task needs its own copy.
                        task_context = contextvars.copy_context()
                        pending[pool.submit(task_context.run, build_component, index)] = index
                    ready = []
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        finished = pending.pop(future)
                        try:
                            future.result()
                        except ReproError:
                            if self.options.on_error != "collect":
                                raise
                            # Already recorded by ensure_library; dependent
                            # components still run and fail fast into the
                            # collected failures, independent ones build on.
                        for dependent in sorted(dependents[finished]):
                            indegree[dependent] -= 1
                            if indegree[dependent] == 0:
                                ready.append(dependent)

    def _worth_prebuilding(self) -> bool:
        """Cheap preflight for ``jobs > 1``: can parallelism possibly pay?

        The model's schema-capable library count (a memoized scan) bounds
        the reachable graph from above, so when even that sits below the
        parallel threshold the structural dependency discovery inside
        :meth:`_parallel_prebuild` is pure overhead -- exactly what made
        the ``parallel_jobs4`` bench arm lose to ``cold`` on small models.
        """
        threshold = self.options.min_parallel_libraries
        if threshold is None:
            threshold = 2 * self.options.jobs
        if threshold == 0:
            return True
        total = sum(
            1
            for candidate in self.model.libraries()
            if candidate.stereotype in _SCHEMA_STEREOTYPES
        )
        return total >= threshold

    def _eligible_builds(
        self, graph: dict[int, tuple[Library, list[int]]], entry_node: int, root: "Abie | str | None"
    ) -> int:
        """How many reachable libraries this run will actually *build*.

        Libraries the cache can replay are cheap memo work, not thread
        fodder, so they do not count toward the parallelism threshold.
        Uses :meth:`GenerationCache.contains` -- a planning peek that
        leaves the hit/miss counters and LRU order untouched.
        """
        if self.cache is None:
            return len(graph)
        eligible = 0
        for node, (candidate, _) in graph.items():
            if candidate.stereotype == PRIM_LIBRARY:
                continue
            key = self._memo_key(candidate, root if node == entry_node else None)
            if not self.cache.contains(self._fingerprint_for(candidate, key)):
                eligible += 1
        return eligible

    # -- single-library build -------------------------------------------------------

    def _build(self, library: Library, root: "Abie | str | None") -> tuple[GeneratedSchema, list[Library]]:
        from repro.xsdgen import bie_library, cdt_library, doc_library, enum_library, qdt_library

        stereotype = library.stereotype
        if stereotype == PRIM_LIBRARY:
            self.session.fail(
                f"no schema generation mechanism is implemented for PRIMLibraries "
                f"({library.name!r}); XSD built-in types are used instead"
            )
        with span("xsdgen.library", library=library.name, stereotype=stereotype):
            builder = SchemaBuilder(self, library)
            self.session.status(f"Building {stereotype} schema {builder.namespace.urn}")
            _log.debug("building %s schema %s", stereotype, builder.namespace.urn)
            if stereotype == DOC_LIBRARY:
                doc_library.build(builder, root)
            elif stereotype == BIE_LIBRARY:
                bie_library.build(builder)
            elif stereotype == CDT_LIBRARY:
                cdt_library.build(builder)
            elif stereotype == QDT_LIBRARY:
                qdt_library.build(builder)
            elif stereotype == ENUM_LIBRARY:
                enum_library.build(builder)
            else:
                self.session.fail(
                    f"cannot generate a schema for library stereotype {stereotype!r}"
                )
            counter("xsdgen.schemas_generated").inc()
        return (
            GeneratedSchema(
                library,
                builder.namespace,
                builder.schema,
                provenance=builder.provenance,
                embed_provenance=self.options.embed_provenance,
            ),
            builder.imported_libraries,
        )

    def library_of(self, wrapper: ElementWrapper) -> Library:
        """The library owning a wrapped element (error when homeless)."""
        library = self.model.owning_library_of(wrapper)
        if library is None:
            raise GenerationError(
                f"element {wrapper.name!r} is not owned by any library; "
                f"cannot determine its schema"
            )
        return library


def _strongly_connected(nodes: dict[int, list[int]]) -> list[list[int]]:
    """Tarjan's SCC over ``node -> dependency nodes``; edges to unknown
    nodes are ignored.  Components come out dependencies-first (reverse
    topological order of the condensation), which is exactly the build
    order the parallel scheduler needs.
    """
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[list[int]] = []
    next_index = 0

    def strong(v: int) -> None:
        nonlocal next_index
        index[v] = low[v] = next_index
        next_index += 1
        stack.append(v)
        on_stack.add(v)
        for w in nodes[v]:
            if w not in nodes:
                continue
            if w not in index:
                strong(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            component: list[int] = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                component.append(w)
                if w == v:
                    break
            components.append(component)

    for v in nodes:
        if v not in index:
            strong(v)
    return components
