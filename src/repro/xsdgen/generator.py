"""The generation orchestrator.

:class:`SchemaGenerator` walks the library dependency graph, memoizes one
schema per library, and resolves cross-library type references into imports
with NDR-conformant prefixes.  :class:`SchemaBuilder` is the per-document
working context the library builders write into.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.ccts.base import ElementWrapper
from repro.ccts.libraries import Library
from repro.ccts.model import CctsModel
from repro.errors import GenerationError
from repro.ndr.annotations import CCTS_DOCUMENTATION_NS, annotation_entries_for
from repro.obs.logging_bridge import get_logger
from repro.obs.metrics import counter
from repro.obs.trace import span
from repro.ndr.namespaces import LibraryNamespace, NamespacePolicy, PrefixAllocator, prefix_stem
from repro.profile import (
    BIE_LIBRARY,
    CDT_LIBRARY,
    DOC_LIBRARY,
    ENUM_LIBRARY,
    PRIM_LIBRARY,
    QDT_LIBRARY,
)
from repro.xmlutil.qname import QName
from repro.xsd.components import Annotation, ImportDecl, Schema
from repro.xsd.validator import SchemaSet
from repro.xsd.writer import schema_to_string
from repro.xsdgen.session import GenerationOptions, GenerationSession

if TYPE_CHECKING:  # pragma: no cover
    from repro.ccts.bie import Abie

_log = get_logger("repro.xsdgen")


@dataclass
class GeneratedSchema:
    """One generated schema document plus its namespace facts."""

    library: Library
    namespace: LibraryNamespace
    schema: Schema

    def to_string(self) -> str:
        """Render the schema document."""
        return schema_to_string(self.schema)


@dataclass
class GenerationResult:
    """All schemas produced by one generation run, keyed by namespace URN."""

    schemas: dict[str, GeneratedSchema] = field(default_factory=dict)
    session: GenerationSession = field(default_factory=GenerationSession)
    root_namespace: str | None = None

    @property
    def root(self) -> GeneratedSchema:
        """The schema generated for the library the run started from."""
        if self.root_namespace is None:
            generated = sorted(g.library.name for g in self.schemas.values())
            if generated:
                raise GenerationError(
                    "generation produced no root schema (libraries generated: "
                    + ", ".join(generated)
                    + ")"
                )
            raise GenerationError(
                "generation produced no root schema (no libraries were generated)"
            )
        return self.schemas[self.root_namespace]

    def schema_set(self) -> SchemaSet:
        """All generated schemas as a validator-ready :class:`SchemaSet`."""
        return SchemaSet([generated.schema for generated in self.schemas.values()])

    def write_to(self, directory: str | Path) -> list[Path]:
        """Write every schema into ``directory`` using the NDR folder layout.

        Each schema lands in ``{underscored-baseURN}/{file}.xsd`` so that the
        relative ``../folder/file`` schemaLocations of the imports resolve.
        Returns the written paths in namespace order.
        """
        directory = Path(directory)
        written: list[Path] = []
        with span("xsdgen.write", directory=str(directory)) as write_span:
            for urn in sorted(self.schemas):
                generated = self.schemas[urn]
                folder = directory / generated.namespace.folder
                folder.mkdir(parents=True, exist_ok=True)
                path = folder / generated.namespace.file_name
                text = generated.to_string()
                path.write_text(text, encoding="utf-8")
                counter("xsdgen.bytes_written").inc(len(text.encode("utf-8")))
                counter("xsdgen.files_written").inc()
                written.append(path)
            write_span.set(files=len(written))
        return written


class SchemaBuilder:
    """Per-document context: the schema plus prefix/import management."""

    def __init__(self, generator: "SchemaGenerator", library: Library) -> None:
        self.generator = generator
        self.library = library
        self.namespace = generator.policy.namespace_for(library)
        self.allocator = PrefixAllocator()
        self_prefix = library.namespace_prefix or prefix_stem(library.stereotype)
        self.allocator.reserve(self_prefix, self.namespace.urn)
        self.schema = Schema(
            target_namespace=self.namespace.urn,
            prefixes={self_prefix: self.namespace.urn},
            version=library.library_version,
        )
        self._imported: set[str] = set()
        # Figure 6 line 1 declares xmlns:ccts even with annotations omitted:
        # the add-in always binds the CCTS documentation namespace.
        self._bind_ccts_prefix()

    def _bind_ccts_prefix(self) -> None:
        if "ccts" not in self.schema.prefixes:
            self.schema.prefixes["ccts"] = CCTS_DOCUMENTATION_NS
            self.allocator.reserve("ccts", CCTS_DOCUMENTATION_NS)

    # -- cross-library references ------------------------------------------------

    def qname_in(self, library: Library, local_name: str) -> QName:
        """A QName for ``local_name`` defined by ``library``'s schema.

        When the library is not the one being generated, its schema is
        (transitively) generated, an import is recorded and a prefix bound.
        """
        if library.element is self.library.element:
            return QName(self.namespace.urn, local_name)
        generated = self.generator.ensure_library(library)
        if generated.namespace.urn not in self._imported:
            self._imported.add(generated.namespace.urn)
            self.schema.imports.append(
                ImportDecl(generated.namespace.urn, generated.namespace.location)
            )
            prefix = self.allocator.allocate(generated.namespace)
            self.schema.prefixes[prefix] = generated.namespace.urn
            counter("xsdgen.imports_resolved").inc()
            self.generator.session.status(
                f"Imported {generated.namespace.urn} as prefix "
                f"{self.schema.prefix_for(generated.namespace.urn)!r}"
            )
        return QName(generated.namespace.urn, local_name)

    def own_qname(self, local_name: str) -> QName:
        """A QName in the schema being generated."""
        return QName(self.namespace.urn, local_name)

    # -- annotations -----------------------------------------------------------------

    def annotation_for(self, wrapper: ElementWrapper, acronym: str, den: str | None = None) -> Annotation | None:
        """A CCTS annotation block, or None when annotations are off."""
        if not self.generator.options.annotated:
            return None
        self._bind_ccts_prefix()
        return Annotation(annotation_entries_for(wrapper, acronym, den))


class SchemaGenerator:
    """Generates NDR-conformant schemas from a core-components model."""

    def __init__(self, model: CctsModel, options: GenerationOptions | None = None) -> None:
        self.model = model
        self.options = options or GenerationOptions()
        self.policy = NamespacePolicy(include_version_in_urn=self.options.include_version_in_urn)
        self.session = GenerationSession()
        self._generated: dict[int, GeneratedSchema] = {}
        self._in_progress: set[int] = set()
        # ensure_library is the hottest instrumented call site; bind its
        # counters once per generator instead of per lookup.
        self._memo_hits = counter("xsdgen.memo_hits")
        self._memo_misses = counter("xsdgen.memo_misses")

    # -- public API -----------------------------------------------------------------

    def generate(self, library: Library | str, root: "Abie | str | None" = None) -> GenerationResult:
        """Generate the schema for ``library`` plus everything it imports.

        ``library`` may be a wrapper or a library name; ``root`` selects the
        DOCLibrary root element (required for DOC libraries with more than
        one ABIE, mirroring the Figure-5 dialog).
        """
        if isinstance(library, str):
            library = self.model.library_named(library)
        with span("xsdgen.generate", library=library.name) as generate_span:
            if self.options.validate_first:
                self._validate_first()
            self.session.status(f"Generating schema for {library.stereotype} {library.name!r}")
            _log.info("generating schema for %s %r", library.stereotype, library.name)
            with self.model.model.indexed():
                generated = self.ensure_library(library, root)
            result = GenerationResult(
                schemas={g.namespace.urn: g for g in self._generated.values()},
                session=self.session,
                root_namespace=generated.namespace.urn,
            )
            generate_span.set(schemas=len(result.schemas))
            self.session.status(f"Generation finished: {len(result.schemas)} schema(s)")
            _log.info("generation finished: %d schema(s)", len(result.schemas))
            if self.options.target_directory is not None:
                paths = result.write_to(self.options.target_directory)
                self.session.status(
                    f"Wrote {len(paths)} schema file(s) to {self.options.target_directory}"
                )
        return result

    # -- internals ----------------------------------------------------------------------

    def _validate_first(self) -> None:
        from repro.validation.engine import validate_model

        report = validate_model(self.model, basic_only=True)
        for warning in report.warnings:
            self.session.status(f"WARNING: {warning.message}")
        if not report.ok:
            details = "; ".join(str(error) for error in report.errors[:5])
            self.session.fail(
                f"the UML model is erroneous ({len(report.errors)} error(s)): {details}"
            )

    def ensure_library(self, library: Library, root: "Abie | str | None" = None) -> GeneratedSchema:
        """Generate (memoized) the schema of one library.

        Cyclic library references are legal: the namespace facts needed by
        importers are computed before the schema body, so re-entrant calls
        return the in-progress entry.
        """
        key = id(library.element)
        existing = self._generated.get(key)
        if existing is not None:
            self._memo_hits.inc()
            return existing
        self._memo_misses.inc()
        if key in self._in_progress:
            # Cycle: hand back namespace facts with a placeholder schema.
            namespace = self.policy.namespace_for(library)
            placeholder = GeneratedSchema(library, namespace, Schema(namespace.urn))
            self._generated[key] = placeholder
            return placeholder
        self._in_progress.add(key)
        try:
            generated = self._build(library, root)
        finally:
            self._in_progress.discard(key)
        # A cycle may have installed a placeholder; replace its schema body.
        placeholder = self._generated.get(key)
        if placeholder is not None:
            placeholder.schema = generated.schema
            generated = placeholder
        else:
            self._generated[key] = generated
        return generated

    def _build(self, library: Library, root: "Abie | str | None") -> GeneratedSchema:
        from repro.xsdgen import bie_library, cdt_library, doc_library, enum_library, qdt_library

        stereotype = library.stereotype
        if stereotype == PRIM_LIBRARY:
            self.session.fail(
                f"no schema generation mechanism is implemented for PRIMLibraries "
                f"({library.name!r}); XSD built-in types are used instead"
            )
        with span("xsdgen.library", library=library.name, stereotype=stereotype):
            builder = SchemaBuilder(self, library)
            self.session.status(f"Building {stereotype} schema {builder.namespace.urn}")
            _log.debug("building %s schema %s", stereotype, builder.namespace.urn)
            if stereotype == DOC_LIBRARY:
                doc_library.build(builder, root)
            elif stereotype == BIE_LIBRARY:
                bie_library.build(builder)
            elif stereotype == CDT_LIBRARY:
                cdt_library.build(builder)
            elif stereotype == QDT_LIBRARY:
                qdt_library.build(builder)
            elif stereotype == ENUM_LIBRARY:
                enum_library.build(builder)
            else:
                self.session.fail(
                    f"cannot generate a schema for library stereotype {stereotype!r}"
                )
            counter("xsdgen.schemas_generated").inc()
        return GeneratedSchema(library, builder.namespace, builder.schema)

    def library_of(self, wrapper: ElementWrapper) -> Library:
        """The library owning a wrapped element (error when homeless)."""
        library = self.model.owning_library_of(wrapper)
        if library is None:
            raise GenerationError(
                f"element {wrapper.name!r} is not owned by any library; "
                f"cannot determine its schema"
            )
        return library

