"""Generation options and the status/error session.

These mirror the generator dialog of the paper's Figure 5: the user picks a
root element, toggles annotations, chooses an output folder, and "during
the generation of the schema, status messages are passed back to the user
interface.  In case the UML model is erroneous, the generation aborts and
the user is presented an error message."
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.errors import CctsError, GenerationError


@dataclass
class GenerationOptions:
    """User-facing switches of one generation run.

    ``annotated`` is the Figure-5 checkbox; ``shared_aggregation_as_ref``
    selects the Figure-7 reading (shared aggregation -> global element +
    ``ref``; see the module docstring of :mod:`repro.uml.association` for
    the paper's terminology wobble) -- turning it off inlines every ASBIE,
    which is the ablation arm benchmarked in DESIGN.md;
    ``include_version_in_urn`` switches the URN style; ``validate_first``
    runs the basic rule set before generating.

    Scaling knobs (see docs/architecture.md, "Generation cache and
    parallel builds"): ``use_cache`` consults the process-shared
    fingerprint-keyed :class:`~repro.xsdgen.cache.GenerationCache`;
    ``cache_dir`` additionally persists cached schemas on disk (implies
    caching); ``jobs`` builds independent libraries on that many threads,
    producing byte-identical output versus a serial run.  Caching and
    parallelism are off by default so a bare ``SchemaGenerator`` behaves
    exactly like the paper's add-in.

    ``min_parallel_libraries`` guards against paying thread-pool overhead
    on models too small to amortize it: when fewer cache-miss-eligible
    libraries than this are reachable, a ``jobs > 1`` run builds them
    serially instead (recorded by the ``xsdgen.parallel_fallback``
    counter).  ``None`` (the default) means ``2 * jobs``; ``0`` disables
    the fallback and always uses the pool.

    ``on_error`` selects the failure policy: ``"raise"`` (default)
    aborts the run on the first failing library, mirroring the paper's
    error dialog; ``"collect"`` isolates each failing library as a
    :class:`~repro.xsdgen.generator.LibraryFailure` on
    ``GenerationResult.errors`` and still builds every library not
    reachable from a failing one.

    ``embed_provenance`` renders each schema's provenance records into an
    ``xs:annotation/xs:appinfo`` block when serializing (see
    docs/observability.md, "Provenance").  Off by default: the generated
    schema text is then byte-identical to a provenance-unaware run.  The
    flag does not key the cache -- provenance is stored alongside the
    schema and the embedding decision is made at serialization time.
    """

    annotated: bool = False
    shared_aggregation_as_ref: bool = True
    include_version_in_urn: bool = False
    validate_first: bool = True
    target_directory: Path | None = None
    use_cache: bool = False
    cache_dir: Path | None = None
    jobs: int = 1
    min_parallel_libraries: int | None = None
    on_error: str = "raise"
    embed_provenance: bool = False

    def __post_init__(self) -> None:
        if self.on_error not in ("raise", "collect"):
            raise ValueError(
                f"on_error must be 'raise' or 'collect', got {self.on_error!r}"
            )
        if self.min_parallel_libraries is not None and self.min_parallel_libraries < 0:
            raise ValueError(
                f"min_parallel_libraries must be >= 0 or None, "
                f"got {self.min_parallel_libraries!r}"
            )


@dataclass
class GenerationSession:
    """Collects status messages; aborts with :class:`GenerationError`."""

    messages: list[str] = field(default_factory=list)

    def status(self, message: str) -> None:
        """Record a progress message (the Figure-5 status box)."""
        self.messages.append(message)

    def fail(self, message: str) -> None:
        """Record and raise a fatal generation error."""
        self.messages.append(f"ERROR: {message}")
        raise GenerationError(message)

    @property
    def log(self) -> str:
        """The full status log as one string."""
        return "\n".join(self.messages)


@contextmanager
def wrap_build_errors(stereotype: str, library_name: str) -> Iterator[None]:
    """Give escaping CCTS-level errors their library context.

    The per-library builders call typed-facade accessors (``den()``,
    wrapper lookups, ...) that raise bare :class:`CctsError` subclasses
    naming only the element.  This wrapper re-raises them as
    :class:`GenerationError` naming the library being built -- the unit
    the ``on_error="collect"`` policy isolates -- while keeping the
    original error as the cause chain.  ``GenerationError`` itself (from
    ``session.fail``) passes through untouched.
    """
    try:
        yield
    except GenerationError:
        raise
    except CctsError as error:
        raise GenerationError(
            f"building {stereotype} schema for library {library_name!r} failed: {error}"
        ) from error
