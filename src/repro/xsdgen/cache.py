"""The generation cache: structural fingerprints, LRU memory, disk layer.

The generator regenerated every schema from scratch on each run, and its
old memo keyed on ``id(library.element)`` alone -- correct only for one
``generate()`` call on one model object.  This module supplies the real
subsystem:

* :func:`fingerprint_library` -- a stable SHA-256 content hash over a
  library's elements, tagged values and cross-library references, mixed
  with the :class:`~repro.xsdgen.session.GenerationOptions` that affect
  schema bytes and the chosen DOC root.  Two structurally equivalent
  models produce the same fingerprint; any mutation that can change the
  generated schema changes it.
* :func:`library_dependencies` -- the libraries a library's schema will
  import, derived structurally (without generating).  The generator uses
  it to topologically sort the library DAG for parallel builds.
* :class:`GenerationCache` -- a thread-safe in-memory LRU of generated
  schemas, shareable across :class:`~repro.xsdgen.generator.SchemaGenerator`
  instances, with an optional persistent on-disk layer (``cache_dir``)
  that round-trips serialized schemas and invalidates by fingerprint.

Cache observability: ``xsdgen.cache_hits`` / ``xsdgen.cache_misses`` /
``xsdgen.cache_evictions`` counters and the ``xsdgen.cache_size`` gauge
(see docs/observability.md).

Failure isolation: the generator inserts an entry only after a library's
build completed -- a build that raises (including under the
``on_error="collect"`` recovery policy) never reaches :meth:`GenerationCache.put`,
so a failed library can never poison this cache for later runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.ndr.namespaces import LibraryNamespace
from repro.obs.logging_bridge import get_logger
from repro.obs.metrics import counter, gauge
from repro.profile import (
    BIE_LIBRARY,
    CDT_LIBRARY,
    DOC_LIBRARY,
    ENUM_LIBRARY,
    QDT_LIBRARY,
)
from repro.uml.association import Association, AssociationEnd
from repro.uml.classifier import Classifier, EnumerationLiteral
from repro.uml.dependency import Dependency
from repro.uml.elements import Element, structural_revision
from repro.uml.property import Property
from repro.xsd.components import Schema
from repro.xsd.parser import parse_schema
from repro.xsd.writer import schema_to_string

if TYPE_CHECKING:  # pragma: no cover
    from repro.ccts.libraries import Library
    from repro.ccts.model import CctsModel
    from repro.xsdgen.provenance import ProvenanceRecord
    from repro.xsdgen.session import GenerationOptions

_log = get_logger("repro.xsdgen")

#: Bump when the fingerprint recipe or the disk format changes.
#: v2: entries carry the schema's provenance records.
CACHE_FORMAT_VERSION = 2

#: Library stereotypes that generate a schema document of their own.
_SCHEMA_STEREOTYPES = frozenset(
    {BIE_LIBRARY, CDT_LIBRARY, DOC_LIBRARY, ENUM_LIBRARY, QDT_LIBRARY}
)

_FIELD_SEP = "\x1f"
_RECORD_SEP = "\x1e"

#: Cross-run fingerprint memo: (library id, root, options...) -> (revision,
#: digest).  An entry is valid while :func:`structural_revision` has not
#: moved since it was computed.  That makes the key safe against ``id()``
#: recycling too: a looked-up library is reachable through a live wrapper,
#: and any *other* object at a recycled address must have been constructed
#: after the entry -- which bumps the revision and invalidates it.
_fingerprint_memo: dict[tuple, tuple[int, str]] = {}
_fingerprint_memo_lock = threading.Lock()
_FINGERPRINT_MEMO_LIMIT = 1024


class _Hasher:
    """Feeds canonical token records into one SHA-256 digest."""

    __slots__ = ("_digest",)

    def __init__(self) -> None:
        self._digest = hashlib.sha256()

    def record(self, *fields: object) -> None:
        """Hash one record of stringified fields."""
        line = _FIELD_SEP.join("" if f is None else str(f) for f in fields)
        self._digest.update(line.encode("utf-8"))
        self._digest.update(_RECORD_SEP.encode("utf-8"))

    def hexdigest(self) -> str:
        return self._digest.hexdigest()


def _hash_element(hasher: _Hasher, element: Element) -> None:
    """Hash one element's identity-free structural facts."""
    hasher.record("elem", type(element).__name__, getattr(element, "name", ""))
    for stereotype in sorted(element.stereotype_applications):
        tags = element.stereotype_applications[stereotype]
        hasher.record("stereo", stereotype)
        for key in sorted(tags):
            hasher.record("tag", key, tags[key])
    if element.documentation:
        hasher.record("doc", element.documentation)
    if isinstance(element, Property):
        type_name = element.type.qualified_name if element.type is not None else ""
        hasher.record("prop", type_name, str(element.multiplicity), element.default)
    elif isinstance(element, AssociationEnd):
        hasher.record(
            "end",
            element.type.qualified_name,
            str(element.multiplicity),
            element.aggregation.value,
            element.navigable,
        )
    elif isinstance(element, EnumerationLiteral):
        hasher.record("literal", element.value)
    elif isinstance(element, Dependency):
        hasher.record(
            "dependency",
            element.client.qualified_name,
            element.supplier.qualified_name,
        )


class FingerprintContext:
    """Per-run memo for fingerprint computations over an unchanging model.

    Fingerprinting several libraries of one model re-hashes shared
    subtrees (a CDT referenced by three libraries is walked for each of
    their fingerprints).  A context deduplicates that work: subtree
    digests and reference scans are computed once per element.  Create
    one per generation run and drop it before the model can mutate.
    """

    __slots__ = ("subtree_digests", "scans")

    def __init__(self) -> None:
        self.subtree_digests: dict[int, str] = {}
        self.scans: dict[int, _References] = {}


def _subtree_digest(root: Element, context: FingerprintContext | None) -> str:
    """The standalone digest of one element subtree, memoized per context."""
    if context is not None:
        cached = context.subtree_digests.get(id(root))
        if cached is not None:
            return cached
    hasher = _Hasher()
    for element in root.walk():
        _hash_element(hasher, element)
    digest = hasher.hexdigest()
    if context is not None:
        context.subtree_digests[id(root)] = digest
    return digest


def _library_identity(library: "Library") -> tuple[str, ...]:
    """The namespace-determining facts of a library."""
    return (
        library.stereotype,
        library.name,
        library.base_urn,
        library.status,
        library.library_version,
        library.namespace_prefix or "",
    )


@dataclass
class _References:
    """Cross-library facts gathered in one structural scan."""

    classifiers: list[Classifier]
    associations: list[Association]
    dependencies: list[Dependency]


def _scan_references(
    model: "CctsModel",
    library: "Library",
    context: FingerprintContext | None = None,
) -> _References:
    """Everything a library's schema can reference, in deterministic order.

    Covers attribute (BCC/BBIE/CON/SUP) types, association (ASCC/ASBIE)
    targets -- including connectors drawn in *other* packages, which the
    generator follows model-wide -- and ``basedOn`` dependency suppliers
    (the QDT -> CDT link).
    """
    if context is not None:
        cached = context.scans.get(id(library.element))
        if cached is not None:
            return cached
    classifiers: list[Classifier] = []
    seen: set[int] = set()

    def note(classifier: Classifier | None) -> None:
        if classifier is None or id(classifier) in seen:
            return
        seen.add(id(classifier))
        classifiers.append(classifier)

    associations: list[Association] = []
    dependencies: list[Dependency] = []
    uml = model.model
    for element in library.element.walk():
        if isinstance(element, Property):
            note(element.type)
        if isinstance(element, Classifier):
            for association in uml.associations_anywhere_from(element):
                associations.append(association)
                note(association.target.type)
            for dependency in uml.dependencies_of(element):
                dependencies.append(dependency)
                supplier = dependency.supplier
                if isinstance(supplier, Classifier):
                    note(supplier)
    references = _References(classifiers, associations, dependencies)
    if context is not None:
        context.scans[id(library.element)] = references
    return references


def fingerprint_library(
    model: "CctsModel",
    library: "Library",
    options: "GenerationOptions",
    root_name: str | None = None,
    context: FingerprintContext | None = None,
) -> str:
    """The structural fingerprint keying one library's generated schema.

    Stable across model rebuilds (no ``id()``/ordering-of-creation leaks),
    sensitive to every model fact that can alter the schema bytes: the
    library's own element tree, associations drawn elsewhere, ``basedOn``
    links, the content of directly referenced external classifiers, the
    namespace identity of their owning libraries, the output-affecting
    generation options and -- for DOC libraries -- the chosen root.

    ``context`` (a :class:`FingerprintContext`) shares subtree digests and
    reference scans across fingerprints of the same unmutated model.
    Results are additionally memoized across runs against the model's
    :func:`~repro.uml.elements.structural_revision`, so regenerating an
    unchanged model costs one dict lookup per library instead of a walk.
    """
    revision = structural_revision()
    memo_key = (
        id(library.element),
        root_name or "",
        options.annotated,
        options.shared_aggregation_as_ref,
        options.include_version_in_urn,
    )
    with _fingerprint_memo_lock:
        hit = _fingerprint_memo.get(memo_key)
        if hit is not None and hit[0] == revision:
            return hit[1]
    hasher = _Hasher()
    hasher.record("format", CACHE_FORMAT_VERSION)
    hasher.record("library", *_library_identity(library))
    hasher.record(
        "options",
        options.annotated,
        options.shared_aggregation_as_ref,
        options.include_version_in_urn,
    )
    hasher.record("root", root_name or "")
    hasher.record("walk", _subtree_digest(library.element, context))
    references = _scan_references(model, library, context)
    for association in references.associations:
        hasher.record("xassoc", _subtree_digest(association, context))
    for dependency in references.dependencies:
        _hash_element(hasher, dependency)
    library_element = library.element
    for classifier in references.classifiers:
        owning = model.owning_library_of(_WrapperShim(classifier))
        if owning is None or owning.element is library_element:
            continue
        hasher.record("xref", *_library_identity(owning))
        hasher.record("xwalk", _subtree_digest(classifier, context))
    digest = hasher.hexdigest()
    with _fingerprint_memo_lock:
        if len(_fingerprint_memo) >= _FINGERPRINT_MEMO_LIMIT:
            # Entries from older revisions can never hit again; drop them.
            stale = [k for k, v in _fingerprint_memo.items() if v[0] != revision]
            for k in stale:
                del _fingerprint_memo[k]
        _fingerprint_memo[memo_key] = (revision, digest)
    return digest


class _WrapperShim:
    """Minimal duck-typed wrapper accepted by ``owning_library_of``."""

    __slots__ = ("element",)

    def __init__(self, element: Element) -> None:
        self.element = element


def library_dependencies(
    model: "CctsModel",
    library: "Library",
    context: FingerprintContext | None = None,
) -> "list[Library]":
    """The libraries whose schemas ``library``'s schema may import.

    A structural over-approximation of the imports the builders resolve at
    generation time: every referenced classifier's owning library, minus
    the library itself and libraries without a schema of their own
    (PRIMLibraries map onto XSD built-in types; CCLibraries are modeling
    provenance reached via ``basedOn``, never imported).  Order is
    deterministic (first-reference order).
    """
    found: list[Library] = []
    seen: set[int] = set()
    for classifier in _scan_references(model, library, context).classifiers:
        owning = model.owning_library_of(_WrapperShim(classifier))
        if owning is None or owning.element is library.element:
            continue
        if owning.stereotype not in _SCHEMA_STEREOTYPES:
            continue
        if id(owning.element) in seen:
            continue
        seen.add(id(owning.element))
        found.append(owning)
    return found


@dataclass
class CachedGeneration:
    """One cached library schema plus the facts needed to reuse it.

    ``provenance`` replays the schema's provenance records on a cache
    hit, so a warm-cache run's :class:`~repro.xsdgen.provenance.ProvenanceIndex`
    is identical to a cold run's.
    """

    key: str
    library_name: str
    stereotype: str
    root_name: str | None
    namespace: LibraryNamespace
    schema: Schema
    dependencies: tuple[str, ...]
    provenance: "tuple[ProvenanceRecord, ...]" = ()

    def to_payload(self) -> dict:
        """The JSON-ready disk representation (schema serialized to text)."""
        return {
            "format": CACHE_FORMAT_VERSION,
            "key": self.key,
            "library": self.library_name,
            "stereotype": self.stereotype,
            "root": self.root_name,
            "namespace": {
                "urn": self.namespace.urn,
                "folder": self.namespace.folder,
                "file_name": self.namespace.file_name,
                "preferred_prefix": self.namespace.preferred_prefix,
                "stereotype": self.namespace.stereotype,
            },
            "dependencies": list(self.dependencies),
            "schema": schema_to_string(self.schema),
            "provenance": [record.to_dict() for record in self.provenance],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CachedGeneration | None":
        """Rebuild an entry from its disk form; None when incompatible."""
        if payload.get("format") != CACHE_FORMAT_VERSION:
            return None
        from repro.xsdgen.provenance import ProvenanceRecord

        namespace = LibraryNamespace(**payload["namespace"])
        return cls(
            key=payload["key"],
            library_name=payload["library"],
            stereotype=payload["stereotype"],
            root_name=payload.get("root"),
            namespace=namespace,
            schema=parse_schema(payload["schema"]),
            dependencies=tuple(payload.get("dependencies", ())),
            provenance=tuple(
                ProvenanceRecord.from_dict(record)
                for record in payload.get("provenance", ())
            ),
        )


class GenerationCache:
    """Thread-safe LRU of generated schemas with an optional disk layer.

    One cache instance is safely shared by any number of generators (and
    threads).  Keys are :func:`fingerprint_library` digests, so a model
    mutation -- or an options/root change -- misses instead of returning a
    stale schema.  When ``cache_dir`` is set, entries are also persisted
    as ``{fingerprint}.json`` files and survive the process; a fingerprint
    change simply keys a new file, leaving the stale one unread.
    """

    def __init__(self, max_entries: int = 256, cache_dir: str | Path | None = None) -> None:
        if max_entries < 1:
            raise ValueError("GenerationCache needs max_entries >= 1")
        self.max_entries = max_entries
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._entries: OrderedDict[str, CachedGeneration] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = counter("xsdgen.cache_hits")
        self._misses = counter("xsdgen.cache_misses")
        self._evictions = counter("xsdgen.cache_evictions")
        self._size = gauge("xsdgen.cache_size")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- lookup ---------------------------------------------------------------

    def get(self, key: str) -> CachedGeneration | None:
        """The entry for ``key``, from memory or disk; None on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits.inc()
                return entry
        entry = self._load_from_disk(key)
        if entry is not None:
            self._hits.inc()
            self._insert(entry)
            return entry
        self._misses.inc()
        return None

    def contains(self, key: str) -> bool:
        """Whether ``key`` would hit, *without* counting a hit or miss.

        Used by the generator's parallel scheduler to size the real work
        (cache-miss-eligible libraries) before deciding between threads
        and a serial run -- a planning peek, so it must not skew the
        ``xsdgen.cache_hits``/``misses`` counters or the LRU order.
        """
        with self._lock:
            if key in self._entries:
                return True
        return self.cache_dir is not None and self._disk_path(key).is_file()

    def put(self, entry: CachedGeneration) -> None:
        """Insert (or refresh) an entry; persists when disk is enabled."""
        self._insert(entry)
        if self.cache_dir is not None:
            self._write_to_disk(entry)

    def clear(self) -> None:
        """Drop every in-memory entry (disk files are left alone)."""
        with self._lock:
            self._entries.clear()
            self._size.set(0)

    def keys(self) -> list[str]:
        """The in-memory keys, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    # -- internals --------------------------------------------------------------

    def _insert(self, entry: CachedGeneration) -> None:
        with self._lock:
            self._entries[entry.key] = entry
            self._entries.move_to_end(entry.key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions.inc()
            self._size.set(len(self._entries))

    def _disk_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.json"

    def _load_from_disk(self, key: str) -> CachedGeneration | None:
        if self.cache_dir is None:
            return None
        path = self._disk_path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            return CachedGeneration.from_payload(payload)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError) as error:
            # A corrupt or foreign file is a miss, not a failure.
            _log.warning("ignoring unreadable cache file %s: %s", path, error)
            return None

    def _write_to_disk(self, entry: CachedGeneration) -> None:
        assert self.cache_dir is not None
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            path = self._disk_path(entry.key)
            tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
            tmp.write_text(
                json.dumps(entry.to_payload(), indent=2, sort_keys=True),
                encoding="utf-8",
            )
            tmp.replace(path)
        except OSError as error:
            _log.warning("cannot persist cache entry to %s: %s", self.cache_dir, error)


#: The process-wide cache shared by generators that enable caching.
_default_cache = GenerationCache()
_directory_caches: dict[str, GenerationCache] = {}
_registry_lock = threading.Lock()


def get_generation_cache() -> GenerationCache:
    """The process-global in-memory generation cache."""
    return _default_cache


def set_generation_cache(cache: GenerationCache) -> GenerationCache:
    """Replace the process-global cache; returns the previous one."""
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous


def cache_for_directory(cache_dir: str | Path, max_entries: int = 256) -> GenerationCache:
    """The shared cache backed by ``cache_dir`` (one instance per path)."""
    key = str(Path(cache_dir).resolve())
    with _registry_lock:
        cache = _directory_caches.get(key)
        if cache is None:
            cache = GenerationCache(max_entries=max_entries, cache_dir=cache_dir)
            _directory_caches[key] = cache
        return cache
