"""BIELibrary schema generation (the paper's Figure 7).

"The generation of a schema from a BIELibrary follows the same principle as
the generation of a DOCLibrary schema" -- every ABIE of the library gets a
complexType; shared-aggregation ASBIEs become global elements plus ``ref``
(Figure 7's ``AssignedAddress``); imports are added for ABIEs and data
types defined in other libraries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ccts.libraries import BieLibrary
from repro.obs.metrics import counter, histogram
from repro.obs.trace import span
from repro.profile import BIE_LIBRARY
from repro.xsdgen.abie_types import append_abie
from repro.xsdgen.session import wrap_build_errors

if TYPE_CHECKING:  # pragma: no cover
    from repro.xsdgen.generator import SchemaBuilder


def build(builder: "SchemaBuilder") -> None:
    """Populate the builder's schema for a BIELibrary."""
    library = builder.library
    assert isinstance(library, BieLibrary)
    with wrap_build_errors(BIE_LIBRARY, library.name), span(
        "xsdgen.build.bie", library=library.name, abies=len(library.abies)
    ), histogram(
        "xsdgen.library_build_ms", stereotype=BIE_LIBRARY
    ).time():
        for abie in library.abies:
            builder.generator.session.status(f"Processing ABIE {abie.name!r}")
            append_abie(builder, abie)
        counter("xsdgen.abies_processed").inc(len(library.abies))
