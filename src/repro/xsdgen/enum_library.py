"""ENUMLibrary schema generation.

"For every element stereotyped as ENUM in an ENUMLibrary a simpleType is
created.  The simpleType contains a restriction with base xsd:token.  The
values are then defined in enumeration tags."

The enumerated values are the literal *names* (the codes: ``USA``,
``AUT``); the display values (``United States of America``) go into the
CCTS annotation when annotations are enabled.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ccts.libraries import EnumLibrary
from repro.ndr.names import enum_simple_type_name
from repro.obs.metrics import counter, histogram
from repro.obs.trace import span
from repro.profile import ENUM_LIBRARY
from repro.xmlutil.qname import QName
from repro.xsd.components import XSD_NS, Annotation, Facet, SimpleType
from repro.xsdgen.session import wrap_build_errors

if TYPE_CHECKING:  # pragma: no cover
    from repro.xsdgen.generator import SchemaBuilder


def build(builder: "SchemaBuilder") -> None:
    """Populate the builder's schema for an ENUMLibrary."""
    library = builder.library
    assert isinstance(library, EnumLibrary)
    with wrap_build_errors(ENUM_LIBRARY, library.name), span(
        "xsdgen.build.enum", library=library.name, enums=len(library.enumerations)
    ), histogram(
        "xsdgen.library_build_ms", stereotype=ENUM_LIBRARY
    ).time():
        _build(builder, library)


def _build(builder: "SchemaBuilder", library: EnumLibrary) -> None:
    counter("xsdgen.enums_processed").inc(len(library.enumerations))
    for enum in library.enumerations:
        builder.generator.session.status(f"Processing ENUM {enum.name!r}")
        annotation = builder.annotation_for(enum, "ENUM", enum.name)
        if annotation is not None:
            code_names = [
                ("CodeName", f"{literal.name}: {literal.value}")
                for literal in enum.literals
                if literal.value and literal.value != literal.name
            ]
            annotation = Annotation(annotation.entries + code_names)
        builder.emit(
            SimpleType(
                name=enum_simple_type_name(enum.name),
                base=QName(XSD_NS, "token"),
                facets=[Facet("enumeration", literal.name) for literal in enum.literals],
                annotation=annotation,
            ),
            source=enum,
            rule="NDR-ENUM-ST",
        )
