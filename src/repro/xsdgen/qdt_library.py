"""QDTLibrary schema generation.

"A schema generated from a QDTLibrary looks very similar to a schema
generated from a CDTLibrary.  Again, the data type specified in the content
component determines the base for the extension.  If an enumeration is used
to restrict the possible values for the content component, the complexType
of the enumeration is used for the restriction.  In case the content
component has no enumeration assigned to it, the complexType of the
underlying core data type is used for the restriction."

Concretely:

* **enum-restricted content** -> ``simpleContent/extension`` whose base is
  the enumeration's simpleType (imported from the ENUMLibrary schema), plus
  the kept supplementary components as attributes;
* **no enumeration** -> ``simpleContent/restriction`` whose base is the
  underlying CDT's complexType (imported from the CDTLibrary schema); kept
  supplementary components are re-declared, dropped ones are explicitly
  prohibited -- making the schema-level derivation an honest restriction of
  the CDT, mirroring the model-level derivation-by-restriction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ccts.libraries import QdtLibrary
from repro.ndr.names import attribute_name, complex_type_name
from repro.obs.metrics import counter, histogram
from repro.obs.trace import span
from repro.profile import QDT_LIBRARY
from repro.xsd.components import AttributeDecl, AttributeUse, ComplexType, SimpleContent
from repro.xsdgen.cdt_library import component_type_qname, supplementary_attributes
from repro.xsdgen.session import wrap_build_errors

if TYPE_CHECKING:  # pragma: no cover
    from repro.xsdgen.generator import SchemaBuilder


def build(builder: "SchemaBuilder") -> None:
    """Populate the builder's schema for a QDTLibrary."""
    library = builder.library
    assert isinstance(library, QdtLibrary)
    session = builder.generator.session
    with wrap_build_errors(QDT_LIBRARY, library.name), span(
        "xsdgen.build.qdt", library=library.name, qdts=len(library.qdts)
    ), histogram(
        "xsdgen.library_build_ms", stereotype=QDT_LIBRARY
    ).time():
        _build(builder, library, session)


def _build(builder: "SchemaBuilder", library: QdtLibrary, session) -> None:
    counter("xsdgen.data_types_processed").inc(len(library.qdts))
    for qdt in library.qdts:
        session.status(f"Processing QDT {qdt.name!r}")
        content = qdt.content_component
        if content is None or content.element.type is None:
            session.fail(f"QDT {qdt.name!r} has no typed content component")
        base_cdt = qdt.based_on
        if base_cdt is None:
            session.fail(f"QDT {qdt.name!r} has no basedOn dependency to a CDT")
        type_name = complex_type_name(qdt.name)
        enum = qdt.content_enum
        attributes = supplementary_attributes(builder, qdt, type_name)
        if enum is not None:
            rule = "NDR-QDT-ENUM"
            base_qname = component_type_qname(builder, enum.element)
            simple_content = SimpleContent(
                base=base_qname,
                derivation="extension",
                attributes=attributes,
            )
            builder.record(
                kind="extension",
                name=base_qname.local,
                path=f"{type_name}/extension@base",
                source=content,
                rule="NDR-CON-BASE",
                type_ref=base_qname,
            )
        else:
            rule = "NDR-QDT-RESTRICT"
            cdt_library = builder.generator.library_of(base_cdt)
            base_qname = builder.qname_in(cdt_library, complex_type_name(base_cdt.name))
            kept = {sup.name for sup in qdt.supplementary_components}
            dropped: list[AttributeDecl] = []
            for sup in base_cdt.supplementary_components:
                if sup.name in kept or sup.element.type is None:
                    continue
                if sup.multiplicity.lower >= 1:
                    # XSD forbids prohibiting a required attribute in a
                    # restriction; the inherited (required) declaration stays.
                    session.status(
                        f"WARNING: QDT {qdt.name!r} drops required supplementary "
                        f"{sup.name!r} of CDT {base_cdt.name!r}; XSD restriction cannot "
                        f"remove it, instances must still carry it"
                    )
                    continue
                prohibited = AttributeDecl(
                    name=attribute_name(sup.name),
                    type=component_type_qname(builder, sup.element.type),
                    use=AttributeUse.PROHIBITED,
                )
                dropped.append(prohibited)
                builder.record(
                    kind="attribute",
                    name=prohibited.name,
                    path=f"{type_name}/@{prohibited.name}",
                    source=sup,
                    rule="NDR-QDT-SUP-PROHIBIT",
                    type_ref=prohibited.type,
                )
            simple_content = SimpleContent(
                base=base_qname,
                derivation="restriction",
                attributes=attributes + dropped,
            )
        builder.emit(
            ComplexType(
                name=type_name,
                simple_content=simple_content,
                annotation=builder.annotation_for(qdt, "QDT", qdt.name),
            ),
            source=qdt,
            rule=rule,
            type_ref=base_qname,
        )
