"""CDTLibrary schema generation (the paper's Figure 8).

"A core data type is defined as complexType in XML.  However, it does not
contain a sequence of elements but a simpleContent element whose extension
base is the data type specified in the content component of the core data
type. ... The supplementary components are defined as attributes of the
complexType.  The data type of an attribute and its multiplicity is again
retrieved from the definition in the UML model."
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ccts.data_types import CoreDataType
from repro.ccts.libraries import CdtLibrary
from repro.ndr.names import attribute_name, complex_type_name, enum_simple_type_name
from repro.obs.metrics import counter, histogram
from repro.obs.trace import span
from repro.profile import CDT_LIBRARY
from repro.uml.classifier import Classifier, Enumeration
from repro.xmlutil.qname import QName
from repro.xsd.components import XSD_NS, AttributeDecl, AttributeUse, ComplexType, SimpleContent
from repro.xsdgen.primitives import builtin_or_string, record_primitive_mapping
from repro.xsdgen.session import wrap_build_errors

if TYPE_CHECKING:  # pragma: no cover
    from repro.xsdgen.generator import SchemaBuilder


def component_type_qname(builder: "SchemaBuilder", type_: Classifier) -> QName:
    """The XSD type for a CON/SUP component: built-in or imported ENUM type."""
    if isinstance(type_, Enumeration):
        from repro.ccts.data_types import EnumerationType

        enum_wrapper = EnumerationType(type_, builder.generator.model.model)
        enum_library = builder.generator.library_of(enum_wrapper)
        return builder.qname_in(enum_library, enum_simple_type_name(type_.name))
    return builtin_or_string(type_.name)


def supplementary_attributes(
    builder: "SchemaBuilder", data_type: CoreDataType, type_name: str
) -> list[AttributeDecl]:
    """Attribute declarations for a data type's supplementary components.

    ``type_name`` is the owning complexType's name; each attribute is
    recorded at the path ``{type_name}/@{attribute}`` under NDR-SUP-ATTR.
    """
    attributes = []
    for sup in data_type.supplementary_components:
        type_ = sup.element.type
        if type_ is None:
            builder.generator.session.fail(
                f"supplementary component {data_type.name}.{sup.name} has no type"
            )
        type_qname = component_type_qname(builder, type_)
        use = AttributeUse.REQUIRED if sup.multiplicity.lower >= 1 else AttributeUse.OPTIONAL
        attribute = AttributeDecl(
            name=attribute_name(sup.name),
            type=type_qname,
            use=use,
            annotation=builder.annotation_for(sup, "SUP"),
        )
        attributes.append(attribute)
        builder.record(
            kind="attribute",
            name=attribute.name,
            path=f"{type_name}/@{attribute.name}",
            source=sup,
            rule="NDR-SUP-ATTR",
            type_ref=type_qname,
        )
        if type_qname.namespace == XSD_NS:
            record_primitive_mapping(builder, type_, f"{type_name}/@{attribute.name}")
    return attributes


def build(builder: "SchemaBuilder") -> None:
    """Populate the builder's schema for a CDTLibrary."""
    library = builder.library
    assert isinstance(library, CdtLibrary)
    session = builder.generator.session
    with wrap_build_errors(CDT_LIBRARY, library.name), span(
        "xsdgen.build.cdt", library=library.name, cdts=len(library.cdts)
    ), histogram(
        "xsdgen.library_build_ms", stereotype=CDT_LIBRARY
    ).time():
        _build(builder, library, session)


def _build(builder: "SchemaBuilder", library: CdtLibrary, session) -> None:
    counter("xsdgen.data_types_processed").inc(len(library.cdts))
    for cdt in library.cdts:
        session.status(f"Processing CDT {cdt.name!r}")
        content = cdt.content_component
        if content is None or content.element.type is None:
            session.fail(f"CDT {cdt.name!r} has no typed content component")
        type_name = complex_type_name(cdt.name)
        base_qname = component_type_qname(builder, content.element.type)
        builder.emit(
            ComplexType(
                name=type_name,
                simple_content=SimpleContent(
                    base=base_qname,
                    derivation="extension",
                    attributes=supplementary_attributes(builder, cdt, type_name),
                ),
                annotation=builder.annotation_for(cdt, "CDT", cdt.name),
            ),
            source=cdt,
            rule="NDR-CDT-CT",
        )
        builder.record(
            kind="extension",
            name=base_qname.local,
            path=f"{type_name}/extension@base",
            source=content,
            rule="NDR-CON-BASE",
            type_ref=base_qname,
        )
        if base_qname.namespace == XSD_NS:
            record_primitive_mapping(builder, content.element.type, f"{type_name}/extension@base")
