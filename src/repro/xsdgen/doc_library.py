"""DOCLibrary schema generation (the paper's Figure 6).

"In a selected DOCLibrary the Add-In starts at the selected root element
and pursues every outgoing aggregation and composition connector.
Interdependencies to other libraries are evaluated and the necessary
schemas are generated." -- only the local ABIEs reachable from the chosen
root get complex types (Figure 6 defines ``HoardingPermitType`` but not the
unused ``HoardingDetailsType``); one global element is declared for the
root, typed by its complexType.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ccts.bie import Abie
from repro.ccts.libraries import DocLibrary
from repro.errors import CctsError
from repro.ndr.names import complex_type_name
from repro.obs.metrics import counter, histogram
from repro.obs.trace import span
from repro.profile import DOC_LIBRARY
from repro.xsd.components import ElementDecl
from repro.xsdgen.abie_types import append_abie
from repro.xsdgen.session import wrap_build_errors

if TYPE_CHECKING:  # pragma: no cover
    from repro.xsdgen.generator import SchemaBuilder


def build(builder: "SchemaBuilder", root: Abie | str | None) -> None:
    """Populate the builder's schema for a DOCLibrary."""
    library = builder.library
    assert isinstance(library, DocLibrary)
    session = builder.generator.session

    with wrap_build_errors(DOC_LIBRARY, library.name), span(
        "xsdgen.build.doc", library=library.name
    ) as build_span, histogram(
        "xsdgen.library_build_ms", stereotype=DOC_LIBRARY
    ).time():
        root_abie = _resolve_root(library, root, builder)
        session.status(f"Selected root element {root_abie.name!r}")
        build_span.set(root=root_abie.name)

        abies = _reachable_local_abies(library, root_abie)
        for abie in abies:
            session.status(f"Processing ABIE {abie.name!r}")
            append_abie(builder, abie)
        counter("xsdgen.abies_processed").inc(len(abies))

        builder.emit(
            ElementDecl(
                name=root_abie.name,
                type=builder.own_qname(complex_type_name(root_abie.name)),
                annotation=builder.annotation_for(root_abie, "ABIE", root_abie.den()),
            ),
            source=root_abie,
            rule="NDR-DOC-ROOT",
        )


def _resolve_root(library: DocLibrary, root: Abie | str | None, builder: "SchemaBuilder") -> Abie:
    """Resolve the user's root selection (the Figure-5 dropdown)."""
    candidates = library.root_candidates()
    if isinstance(root, Abie):
        if all(candidate.element is not root.element for candidate in candidates):
            builder.generator.session.fail(
                f"root element {root.name!r} is not defined in DOCLibrary {library.name!r}"
            )
        return root
    if isinstance(root, str):
        try:
            return library.abie(root)
        except CctsError:
            builder.generator.session.fail(
                f"root element {root!r} is not defined in DOCLibrary {library.name!r}"
            )
    if len(candidates) == 1:
        return candidates[0]
    if not candidates:
        builder.generator.session.fail(f"DOCLibrary {library.name!r} defines no ABIE to use as root")
    builder.generator.session.fail(
        f"DOCLibrary {library.name!r} defines {len(candidates)} ABIEs "
        f"({', '.join(candidate.name for candidate in candidates)}); select a root element"
    )
    raise AssertionError("unreachable")  # pragma: no cover


def _reachable_local_abies(library: DocLibrary, root: Abie) -> list[Abie]:
    """Local ABIEs reachable from the root via ASBIEs, in BFS order."""
    local_elements = {abie.element for abie in library.abies}
    order: list[Abie] = []
    seen: set[int] = set()
    queue: list[Abie] = [root]
    while queue:
        current = queue.pop(0)
        if id(current.element) in seen:
            continue
        seen.add(id(current.element))
        if current.element in local_elements:
            order.append(current)
            for asbie in current.asbies:
                queue.append(asbie.target)
        # External ABIEs are not expanded here: their libraries generate
        # their own schemas (triggered by the import machinery).
    return order
