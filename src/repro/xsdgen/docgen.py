"""Human-readable HTML documentation for generated schema sets.

Business partners adopting a document standard read *documentation*, not
raw XSD.  :func:`document_schemas` renders one self-contained HTML page for
a generation result: a namespace index, one section per schema with its
types and elements, cross-linked type references, multiplicities in UML
notation and the CCTS annotations (definitions, versions, dictionary entry
names) where the model provided them.

No external assets: the styling is a small embedded stylesheet, so the
file can be mailed around like the spreadsheets the paper complains about
-- except this one is generated and always current.
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.xmlutil.qname import QName
from repro.xsd.components import (
    XSD_NS,
    Annotation,
    ChoiceGroup,
    ComplexType,
    ElementDecl,
    Schema,
    SequenceGroup,
    SimpleType,
)
from repro.xsdgen.generator import GenerationResult

_STYLE = """
body { font-family: Georgia, serif; margin: 2em auto; max-width: 60em; color: #222; }
h1 { border-bottom: 3px double #888; padding-bottom: .3em; }
h2 { background: #f0ede6; padding: .3em .5em; margin-top: 2em; }
h3 { margin-top: 1.5em; }
table { border-collapse: collapse; width: 100%; margin: .5em 0; }
th, td { border: 1px solid #ccc; padding: .3em .6em; text-align: left;
         font-family: "DejaVu Sans Mono", monospace; font-size: .85em; }
th { background: #f7f5f0; }
.den { color: #666; font-style: italic; }
.def { margin: .3em 0 .8em; }
.kind { color: #875; font-variant: small-caps; margin-right: .5em; }
code { background: #f4f2ec; padding: 0 .2em; }
nav ul { columns: 2; }
"""


def _doc_text(value: str) -> str:
    """Escape model-supplied documentation text for HTML.

    Beyond :func:`html.escape`, carriage returns become ``&#13;`` -- the
    same rule as XML character data (parsers normalize a literal ``\\r``
    away on input), so definitions round-trip through the page source.
    """
    return html.escape(value).replace("\r", "&#13;")


def _anchor(namespace: str, local: str) -> str:
    return f"t-{abs(hash((namespace, local))) % 10**10}-{local}"


def _type_link(qname: QName | None, known: set[tuple[str, str]]) -> str:
    if qname is None:
        return "—"
    label = html.escape(qname.local)
    if qname.namespace == XSD_NS:
        return f"<code>xsd:{label}</code>"
    if (qname.namespace, qname.local) in known:
        return f'<a href="#{_anchor(qname.namespace, qname.local)}"><code>{label}</code></a>'
    return f"<code>{label}</code>"


def _mult(min_occurs: int, max_occurs: int | None) -> str:
    upper = "*" if max_occurs is None else str(max_occurs)
    if str(min_occurs) == upper:
        return str(min_occurs)
    return f"{min_occurs}..{upper}"


def _annotation_html(annotation: Annotation | None) -> str:
    if annotation is None or annotation.is_empty():
        return ""
    parts = []
    entries = dict(annotation.entries)
    den = entries.get("DictionaryEntryName")
    if den:
        parts.append(f'<div class="den">{_doc_text(den)}</div>')
    definition = entries.get("Definition")
    if definition:
        parts.append(f'<div class="def">{_doc_text(definition)}</div>')
    return "".join(parts)


def _elements_of(particle) -> list[ElementDecl]:
    if particle is None:
        return []
    found: list[ElementDecl] = []
    for child in particle.particles:
        if isinstance(child, ElementDecl):
            found.append(child)
        elif isinstance(child, (SequenceGroup, ChoiceGroup)):
            found.extend(_elements_of(child))
    return found


def _complex_type_html(schema: Schema, ct: ComplexType, known: set[tuple[str, str]]) -> str:
    out = [f'<h3 id="{_anchor(schema.target_namespace, ct.name)}">'
           f'<span class="kind">complexType</span>{html.escape(ct.name)}</h3>']
    out.append(_annotation_html(ct.annotation))
    if ct.simple_content is not None:
        content = ct.simple_content
        out.append(
            f"<p>Simple content: <em>{content.derivation}</em> of "
            f"{_type_link(content.base, known)}</p>"
        )
        if content.attributes:
            out.append("<table><tr><th>attribute</th><th>type</th><th>use</th></tr>")
            for attribute in content.attributes:
                out.append(
                    f"<tr><td>{html.escape(attribute.name)}</td>"
                    f"<td>{_type_link(attribute.type, known)}</td>"
                    f"<td>{attribute.use.value}</td></tr>"
                )
            out.append("</table>")
    elif ct.particle is not None:
        elements = _elements_of(ct.particle)
        if elements:
            out.append("<table><tr><th>element</th><th>type</th><th>occurs</th></tr>")
            for element in elements:
                name = element.name if not element.is_ref else f"ref: {element.ref.local}"
                type_ref = element.type if not element.is_ref else element.ref
                out.append(
                    f"<tr><td>{html.escape(name)}</td>"
                    f"<td>{_type_link(type_ref, known)}</td>"
                    f"<td>{_mult(element.min_occurs, element.max_occurs)}</td></tr>"
                )
            out.append("</table>")
        else:
            out.append("<p>(no content)</p>")
    return "\n".join(out)


def _simple_type_html(schema: Schema, st: SimpleType, known: set[tuple[str, str]]) -> str:
    out = [f'<h3 id="{_anchor(schema.target_namespace, st.name)}">'
           f'<span class="kind">simpleType</span>{html.escape(st.name)}</h3>']
    out.append(_annotation_html(st.annotation))
    out.append(f"<p>Restriction of {_type_link(st.base, known)}</p>")
    values = st.enumeration_values
    if values:
        codes = ", ".join(f"<code>{html.escape(v)}</code>" for v in values)
        out.append(f"<p>Allowed values: {codes}</p>")
    return "\n".join(out)


def document_schemas(result: GenerationResult, title: str = "Schema documentation") -> str:
    """Render one HTML page documenting every schema in ``result``."""
    known: set[tuple[str, str]] = set()
    for generated in result.schemas.values():
        for item in generated.schema.items:
            if isinstance(item, (ComplexType, SimpleType)):
                known.add((generated.namespace.urn, item.name))

    out = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        "<nav><ul>",
    ]
    ordered = [result.schemas[urn] for urn in sorted(result.schemas)]
    for generated in ordered:
        out.append(
            f'<li><a href="#ns-{_anchor(generated.namespace.urn, "_")}">'
            f"{html.escape(generated.library.name)}</a> "
            f"<code>{html.escape(generated.namespace.urn)}</code></li>"
        )
    out.append("</ul></nav>")

    for generated in ordered:
        schema = generated.schema
        out.append(
            f'<h2 id="ns-{_anchor(generated.namespace.urn, "_")}">'
            f"{html.escape(generated.library.stereotype)} "
            f"{html.escape(generated.library.name)}</h2>"
        )
        out.append(f"<p>Namespace: <code>{html.escape(schema.target_namespace)}</code><br>")
        out.append(f"File: <code>{html.escape(generated.namespace.file_name)}</code></p>")
        for element in schema.global_elements:
            out.append(
                f"<p><span class='kind'>root element</span>"
                f"<strong>{html.escape(element.name)}</strong> of type "
                f"{_type_link(element.type, known)}</p>"
            )
        for item in schema.items:
            if isinstance(item, ComplexType):
                out.append(_complex_type_html(schema, item, known))
            elif isinstance(item, SimpleType):
                out.append(_simple_type_html(schema, item, known))
    out.append("</body></html>")
    return "\n".join(out)


def write_documentation(result: GenerationResult, path: str | Path, title: str = "Schema documentation") -> Path:
    """Render and write the documentation page; returns the path."""
    path = Path(path)
    path.write_text(document_schemas(result, title), encoding="utf-8")
    return path
