"""Schema provenance: which model element and NDR rule produced what.

The paper's generator (section 4, Figures 6-8) maps every profiled UML
element onto an XSD construct by a fixed naming-and-design rule.  This
module records that mapping explicitly: every construct a library builder
emits carries a :class:`ProvenanceRecord` naming

* the **target** -- schema namespace/file, XSD component kind, local name
  and a slash path inside the document (``HoardingPermitType/StartDate``,
  ``CodeType/@listID``),
* the **source** -- the UML element's ``xmi:id``, qualified package path
  and stereotype, plus the ACC/BCC/CDT it is ``basedOn`` when the model
  records a derivation,
* the **rule** -- one id from :data:`NDR_RULES`, and
* the **import edge** -- the foreign namespace URN when the construct's
  type lives in another library's schema.

Records are collected per generated library (so the generator's memo and
the fingerprint-keyed cache replay them together with the schema bytes)
and queried through a thread-safe :class:`ProvenanceIndex` in both
directions: ``by_target`` answers "which model element produced this
complexType", ``by_source`` answers "what did this UML element turn
into".  :func:`coverage` inverts the index into a dead-model report: the
elements of generated libraries that produced no XSD artifact at all.

Serialization is JSON-per-record (:meth:`ProvenanceRecord.to_dict`), used
by the disk cache, the ``provenance.jsonl`` sidecar export and the
``xs:appinfo`` embedding; see docs/observability.md ("Provenance").
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import CctsError
from repro.obs.metrics import counter, gauge

if TYPE_CHECKING:  # pragma: no cover
    from repro.ccts.base import ElementWrapper

#: NDR rule catalog: rule id -> the paper's transformation rule it encodes.
#: Ids are stable API -- `upcc explain` prints them and tests assert them.
NDR_RULES: dict[str, str] = {
    "NDR-ABIE-CT": (
        "Every ABIE becomes a complexType named after the business entity "
        "plus a Type postfix, a sequence of BBIE then ASBIE elements (Figs. 6-7)."
    ),
    "NDR-BBIE-EL": (
        "Every BBIE becomes a local element named after the attribute, typed "
        "by its CDT/QDT complexType, multiplicity from the UML model (s. 4.1)."
    ),
    "NDR-ASBIE-INLINE": (
        "A composition ASBIE becomes an inline local element whose compound "
        "name is role + target ABIE name, typed by the target's complexType (Fig. 6)."
    ),
    "NDR-ASBIE-REF": (
        "A shared-aggregation ASBIE is first declared as a global element and "
        "then referenced from the sequence (Fig. 7)."
    ),
    "NDR-DOC-ROOT": (
        "The selected root element of a DOCLibrary is declared as the global "
        "document element, typed by its ABIE complexType (Fig. 6)."
    ),
    "NDR-CDT-CT": (
        "Every CDT becomes a complexType with simpleContent whose extension "
        "base is the content component's type (Fig. 8)."
    ),
    "NDR-CON-BASE": (
        "The content component determines the simpleContent base type: an XSD "
        "built-in for primitives, the enumeration simpleType otherwise (Fig. 8)."
    ),
    "NDR-SUP-ATTR": (
        "Every supplementary component becomes an attribute of the data "
        "type's complexType; type and multiplicity from the UML model (Fig. 8)."
    ),
    "NDR-QDT-ENUM": (
        "A QDT whose content component is enum-restricted extends the "
        "enumeration's simpleType (s. 4.1)."
    ),
    "NDR-QDT-RESTRICT": (
        "A QDT without an enumeration restricts the underlying CDT's "
        "complexType (s. 4.1)."
    ),
    "NDR-QDT-SUP-PROHIBIT": (
        "A supplementary component dropped by the QDT derivation is "
        "explicitly prohibited in the schema-level restriction."
    ),
    "NDR-ENUM-ST": (
        "Every ENUM becomes a simpleType restricting xsd:token with one "
        "enumeration facet per literal (s. 4.1)."
    ),
    "NDR-PRIM-BUILTIN": (
        "PRIMLibraries generate no schema; primitive types map onto XSD "
        "built-in types (s. 4.1)."
    ),
    "NDR-IMPORT": (
        "A reference to an element defined in a different library imports "
        "that library's (transitively generated) schema (s. 4)."
    ),
}


@dataclass(frozen=True)
class ProvenanceRecord:
    """One emitted XSD construct traced back to its UML source and NDR rule."""

    target_namespace: str
    schema_file: str
    target_kind: str
    target_name: str
    target_path: str
    source_stereotype: str
    source_name: str
    source_path: str
    source_id: str | None
    rule: str
    based_on: str | None = None
    imported_namespace: str | None = None

    @property
    def rule_text(self) -> str:
        """The catalog text of this record's NDR rule."""
        return NDR_RULES.get(self.rule, "(unknown rule)")

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (None fields omitted)."""
        data: dict[str, object] = {
            "target_namespace": self.target_namespace,
            "schema_file": self.schema_file,
            "target_kind": self.target_kind,
            "target_name": self.target_name,
            "target_path": self.target_path,
            "source_stereotype": self.source_stereotype,
            "source_name": self.source_name,
            "source_path": self.source_path,
            "rule": self.rule,
        }
        if self.source_id is not None:
            data["source_id"] = self.source_id
        if self.based_on is not None:
            data["based_on"] = self.based_on
        if self.imported_namespace is not None:
            data["imported_namespace"] = self.imported_namespace
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ProvenanceRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            target_namespace=data["target_namespace"],
            schema_file=data["schema_file"],
            target_kind=data["target_kind"],
            target_name=data["target_name"],
            target_path=data["target_path"],
            source_stereotype=data["source_stereotype"],
            source_name=data["source_name"],
            source_path=data["source_path"],
            source_id=data.get("source_id"),
            rule=data["rule"],
            based_on=data.get("based_on"),
            imported_namespace=data.get("imported_namespace"),
        )

    def describe(self) -> str:
        """One human line: target <- source via rule."""
        parts = [
            f"{self.target_kind} {self.target_path}",
            f"<- {self.source_stereotype} {self.source_path}",
        ]
        if self.source_id:
            parts.append(f"(xmi:id {self.source_id})")
        parts.append(f"[{self.rule}]")
        if self.based_on:
            parts.append(f"basedOn {self.based_on}")
        if self.imported_namespace:
            parts.append(f"imports {self.imported_namespace}")
        return " ".join(parts)


def record_for(
    *,
    namespace_urn: str,
    schema_file: str,
    kind: str,
    name: str,
    path: str,
    source: "ElementWrapper",
    rule: str,
    imported_namespace: str | None = None,
) -> ProvenanceRecord:
    """Build a record from a CCTS wrapper, deriving the ``basedOn`` link."""
    if rule not in NDR_RULES:
        raise ValueError(f"unknown NDR rule id {rule!r}")
    based_on: str | None = None
    try:
        base = getattr(source, "based_on", None)
        if base is not None and hasattr(base, "qualified_name"):
            based_on = f"{base.stereotype} {base.qualified_name}"
    except CctsError:
        based_on = None
    counter("xsdgen.provenance_records").inc()
    return ProvenanceRecord(
        target_namespace=namespace_urn,
        schema_file=schema_file,
        target_kind=kind,
        target_name=name,
        target_path=path,
        source_stereotype=source.stereotype,
        source_name=source.name,
        source_path=source.qualified_name,
        source_id=source.element.xmi_id,
        rule=rule,
        based_on=based_on,
        imported_namespace=imported_namespace,
    )


#: `--target` spec: an XPath-ish ``//xsd:complexType[@name='X']`` form.
_TARGET_XPATH = re.compile(
    r"^//(?:xsd?:)?(?P<kind>\w+)\[@name=(?P<q>['\"]?)(?P<name>[^'\"\]]+)(?P=q)\]$"
)


def parse_target(spec: str) -> tuple[str | None, str]:
    """Parse a target spec into ``(kind, path)``.

    Accepts the XPath-ish form ``//xsd:complexType[@name='CodeType']``
    (kind constrained), a slash path ``HoardingPermitType/StartDate`` or a
    bare component name (kind unconstrained).
    """
    match = _TARGET_XPATH.match(spec.strip())
    if match:
        return match.group("kind"), match.group("name")
    return None, spec.strip()


class ProvenanceIndex:
    """Thread-safe, two-way queryable collection of provenance records."""

    def __init__(self, records: Iterable[ProvenanceRecord] = ()) -> None:
        self._lock = threading.Lock()
        self._records: list[ProvenanceRecord] = []
        self._by_source_path: dict[str, list[ProvenanceRecord]] = {}
        self._by_source_id: dict[str, list[ProvenanceRecord]] = {}
        for record in records:
            self.add(record)

    def add(self, record: ProvenanceRecord) -> None:
        """Index one record (both directions)."""
        with self._lock:
            self._records.append(record)
            self._by_source_path.setdefault(record.source_path, []).append(record)
            if record.source_id is not None:
                self._by_source_id.setdefault(record.source_id, []).append(record)

    def extend(self, records: Iterable[ProvenanceRecord]) -> None:
        """Index several records."""
        for record in records:
            self.add(record)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[ProvenanceRecord]:
        return iter(self.records())

    def records(self) -> list[ProvenanceRecord]:
        """Every record, in emission order (copy)."""
        with self._lock:
            return list(self._records)

    # -- queries ---------------------------------------------------------------

    def by_target(self, spec: str, namespace: str | None = None) -> list[ProvenanceRecord]:
        """Records whose target matches ``spec`` (see :func:`parse_target`).

        A bare name matches ``target_name`` and whole ``target_path``
        values; a slash path matches ``target_path`` exactly; the XPath
        form additionally constrains the component kind.  ``namespace``
        restricts matches to one schema's URN.
        """
        kind, path = parse_target(spec)
        with self._lock:
            hits = []
            for record in self._records:
                if namespace is not None and record.target_namespace != namespace:
                    continue
                if kind is not None and record.target_kind != kind:
                    continue
                if record.target_path == path or record.target_name == path:
                    hits.append(record)
            return hits

    def by_source(self, key: str) -> list[ProvenanceRecord]:
        """Records produced by a UML element: xmi:id, qualified name or name.

        Exact xmi:id and exact qualified-name hits are tried first; a bare
        element name falls back to a trailing-path match so
        ``by_source("HoardingPermit.StartDate")`` works without the full
        package path.
        """
        with self._lock:
            exact = self._by_source_id.get(key)
            if exact:
                return list(exact)
            exact = self._by_source_path.get(key)
            if exact:
                return list(exact)
            suffix = f".{key}"
            return [
                record
                for path, bucket in sorted(self._by_source_path.items())
                if path.endswith(suffix)
                for record in bucket
            ]

    def source_paths(self) -> set[str]:
        """The qualified names of every element that produced something."""
        with self._lock:
            return set(self._by_source_path)

    def namespaces(self) -> set[str]:
        """Every target namespace URN seen in the records."""
        with self._lock:
            return {record.target_namespace for record in self._records}

    # -- serialization ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per record, newline separated."""
        return "\n".join(
            json.dumps(record.to_dict(), sort_keys=True) for record in self.records()
        )

    @classmethod
    def from_jsonl(cls, text: str) -> "ProvenanceIndex":
        """Rebuild an index from :meth:`to_jsonl` output."""
        records = [
            ProvenanceRecord.from_dict(json.loads(line))
            for line in text.splitlines()
            if line.strip()
        ]
        return cls(records)

    def export(self, sink) -> int:
        """Fan every record out to an obs sink (``on_provenance``).

        Works with any :class:`repro.obs.SpanSink`; the JSON-lines sink
        appends one object per record, logfmt writes one line.  Returns
        the number of records exported.
        """
        records = self.records()
        for record in records:
            sink.on_provenance(record.to_dict())
        return len(records)


def records_from_schema_text(text: str) -> list[ProvenanceRecord]:
    """Extract embedded ``xs:appinfo`` provenance records from schema text.

    The inverse of generating with ``embed_provenance=True``; an empty
    list when the document carries no provenance block.
    """
    import xml.etree.ElementTree as ET

    from repro.xsd.writer import PROVENANCE_NS

    root = ET.fromstring(text)
    return [
        ProvenanceRecord.from_dict(dict(node.attrib))
        for node in root.iter(f"{{{PROVENANCE_NS}}}record")
    ]


@dataclass
class CoverageReport:
    """Dead-model detection: elements of generated libraries without output."""

    total_elements: int
    mapped: int
    unmapped: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every candidate element produced at least one artifact."""
        return not self.unmapped

    def render_text(self) -> str:
        """Human-readable coverage summary."""
        lines = [
            f"provenance coverage: {self.mapped}/{self.total_elements} model "
            f"element(s) produced XSD artifacts"
        ]
        for stereotype, path in self.unmapped:
            lines.append(f"  unmapped: {stereotype} {path}")
        return "\n".join(lines)


def _coverage_candidates(libraries: Iterable) -> list["ElementWrapper"]:
    """The schema-relevant wrappers of every library the run generated."""
    from repro.ccts.libraries import BieLibrary, CdtLibrary, EnumLibrary, QdtLibrary

    candidates: list[ElementWrapper] = []
    for library in libraries:
        if isinstance(library, BieLibrary):  # DocLibrary subclasses BieLibrary
            for abie in library.abies:
                candidates.append(abie)
                candidates.extend(abie.bbies)
                candidates.extend(abie.asbies)
        elif isinstance(library, QdtLibrary):
            for qdt in library.qdts:
                candidates.append(qdt)
                candidates.extend(qdt.supplementary_components)
        elif isinstance(library, CdtLibrary):
            for cdt in library.cdts:
                candidates.append(cdt)
                content = cdt.content_component
                if content is not None:
                    candidates.append(content)
                candidates.extend(cdt.supplementary_components)
        elif isinstance(library, EnumLibrary):
            candidates.extend(library.enumerations)
    return candidates


def coverage(libraries: Iterable, index: ProvenanceIndex) -> CoverageReport:
    """Which elements of the generated libraries produced no XSD artifact.

    ``libraries`` are the Library wrappers the run actually generated
    schemas for (a library the run never reached is absent by design, not
    dead); :meth:`~repro.xsdgen.generator.GenerationResult.coverage` passes
    them for you.  The ``xsdgen.unmapped_elements`` gauge is set to the
    unmapped count.
    """
    mapped_paths = index.source_paths()
    candidates = _coverage_candidates(libraries)
    unmapped = [
        (wrapper.stereotype, wrapper.qualified_name)
        for wrapper in candidates
        if wrapper.qualified_name not in mapped_paths
    ]
    report = CoverageReport(
        total_elements=len(candidates),
        mapped=len(candidates) - len(unmapped),
        unmapped=sorted(unmapped, key=lambda pair: pair[1]),
    )
    gauge("xsdgen.unmapped_elements").set(len(report.unmapped))
    return report
