"""RDF Schema projection of a core-components model.

Unlike the RELAX NG path (which translates the generated XSDs), RDF Schema
is generated straight from the *model*, because its unit is the concept,
not the document syntax:

* every ACC and ABIE becomes an ``rdfs:Class``,
* every BCC/BBIE becomes an ``rdf:Property`` with ``rdfs:domain`` the
  owning aggregate and ``rdfs:range`` the data type's class,
* every ASCC/ASBIE becomes an ``rdf:Property`` ranging over the target
  aggregate,
* every CDT/QDT becomes an ``rdfs:Datatype``-flavoured class,
* the ``basedOn`` derivation maps onto ``rdfs:subClassOf`` /
  ``rdfs:subPropertyOf`` -- restriction *is* specialization in RDFS terms,
* CCTS definitions become ``rdfs:comment``, dictionary entry names become
  ``rdfs:label``.
"""

from __future__ import annotations

from repro.ccts.model import CctsModel
from repro.ndr.namespaces import NamespacePolicy
from repro.xmlutil.writer import XmlElement, XmlWriter

RDF_NS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
RDFS_NS = "http://www.w3.org/2000/01/rdf-schema#"


class _RdfsBuilder:
    def __init__(self, model: CctsModel) -> None:
        self.model = model
        self.policy = NamespacePolicy()
        self.root = XmlElement("rdf:RDF")
        self.root.set("xmlns:rdf", RDF_NS)
        self.root.set("xmlns:rdfs", RDFS_NS)
        self._uri_of: dict[int, str] = {}

    def _register(self, wrapper, local: str) -> str:
        library = self.model.owning_library_of(wrapper)
        base = self.policy.namespace_for(library).urn if library is not None else "urn:upcc"
        uri = f"{base}#{local}"
        self._uri_of[id(wrapper.element)] = uri
        return uri

    def _describe(self, node: XmlElement, wrapper, label: str) -> None:
        node.add("rdfs:label").text(label)
        definition = wrapper.definition
        if definition:
            node.add("rdfs:comment").text(definition)

    def build(self) -> XmlElement:
        with self.model.model.indexed():
            self._build_data_types()
            self._build_aggregates()
            self._build_properties()
        return self.root

    # -- passes -------------------------------------------------------------------

    def _build_data_types(self) -> None:
        for cdt in self.model.cdts():
            uri = self._register(cdt, cdt.name)
            node = self.root.add("rdfs:Class", {"rdf:about": uri})
            self._describe(node, cdt, cdt.name)
        for qdt in self.model.qdts():
            uri = self._register(qdt, qdt.name)
            node = self.root.add("rdfs:Class", {"rdf:about": uri})
            self._describe(node, qdt, qdt.name)
            base = qdt.based_on
            if base is not None:
                node.add("rdfs:subClassOf", {"rdf:resource": self._uri_of[id(base.element)]})

    def _build_aggregates(self) -> None:
        for acc in self.model.accs():
            uri = self._register(acc, acc.name)
            node = self.root.add("rdfs:Class", {"rdf:about": uri})
            self._describe(node, acc, acc.den())
        for abie in self.model.abies():
            uri = self._register(abie, abie.name)
            node = self.root.add("rdfs:Class", {"rdf:about": uri})
            self._describe(node, abie, abie.den())
            base = abie.based_on
            if base is not None:
                node.add("rdfs:subClassOf", {"rdf:resource": self._uri_of[id(base.element)]})

    def _property(self, about: str, domain: str, range_: str, label: str) -> XmlElement:
        node = self.root.add("rdf:Property", {"rdf:about": about})
        node.add("rdfs:label").text(label)
        node.add("rdfs:domain", {"rdf:resource": domain})
        node.add("rdfs:range", {"rdf:resource": range_})
        return node

    def _build_properties(self) -> None:
        for acc in self.model.accs():
            acc_uri = self._uri_of[id(acc.element)]
            for bcc in acc.bccs:
                if bcc.cdt is None:
                    continue
                self._property(
                    f"{acc_uri}.{bcc.name}", acc_uri,
                    self._uri_of[id(bcc.cdt.element)], bcc.den(),
                )
            for ascc in acc.asccs:
                self._property(
                    f"{acc_uri}.{ascc.role}", acc_uri,
                    self._uri_of[id(ascc.target.element)], ascc.den(),
                )
        for abie in self.model.abies():
            abie_uri = self._uri_of[id(abie.element)]
            base = abie.based_on
            for bbie in abie.bbies:
                data_type = bbie.data_type
                if data_type is None:
                    continue
                node = self._property(
                    f"{abie_uri}.{bbie.name}", abie_uri,
                    self._uri_of[id(data_type.element)], bbie.den(),
                )
                if base is not None:
                    core = next((b for b in base.bccs if b.name == bbie.name), None)
                    if core is not None:
                        node.add(
                            "rdfs:subPropertyOf",
                            {"rdf:resource": f"{self._uri_of[id(base.element)]}.{core.name}"},
                        )
            for asbie in abie.asbies:
                node = self._property(
                    f"{abie_uri}.{asbie.role}", abie_uri,
                    self._uri_of[id(asbie.target.element)], asbie.den(),
                )
                core_ascc = asbie.based_on
                if core_ascc is not None:
                    source_uri = self._uri_of[id(core_ascc.source.element)]
                    node.add(
                        "rdfs:subPropertyOf",
                        {"rdf:resource": f"{source_uri}.{core_ascc.role}"},
                    )


def model_to_rdfs(model: CctsModel) -> XmlElement:
    """Project ``model`` onto an RDF Schema document tree."""
    return _RdfsBuilder(model).build()


def rdfs_to_string(model: CctsModel) -> str:
    """Render the RDF Schema projection of ``model``."""
    return XmlWriter().to_string(model_to_rdfs(model))
