"""A derivative-based RELAX NG validator (James Clark's algorithm).

Validates instance documents against grammars produced by
:mod:`repro.rngen.relaxng`.  The implementation follows Clark's
"An algorithm for RELAX NG validation": patterns are immutable values and
validation computes Brzozowski-style derivatives --

``childDeriv`` = ``startTagOpenDeriv`` -> ``attDeriv``* ->
``startTagCloseDeriv`` -> children -> ``endTagDeriv`` -- with
``nullable`` deciding acceptance.

Supported pattern subset: everything the generator emits (``empty``,
``text``, ``data``, ``value``, ``choice``, ``group``, ``optional``,
``zeroOrMore``, ``oneOrMore``, ``element``, ``attribute``, ``ref``).
``interleave`` and name classes other than literal names are not needed
and not implemented.

The point of this module is the equivalence test: an instance valid per
the XSD validator must be valid per this independent engine against the
translated grammar (and mutated instances must fail both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import SchemaError
from repro.xmlutil.qname import QName
from repro.xmlutil.writer import XmlElement
from repro.xsd import datatypes
from repro.xsd.components import XSD_NS


class Pattern:
    """Base class; subclasses are frozen dataclasses usable as cache keys."""

    __slots__ = ()


@dataclass(frozen=True)
class Empty(Pattern):
    pass


@dataclass(frozen=True)
class NotAllowed(Pattern):
    pass


@dataclass(frozen=True)
class Text(Pattern):
    pass


@dataclass(frozen=True)
class Choice(Pattern):
    left: Pattern
    right: Pattern


@dataclass(frozen=True)
class Group(Pattern):
    left: Pattern
    right: Pattern


@dataclass(frozen=True)
class OneOrMore(Pattern):
    pattern: Pattern


@dataclass(frozen=True)
class ElementP(Pattern):
    name: QName
    ref: str  # define name holding the content pattern (lazy for recursion)


@dataclass(frozen=True)
class AttributeP(Pattern):
    name: str
    pattern: Pattern


@dataclass(frozen=True)
class DataP(Pattern):
    type_local: str


@dataclass(frozen=True)
class ValueP(Pattern):
    value: str


@dataclass(frozen=True)
class After(Pattern):
    """Clark's After pattern: what must match now / what matches afterwards."""

    left: Pattern
    right: Pattern


_EMPTY = Empty()
_NOT_ALLOWED = NotAllowed()
_TEXT = Text()


def choice(left: Pattern, right: Pattern) -> Pattern:
    if isinstance(left, NotAllowed):
        return right
    if isinstance(right, NotAllowed):
        return left
    if left == right:
        return left
    return Choice(left, right)


def group(left: Pattern, right: Pattern) -> Pattern:
    if isinstance(left, NotAllowed) or isinstance(right, NotAllowed):
        return _NOT_ALLOWED
    if isinstance(left, Empty):
        return right
    if isinstance(right, Empty):
        return left
    return Group(left, right)


def after(left: Pattern, right: Pattern) -> Pattern:
    if isinstance(left, NotAllowed) or isinstance(right, NotAllowed):
        return _NOT_ALLOWED
    return After(left, right)


@dataclass
class RngGrammar:
    """A compiled grammar: the start pattern plus named content defines."""

    start: Pattern
    defines: dict[str, Pattern] = field(default_factory=dict)

    def content_of(self, ref: str) -> Pattern:
        pattern = self.defines.get(ref)
        if pattern is None:
            raise SchemaError(f"grammar has no define {ref!r}")
        return pattern


# ---------------------------------------------------------------------------
# Grammar compilation from the XML syntax the generator emits
# ---------------------------------------------------------------------------


def compile_grammar(grammar_xml: XmlElement) -> RngGrammar:
    """Compile a generated ``<grammar>`` tree into patterns.

    Elements are compiled lazily into *content defines* keyed by the source
    node's identity, so recursive models terminate: an ``<element>`` node is
    compiled exactly once no matter how many type bodies reference it.
    """
    compiler = _Compiler()
    for define in grammar_xml.find_all("define"):
        compiler.named_defines[define.attributes["name"]] = define
    start = grammar_xml.find("start")
    if start is None:
        raise SchemaError("grammar has no <start>")
    grammar = RngGrammar(start=compiler.compile_children(start))
    # Drain the element-content work list (new entries may appear while
    # compiling earlier ones).
    while compiler.pending:
        key, node = compiler.pending.popitem()
        grammar.defines[key] = compiler.compile_children(node)
    return grammar


class _Compiler:
    def __init__(self) -> None:
        self.named_defines: dict[str, XmlElement] = {}
        #: content-define key -> the <element> node whose children to compile
        self.pending: dict[str, XmlElement] = {}
        self._content_key_of: dict[int, str] = {}

    def compile_children(self, node: XmlElement) -> Pattern:
        result: Pattern = _EMPTY
        for child in node.element_children:
            result = group(result, self.compile_pattern(child))
        return result

    def compile_pattern(self, node: XmlElement) -> Pattern:
        tag = node.tag
        if tag == "empty":
            return _EMPTY
        if tag == "notAllowed":
            return _NOT_ALLOWED
        if tag == "text":
            return _TEXT
        if tag == "data":
            return DataP(node.attributes.get("type", "string"))
        if tag == "value":
            return ValueP(node.text_content)
        if tag == "ref":
            name = node.attributes["name"]
            target = self.named_defines.get(name)
            if target is None:
                raise SchemaError(f"ref to unknown define {name!r}")
            # Inline the define's body; elements inside stay lazy.
            return self.compile_children(target)
        if tag == "element":
            return self._element_pattern(node)
        if tag == "attribute":
            content = self.compile_children(node)
            return AttributeP(node.attributes["name"], content if node.element_children else _TEXT)
        if tag == "optional":
            return choice(_EMPTY, self.compile_children(node))
        if tag == "zeroOrMore":
            return choice(_EMPTY, OneOrMore(self.compile_children(node)))
        if tag == "oneOrMore":
            return OneOrMore(self.compile_children(node))
        if tag == "group":
            return self.compile_children(node)
        if tag == "choice":
            result: Pattern = _NOT_ALLOWED
            for child in node.element_children:
                result = choice(result, self.compile_pattern(child))
            return result
        raise SchemaError(f"unsupported RELAX NG pattern <{tag}>")

    def _element_pattern(self, node: XmlElement) -> ElementP:
        qname = QName(node.attributes.get("ns", ""), node.attributes["name"])
        key = self._content_key_of.get(id(node))
        if key is None:
            key = f"content.{len(self._content_key_of) + 1}.{qname.local}"
            self._content_key_of[id(node)] = key
            self.pending[key] = node
        return ElementP(qname, key)


# ---------------------------------------------------------------------------
# Derivatives
# ---------------------------------------------------------------------------


class RngValidator:
    """Validates resolved instance trees against a compiled grammar."""

    def __init__(self, grammar: RngGrammar) -> None:
        self.grammar = grammar
        self._nullable = lru_cache(maxsize=None)(self._nullable_raw)

    # -- nullable -----------------------------------------------------------------

    def _nullable_raw(self, pattern: Pattern) -> bool:
        if isinstance(pattern, (Empty,)):
            return True
        if isinstance(pattern, (NotAllowed, ElementP, AttributeP, DataP, ValueP)):
            return False
        if isinstance(pattern, Text):
            return True
        if isinstance(pattern, Choice):
            return self._nullable(pattern.left) or self._nullable(pattern.right)
        if isinstance(pattern, (Group, After)):
            if isinstance(pattern, After):
                return False
            return self._nullable(pattern.left) and self._nullable(pattern.right)
        if isinstance(pattern, OneOrMore):
            return self._nullable(pattern.pattern)
        raise SchemaError(f"nullable: unknown pattern {pattern!r}")

    # -- text -------------------------------------------------------------------------

    def _text_deriv(self, pattern: Pattern, value: str) -> Pattern:
        if isinstance(pattern, Text):
            return _TEXT
        if isinstance(pattern, DataP):
            qname = QName(XSD_NS, pattern.type_local)
            normalized = datatypes.normalize_whitespace(qname, value)
            return _EMPTY if datatypes.check_builtin(qname, normalized) else _NOT_ALLOWED
        if isinstance(pattern, ValueP):
            return _EMPTY if value.strip() == pattern.value.strip() else _NOT_ALLOWED
        if isinstance(pattern, Choice):
            return choice(self._text_deriv(pattern.left, value), self._text_deriv(pattern.right, value))
        if isinstance(pattern, Group):
            left = group(self._text_deriv(pattern.left, value), pattern.right)
            if self._nullable(pattern.left):
                return choice(left, self._text_deriv(pattern.right, value))
            return left
        if isinstance(pattern, OneOrMore):
            return group(
                self._text_deriv(pattern.pattern, value),
                choice(_EMPTY, OneOrMore(pattern.pattern)),
            )
        if isinstance(pattern, After):
            return after(self._text_deriv(pattern.left, value), pattern.right)
        return _NOT_ALLOWED

    # -- start tag ------------------------------------------------------------------------

    def _start_tag_open_deriv(self, pattern: Pattern, qname: QName) -> Pattern:
        if isinstance(pattern, ElementP):
            if pattern.name == qname:
                return after(self.grammar.content_of(pattern.ref), _EMPTY)
            return _NOT_ALLOWED
        if isinstance(pattern, Choice):
            return choice(
                self._start_tag_open_deriv(pattern.left, qname),
                self._start_tag_open_deriv(pattern.right, qname),
            )
        if isinstance(pattern, Group):
            left = self._apply_after(
                lambda p: group(p, pattern.right),
                self._start_tag_open_deriv(pattern.left, qname),
            )
            if self._nullable(pattern.left):
                return choice(left, self._start_tag_open_deriv(pattern.right, qname))
            return left
        if isinstance(pattern, OneOrMore):
            return self._apply_after(
                lambda p: group(p, choice(_EMPTY, OneOrMore(pattern.pattern))),
                self._start_tag_open_deriv(pattern.pattern, qname),
            )
        if isinstance(pattern, After):
            return self._apply_after(
                lambda p: after(p, pattern.right),
                self._start_tag_open_deriv(pattern.left, qname),
            )
        return _NOT_ALLOWED

    def _apply_after(self, func, pattern: Pattern) -> Pattern:
        if isinstance(pattern, After):
            return after(pattern.left, func(pattern.right))
        if isinstance(pattern, Choice):
            return choice(self._apply_after(func, pattern.left), self._apply_after(func, pattern.right))
        if isinstance(pattern, NotAllowed):
            return _NOT_ALLOWED
        raise SchemaError(f"applyAfter on non-After pattern {pattern!r}")

    # -- attributes ------------------------------------------------------------------------------

    def _att_deriv(self, pattern: Pattern, name: str, value: str) -> Pattern:
        if isinstance(pattern, AttributeP):
            if pattern.name == name and self._value_matches(pattern.pattern, value):
                return _EMPTY
            return _NOT_ALLOWED
        if isinstance(pattern, Choice):
            return choice(self._att_deriv(pattern.left, name, value), self._att_deriv(pattern.right, name, value))
        if isinstance(pattern, Group):
            return choice(
                group(self._att_deriv(pattern.left, name, value), pattern.right),
                group(pattern.left, self._att_deriv(pattern.right, name, value)),
            )
        if isinstance(pattern, OneOrMore):
            return group(
                self._att_deriv(pattern.pattern, name, value),
                choice(_EMPTY, OneOrMore(pattern.pattern)),
            )
        if isinstance(pattern, After):
            return after(self._att_deriv(pattern.left, name, value), pattern.right)
        return _NOT_ALLOWED

    def _value_matches(self, pattern: Pattern, value: str) -> bool:
        derivative = self._text_deriv(pattern, value)
        return self._nullable(derivative) or (value == "" and self._nullable(pattern))

    def _start_tag_close_deriv(self, pattern: Pattern) -> Pattern:
        if isinstance(pattern, AttributeP):
            return _NOT_ALLOWED
        if isinstance(pattern, Choice):
            return choice(self._start_tag_close_deriv(pattern.left), self._start_tag_close_deriv(pattern.right))
        if isinstance(pattern, Group):
            return group(self._start_tag_close_deriv(pattern.left), self._start_tag_close_deriv(pattern.right))
        if isinstance(pattern, OneOrMore):
            inner = self._start_tag_close_deriv(pattern.pattern)
            if isinstance(inner, NotAllowed):
                return _NOT_ALLOWED
            return OneOrMore(inner)
        if isinstance(pattern, After):
            return after(self._start_tag_close_deriv(pattern.left), pattern.right)
        return pattern

    def _end_tag_deriv(self, pattern: Pattern) -> Pattern:
        if isinstance(pattern, Choice):
            return choice(self._end_tag_deriv(pattern.left), self._end_tag_deriv(pattern.right))
        if isinstance(pattern, After):
            if self._nullable(pattern.left):
                return pattern.right
            return _NOT_ALLOWED
        return _NOT_ALLOWED

    # -- children -----------------------------------------------------------------------------------

    def _children_deriv(self, pattern: Pattern, element) -> Pattern:
        """Derivative over an element's content (resolved-element shape)."""
        children = element.children
        text = element.text
        if not children and not text.strip():
            # Empty content also satisfies a text/data pattern with "".
            return choice(pattern, self._text_deriv(pattern, ""))
        if text.strip() and not children:
            return self._text_deriv(pattern, text)
        current = pattern
        if text.strip():
            current = self._text_deriv(current, text)
        for child in children:
            current = self._child_element_deriv(current, child)
        return current

    def _child_element_deriv(self, pattern: Pattern, element) -> Pattern:
        current = self._start_tag_open_deriv(pattern, element.qname)
        for qname, value in element.attributes.items():
            current = self._att_deriv(current, qname.local, value)
        current = self._start_tag_close_deriv(current)
        current = self._children_deriv(current, element)
        return self._end_tag_deriv(current)

    # -- entry point -----------------------------------------------------------------------------------

    def validate(self, document: XmlElement) -> bool:
        """True when ``document`` matches the grammar's start pattern."""
        from repro.xsd.validator import _resolve_instance

        resolved = _resolve_instance(document, {})
        final = self._child_element_deriv(self.grammar.start, resolved)
        return self._nullable(final)


def validate_with_rng(grammar_xml: XmlElement, document: XmlElement) -> bool:
    """Compile ``grammar_xml`` and validate ``document`` against it."""
    return RngValidator(compile_grammar(grammar_xml)).validate(document)
