"""Alternative transfer syntaxes: RELAX NG and RDF Schema.

Paper, section 4: "the generation is not necessarily limited to XML schema
and future extensions could include the generation of RELAX NG [8] or RDF
schemas [15] as well."  This package implements both extensions:

* :mod:`repro.rngen.relaxng` -- translate a generation result into one
  RELAX NG grammar (XML syntax) whose language is the same as the XSD
  set's (modulo XSD-only features like attribute prohibition, which have
  no RNG counterpart and are documented in the module),
* :mod:`repro.rngen.rdf` -- project the core-components *model* onto RDF
  Schema: classes for aggregates, properties for basic/association
  entities, with domains, ranges and basedOn traces,
* :mod:`repro.rngen.validator` -- an independent derivative-based RELAX NG
  validator (Clark's algorithm) proving the translated grammar accepts the
  same messages as the XSD path.
"""

from repro.rngen.rdf import model_to_rdfs, rdfs_to_string
from repro.rngen.relaxng import result_to_rng, rng_to_string
from repro.rngen.validator import RngValidator, compile_grammar, validate_with_rng

__all__ = [
    "RngValidator",
    "compile_grammar",
    "model_to_rdfs",
    "rdfs_to_string",
    "result_to_rng",
    "rng_to_string",
    "validate_with_rng",
]
