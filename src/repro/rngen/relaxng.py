"""RELAX NG (XML syntax) generation from a schema-generation result.

One combined ``<grammar>`` is produced for the whole schema closure:

* every global element becomes a define ``e.{prefix}.{Name}``; the chosen
  root's define is the grammar ``<start>``,
* every complexType becomes a define ``t.{prefix}.{Name}`` holding its
  *content pattern* (not the element), so local elements reference it,
* occurrences map to ``optional`` / ``zeroOrMore`` / ``oneOrMore`` (bounded
  ranges unroll: required copies plus optional tail),
* simpleContent chains flatten to an XSD ``<data>`` pattern (RNG borrows
  the XSD datatype library) plus attribute patterns,
* enumeration simple types become ``<choice><value>…``.

Known semantic gap (documented, no RNG counterpart): an XSD restriction
that *prohibits* an inherited attribute -- the RNG grammar simply omits the
attribute, which forbids it just the same because RNG attributes are
closed-world per element pattern.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.xmlutil.qname import QName
from repro.xmlutil.writer import XmlElement, XmlWriter
from repro.xsd.components import (
    XSD_NS,
    AttributeDecl,
    AttributeUse,
    ChoiceGroup,
    ComplexType,
    ElementDecl,
    Schema,
    SequenceGroup,
    SimpleType,
)
from repro.xsd.validator import SchemaSet
from repro.xsdgen.generator import GenerationResult

#: The RELAX NG structure namespace.
RNG_NS = "http://relaxng.org/ns/structure/1.0"
#: The XSD datatype library RNG borrows for <data> patterns.
XSD_DATATYPES = "http://www.w3.org/2001/XMLSchema-datatypes"


class _RngBuilder:
    def __init__(self, schema_set: SchemaSet, prefixes: dict[str, str]) -> None:
        self.schema_set = schema_set
        self.prefix_of = {uri: prefix for prefix, uri in prefixes.items()}
        self.grammar = XmlElement("grammar")
        self.grammar.set("xmlns", RNG_NS)
        self.grammar.set("datatypeLibrary", XSD_DATATYPES)

    # -- naming -----------------------------------------------------------------

    def _define_name(self, kind: str, namespace: str, local: str) -> str:
        prefix = self.prefix_of.get(namespace, "ns")
        return f"{kind}.{prefix}.{local}"

    # -- top level --------------------------------------------------------------------

    def build(self, root: QName) -> XmlElement:
        start = self.grammar.add("start")
        start.add("ref", {"name": self._define_name("e", root.namespace, root.local)})
        for namespace in sorted(self.schema_set.namespaces):
            schema = self.schema_set.schema_for(namespace)
            for element in schema.global_elements:
                define = self.grammar.add(
                    "define", {"name": self._define_name("e", namespace, element.name)}
                )
                define.append(self._global_element_pattern(element, schema))
            for complex_type in schema.complex_types:
                define = self.grammar.add(
                    "define", {"name": self._define_name("t", namespace, complex_type.name)}
                )
                for pattern in self._complex_type_patterns(complex_type, schema):
                    define.append(pattern)
                if not define.children:
                    define.add("empty")
            for simple_type in schema.simple_types:
                define = self.grammar.add(
                    "define", {"name": self._define_name("t", namespace, simple_type.name)}
                )
                define.append(self._simple_type_pattern(simple_type))
        return self.grammar

    # -- elements ---------------------------------------------------------------------

    def _global_element_pattern(self, element: ElementDecl, schema: Schema) -> XmlElement:
        node = XmlElement("element", {"name": element.name, "ns": schema.target_namespace})
        for pattern in self._type_reference_patterns(element.type):
            node.append(pattern)
        return node

    def _type_reference_patterns(self, type_name: QName | None) -> list[XmlElement]:
        if type_name is None:
            return [XmlElement("text")]
        if type_name.namespace == XSD_NS:
            return [XmlElement("data", {"type": type_name.local})]
        return [XmlElement("ref", {"name": self._define_name("t", type_name.namespace, type_name.local)})]

    def _local_element_pattern(self, decl: ElementDecl, schema: Schema) -> XmlElement:
        if decl.is_ref:
            return XmlElement(
                "ref", {"name": self._define_name("e", decl.ref.namespace, decl.ref.local)}
            )
        node = XmlElement("element", {"name": decl.name, "ns": schema.target_namespace})
        for pattern in self._type_reference_patterns(decl.type):
            node.append(pattern)
        return node

    # -- occurrence wrapping -------------------------------------------------------------

    def _wrap_occurs(self, pattern: XmlElement, min_occurs: int, max_occurs: int | None) -> list[XmlElement]:
        if min_occurs == 0 and max_occurs == 1:
            wrapper = XmlElement("optional")
            wrapper.append(pattern)
            return [wrapper]
        if min_occurs == 0 and max_occurs is None:
            wrapper = XmlElement("zeroOrMore")
            wrapper.append(pattern)
            return [wrapper]
        if min_occurs == 1 and max_occurs is None:
            wrapper = XmlElement("oneOrMore")
            wrapper.append(pattern)
            return [wrapper]
        if min_occurs == 1 and max_occurs == 1:
            return [pattern]
        # Bounded range: required copies + optional tail.
        patterns = [self._clone(pattern) for _ in range(min_occurs)]
        if max_occurs is None:
            wrapper = XmlElement("zeroOrMore")
            wrapper.append(self._clone(pattern))
            patterns.append(wrapper)
        else:
            for _ in range(max_occurs - min_occurs):
                wrapper = XmlElement("optional")
                wrapper.append(self._clone(pattern))
                patterns.append(wrapper)
        return patterns or [XmlElement("empty")]

    def _clone(self, pattern: XmlElement) -> XmlElement:
        copy = XmlElement(pattern.tag, dict(pattern.attributes))
        for child in pattern.children:
            copy.children.append(self._clone(child) if isinstance(child, XmlElement) else child)
        return copy

    # -- groups and types -----------------------------------------------------------------

    def _group_patterns(self, group: SequenceGroup | ChoiceGroup, schema: Schema) -> list[XmlElement]:
        inner: list[XmlElement] = []
        for particle in group.particles:
            if isinstance(particle, ElementDecl):
                pattern = self._local_element_pattern(particle, schema)
                inner.extend(self._wrap_occurs(pattern, particle.min_occurs, particle.max_occurs))
            else:
                inner.extend(self._group_patterns(particle, schema))
        if isinstance(group, ChoiceGroup):
            choice = XmlElement("choice")
            for pattern in inner:
                choice.append(pattern)
            inner = [choice]
        if group.min_occurs == 1 and group.max_occurs == 1:
            return inner
        container = XmlElement("group")
        for pattern in inner:
            container.append(pattern)
        return self._wrap_occurs(container, group.min_occurs, group.max_occurs)

    def _complex_type_patterns(self, complex_type: ComplexType, schema: Schema) -> list[XmlElement]:
        patterns: list[XmlElement] = []
        if complex_type.simple_content is not None:
            base, attributes, enum_values = self._flatten_simple_content(complex_type)
            for attribute in attributes:
                patterns.extend(self._attribute_patterns(attribute))
            if enum_values:
                choice = XmlElement("choice")
                for value in enum_values:
                    choice.add("value").text(value)
                patterns.append(choice)
            else:
                patterns.append(XmlElement("data", {"type": base.local}))
            return patterns
        for attribute in complex_type.attributes:
            patterns.extend(self._attribute_patterns(attribute))
        if complex_type.particle is not None:
            patterns.extend(self._group_patterns(complex_type.particle, schema))
        return patterns

    def _attribute_patterns(self, attribute: AttributeDecl) -> list[XmlElement]:
        if attribute.use is AttributeUse.PROHIBITED:
            return []  # closed-world attributes: omission forbids it
        node = XmlElement("attribute", {"name": attribute.name})
        type_ = attribute.type
        if type_.namespace == XSD_NS:
            node.add("data", {"type": type_.local})
        else:
            node.add("ref", {"name": self._define_name("t", type_.namespace, type_.local)})
        if attribute.use is AttributeUse.OPTIONAL:
            wrapper = XmlElement("optional")
            wrapper.append(node)
            return [wrapper]
        return [node]

    def _simple_type_pattern(self, simple_type: SimpleType) -> XmlElement:
        values = simple_type.enumeration_values
        if values:
            choice = XmlElement("choice")
            for value in values:
                choice.add("value").text(value)
            return choice
        return XmlElement("data", {"type": simple_type.base.local})

    def _flatten_simple_content(self, complex_type: ComplexType):
        """(builtin base, effective attributes, enum values) of a content chain."""
        content = complex_type.simple_content
        assert content is not None
        base = content.base
        if base.namespace == XSD_NS:
            return base, list(content.attributes), []
        definition = self.schema_set.find_type(base)
        if definition is None:
            raise SchemaError(f"unresolved simpleContent base {base.clark()}")
        if isinstance(definition, SimpleType):
            values = definition.enumeration_values
            flat_base = definition.base if definition.base.namespace == XSD_NS else QName(XSD_NS, "token")
            return flat_base, list(content.attributes), values
        inherited_base, inherited_attrs, inherited_values = self._flatten_simple_content(definition)
        if content.derivation == "extension":
            merged = inherited_attrs + content.attributes
        else:
            by_name = {a.name: a for a in inherited_attrs}
            for attribute in content.attributes:
                by_name[attribute.name] = attribute
            merged = list(by_name.values())
        return inherited_base, merged, inherited_values


def result_to_rng(result: GenerationResult, root: QName | str) -> XmlElement:
    """Translate a whole generation result into one RELAX NG grammar."""
    schema_set = result.schema_set()
    prefixes: dict[str, str] = {}
    for generated in result.schemas.values():
        prefix = generated.schema.prefix_for(generated.namespace.urn)
        if prefix:
            prefixes[prefix] = generated.namespace.urn
    if isinstance(root, str):
        candidates = [
            QName(namespace, root)
            for namespace in schema_set.namespaces
            if schema_set.find_global_element(QName(namespace, root)) is not None
        ]
        if len(candidates) != 1:
            raise SchemaError(f"root element {root!r} resolves to {len(candidates)} namespaces")
        root = candidates[0]
    return _RngBuilder(schema_set, prefixes).build(root)


def rng_to_string(grammar: XmlElement) -> str:
    """Render a grammar built by :func:`result_to_rng`."""
    return XmlWriter().to_string(grammar)
