"""The model root: a package with whole-model registries and lookups."""

from __future__ import annotations

import contextlib
from typing import Iterator, TypeVar

from repro.errors import ModelError
from repro.uml.association import Association
from repro.uml.classifier import Classifier
from repro.uml.dependency import Dependency
from repro.uml.elements import Element, NamedElement
from repro.uml.package import Package

ElementT = TypeVar("ElementT", bound=Element)


class Model(Package):
    """The root package of a core-components model.

    Besides plain containment, the model offers whole-tree queries the
    generator and the validation engine rely on: find classifiers by name or
    stereotype anywhere, collect all associations whose whole-end is a given
    class, and follow ``basedOn`` dependencies.

    Whole-model passes that do not mutate the model can wrap themselves in
    :meth:`indexed` to make those queries O(1) instead of O(model) -- the
    generator and the validation engine do.
    """

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self._active_index = None
        self._cached_index: "tuple[int, object] | None" = None
        self._index_depth = 0

    @contextlib.contextmanager
    def indexed(self):
        """Context manager: answer lookups from a one-shot snapshot index.

        Reentrant; the snapshot is built on first entry and dropped when the
        outermost context exits.  The model must not be mutated inside.
        A snapshot is reused across contexts while the model's
        :func:`~repro.uml.elements.structural_revision` has not moved, so
        repeated passes over an unchanged model skip the rebuild.
        """
        from repro.uml.elements import structural_revision
        from repro.uml.index import ModelIndex

        if self._index_depth == 0:
            revision = structural_revision()
            cached = self._cached_index
            if cached is not None and cached[0] == revision:
                self._active_index = cached[1]
            else:
                self._active_index = ModelIndex(self)
                self._cached_index = (revision, self._active_index)
        self._index_depth += 1
        try:
            yield self._active_index
        finally:
            self._index_depth -= 1
            if self._index_depth == 0:
                self._active_index = None

    def all_elements(self) -> Iterator[Element]:
        """Every element in the model, depth first."""
        return self.walk()

    def all_of_type(self, element_type: type[ElementT]) -> Iterator[ElementT]:
        """Every element that is an instance of ``element_type``."""
        for element in self.walk():
            if isinstance(element, element_type):
                yield element

    def all_with_stereotype(self, stereotype: str) -> Iterator[Element]:
        """Every element carrying ``stereotype``."""
        for element in self.walk():
            if element.has_stereotype(stereotype):
                yield element

    def find_classifier_anywhere(self, name: str) -> Classifier | None:
        """The first classifier named ``name`` anywhere in the model."""
        for classifier in self.all_of_type(Classifier):
            if classifier.name == name:
                return classifier
        return None

    def associations_anywhere_from(self, source: Classifier) -> list[Association]:
        """All associations model-wide whose whole end attaches to ``source``.

        The generator follows "every outgoing aggregation and composition
        connector" (paper section 4.1) -- connectors may be owned by the
        library that draws them, not the library owning the class, so the
        search is model wide and result order is model order.
        """
        if self._active_index is not None:
            return self._active_index.associations_from(source)
        return [a for a in self.all_of_type(Association) if a.source.type is source]

    def dependencies_of(self, client: NamedElement, stereotype: str | None = None) -> list[Dependency]:
        """All dependencies whose client is ``client`` (optionally filtered)."""
        if self._active_index is not None:
            return self._active_index.dependencies_of(client, stereotype)
        found = []
        for dependency in self.all_of_type(Dependency):
            if dependency.client is client:
                if stereotype is None or dependency.has_stereotype(stereotype):
                    found.append(dependency)
        return found

    def based_on_target(self, client: NamedElement) -> NamedElement | None:
        """The supplier of the client's ``basedOn`` dependency, if any."""
        deps = self.dependencies_of(client, "basedOn")
        if not deps:
            return None
        if len(deps) > 1:
            raise ModelError(f"{client.name!r} has {len(deps)} basedOn dependencies, expected one")
        return deps[0].supplier

    def owning_package_of(self, element: Element) -> Package | None:
        """The nearest package owning ``element`` (None for the model itself)."""
        owner = element.owner
        while owner is not None and not isinstance(owner, Package):
            owner = owner.owner
        return owner
