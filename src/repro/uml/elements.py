"""Base classes for all UML model elements.

:class:`Element` carries the cross-cutting machinery every element needs:
stereotype applications with tagged values, documentation, and an optional
stable ``xmi_id``.  :class:`NamedElement` adds the name / qualified-name
behaviour used throughout lookups and the NDR naming rules.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.errors import ProfileError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.uml.package import Package

#: Process-wide structural revision: bumped on every element mutation.
_structural_revision = 0


def structural_revision() -> int:
    """The current model-structure revision counter.

    A single process-wide counter that advances whenever any
    :class:`Element` is structurally mutated -- a public attribute is
    assigned (names, types, owners, multiplicities, ...) or a stereotype
    application / tagged value changes.  Consumers that derive data from
    model structure (the generation-cache fingerprints) record the
    revision at computation time and treat their result as valid for as
    long as the counter has not moved: an element reachable through live
    wrappers cannot have changed -- nor can its ``id()`` have been
    recycled -- without at least one tracked mutation in between.

    In-place mutation of non-Element values (e.g. editing a
    ``Multiplicity`` object's fields directly) is not tracked; model
    edits should go through element attributes and the stereotype API.
    """
    return _structural_revision


def _bump_revision() -> None:
    global _structural_revision
    _structural_revision += 1


class Element:
    """Root of the UML element hierarchy.

    Stereotypes are stored as a mapping ``stereotype name -> tagged values``
    so one element can hold several applications, each with its own tags --
    the shape the UPCC profile needs (a package is both a ``BIELibrary`` and
    carries ``baseURN``/``namespacePrefix`` tags of that stereotype).
    """

    def __init__(self) -> None:
        self.stereotype_applications: dict[str, dict[str, str]] = {}
        self.documentation: str = ""
        self.xmi_id: str | None = None
        self.owner: "Element | None" = None

    def __setattr__(self, name: str, value: object) -> None:
        # Every public-attribute assignment is a structural mutation; see
        # structural_revision().  Private attributes stay untracked.
        object.__setattr__(self, name, value)
        if not name.startswith("_"):
            _bump_revision()

    # -- stereotype machinery -------------------------------------------------

    @property
    def stereotypes(self) -> list[str]:
        """Names of all applied stereotypes, in application order."""
        return list(self.stereotype_applications)

    def apply_stereotype(self, name: str, **tags: str) -> "Element":
        """Apply a stereotype (by name) with optional tagged values."""
        values = self.stereotype_applications.setdefault(name, {})
        for key, value in tags.items():
            values[key] = value
        _bump_revision()
        return self

    def has_stereotype(self, name: str) -> bool:
        """True when the stereotype ``name`` has been applied."""
        return name in self.stereotype_applications

    def remove_stereotype(self, name: str) -> None:
        """Remove a stereotype application; no-op when absent."""
        if self.stereotype_applications.pop(name, None) is not None:
            _bump_revision()

    def tagged_value(self, stereotype: str, tag: str, default: str | None = None) -> str | None:
        """The value of ``tag`` under ``stereotype``, or ``default``."""
        return self.stereotype_applications.get(stereotype, {}).get(tag, default)

    def set_tagged_value(self, stereotype: str, tag: str, value: str) -> None:
        """Set a tagged value; the stereotype must already be applied."""
        if stereotype not in self.stereotype_applications:
            raise ProfileError(
                f"cannot set tag {tag!r}: stereotype {stereotype!r} not applied to {self!r}"
            )
        self.stereotype_applications[stereotype][tag] = value
        _bump_revision()

    def any_tagged_value(self, tag: str, default: str | None = None) -> str | None:
        """Search every applied stereotype for ``tag`` (first hit wins)."""
        for values in self.stereotype_applications.values():
            if tag in values:
                return values[tag]
        return default

    # -- containment -----------------------------------------------------------

    def owned_elements(self) -> Iterator["Element"]:
        """Direct children; subclasses with containment override this."""
        return iter(())

    def walk(self) -> Iterator["Element"]:
        """Depth-first traversal of this element and everything it owns."""
        yield self
        for child in self.owned_elements():
            yield from child.walk()


class NamedElement(Element):
    """An element with a (possibly qualified) name."""

    def __init__(self, name: str = "") -> None:
        super().__init__()
        self.name = name

    @property
    def namespace(self) -> "Package | None":
        """The nearest owning package, or None for root elements."""
        from repro.uml.package import Package

        owner = self.owner
        while owner is not None and not isinstance(owner, Package):
            owner = owner.owner
        return owner

    @property
    def qualified_name(self) -> str:
        """Dot-separated path from the model root, e.g. ``Model.Lib.Code``."""
        parts: list[str] = [self.name]
        owner = self.owner
        while owner is not None:
            if isinstance(owner, NamedElement) and owner.name:
                parts.append(owner.name)
            owner = owner.owner
        return ".".join(reversed(parts))

    def __repr__(self) -> str:
        stereo = "".join(f"<<{name}>>" for name in self.stereotypes)
        return f"<{type(self).__name__} {stereo}{self.name!r}>"
