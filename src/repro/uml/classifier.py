"""Classifiers: classes, data types, primitive types and enumerations."""

from __future__ import annotations

from typing import Iterator

from repro.errors import ModelError
from repro.uml.elements import Element, NamedElement
from repro.uml.multiplicity import Multiplicity
from repro.uml.property import Property


class Classifier(NamedElement):
    """A named type that can own attributes."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self.attributes: list[Property] = []

    def add_attribute(
        self,
        name: str,
        type: "Classifier | None" = None,
        multiplicity: Multiplicity | str = Multiplicity(1, 1),
        stereotype: str | None = None,
        **tags: str,
    ) -> Property:
        """Create, own and return a new attribute.

        ``stereotype`` is applied immediately when given, with ``tags`` as
        its tagged values -- the common construction path for BCC/BBIE/CON/SUP
        attributes.
        """
        if any(existing.name == name for existing in self.attributes):
            raise ModelError(f"duplicate attribute {name!r} on classifier {self.name!r}")
        prop = Property(name, type, multiplicity)
        prop.owner = self
        if stereotype is not None:
            prop.apply_stereotype(stereotype, **tags)
        self.attributes.append(prop)
        return prop

    def attribute(self, name: str) -> Property:
        """The attribute called ``name`` (raises :class:`ModelError` if absent)."""
        for prop in self.attributes:
            if prop.name == name:
                return prop
        raise ModelError(f"classifier {self.name!r} has no attribute {name!r}")

    def attributes_with_stereotype(self, stereotype: str) -> list[Property]:
        """All owned attributes carrying the given stereotype."""
        return [prop for prop in self.attributes if prop.has_stereotype(stereotype)]

    def owned_elements(self) -> Iterator[Element]:
        return iter(self.attributes)


class Class(Classifier):
    """A UML class -- the metaclass behind ACC, ABIE and document stereotypes."""


class DataType(Classifier):
    """A UML data type -- the metaclass behind CDT and QDT stereotypes."""


class PrimitiveType(DataType):
    """A primitive type (PRIM stereotype): String, Integer, Boolean, ..."""


class EnumerationLiteral(NamedElement):
    """One literal of an enumeration; ``value`` is the human-readable form.

    Figure 4's ``CountryType_Code`` shows literals such as
    ``USA: String = United States o...`` -- a name plus a display value.
    """

    def __init__(self, name: str, value: str | None = None) -> None:
        super().__init__(name)
        self.value = value if value is not None else name


class Enumeration(DataType):
    """An enumeration type (ENUM stereotype) owning ordered literals."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self.literals: list[EnumerationLiteral] = []

    def add_literal(self, name: str, value: str | None = None) -> EnumerationLiteral:
        """Create, own and return a new literal."""
        if any(existing.name == name for existing in self.literals):
            raise ModelError(f"duplicate literal {name!r} in enumeration {self.name!r}")
        literal = EnumerationLiteral(name, value)
        literal.owner = self
        self.literals.append(literal)
        return literal

    def literal_names(self) -> list[str]:
        """The literal names in declaration order."""
        return [literal.name for literal in self.literals]

    def owned_elements(self) -> Iterator[Element]:
        yield from self.attributes
        yield from self.literals
