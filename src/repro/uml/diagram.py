"""Class-diagram rendering to Graphviz DOT.

The right hand side of the paper's Figure 4 shows per-package class
diagrams: stereotyped class boxes with attribute compartments, aggregation
connectors with role names and multiplicities, and dashed ``basedOn``
dependencies.  :func:`package_to_dot` renders one package in that style;
:func:`model_to_dot` renders a whole model with one cluster per library.

The output is plain DOT text — inspectable, diffable and renderable with
any Graphviz installation; nothing in this repository depends on one.
"""

from __future__ import annotations

from repro.uml.association import AggregationKind, Association
from repro.uml.classifier import Classifier, Enumeration
from repro.uml.dependency import Dependency
from repro.uml.model import Model
from repro.uml.package import Package

#: Arrowtail per aggregation kind (UML diamond conventions).
_ARROWTAILS = {
    AggregationKind.COMPOSITE: "diamond",
    AggregationKind.SHARED: "odiamond",
    AggregationKind.NONE: "none",
}


def _escape(text: str) -> str:
    """Escape raw user text for a plain DOT label."""
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _escape_record(text: str) -> str:
    """Escape raw user text for a DOT *record* label field."""
    escaped = _escape(text)
    for char in "{}|<>":
        escaped = escaped.replace(char, f"\\{char}")
    return escaped


def _node_id(element) -> str:
    return f"n{id(element)}"


def _classifier_label(classifier: Classifier) -> str:
    """An HTML-free record label: «stereotype» name | attributes.

    The guillemet markers render as escaped angle brackets (``\\<\\<``)
    because records reserve ``<`` for ports.
    """
    stereo = "".join(f"\\<\\<{_escape_record(name)}\\>\\> " for name in classifier.stereotypes)
    header = f"{stereo}{_escape_record(classifier.name)}"
    lines = [
        f"+ {prop.name}: {prop.type_name} [{prop.multiplicity}]"
        for prop in classifier.attributes
    ]
    if isinstance(classifier, Enumeration):
        lines.extend(f"{literal.name} = {literal.value}" for literal in classifier.literals)
    body = "\\l".join(_escape_record(line) for line in lines)
    if body:
        body += "\\l"
    return f"{{{header}|{body}}}"


def _emit_classifier(lines: list[str], classifier: Classifier, indent: str) -> None:
    lines.append(
        f'{indent}{_node_id(classifier)} [shape=record, label="{_classifier_label(classifier)}"];'
    )


def _emit_association(lines: list[str], association: Association, indent: str) -> None:
    tail = _ARROWTAILS[association.aggregation]
    label = f"+{association.target.name} [{association.target.multiplicity}]"
    lines.append(
        f"{indent}{_node_id(association.source.type)} -> {_node_id(association.target.type)} "
        f'[dir=both, arrowtail={tail}, arrowhead=vee, label="{_escape(label)}"];'
    )


def _emit_dependency(lines: list[str], dependency: Dependency, indent: str) -> None:
    stereo = "".join(f"\\<\\<{_escape(name)}\\>\\>" for name in dependency.stereotypes)
    lines.append(
        f"{indent}{_node_id(dependency.client)} -> {_node_id(dependency.supplier)} "
        f'[style=dashed, arrowhead=open, label="{stereo}"];'
    )


def package_to_dot(package: Package, name: str = "G") -> str:
    """Render one package's classes, associations and dependencies."""
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [fontsize=10];"]
    for classifier in package.classifiers:
        _emit_classifier(lines, classifier, "  ")
    for association in package.associations:
        _emit_association(lines, association, "  ")
    for dependency in package.dependencies:
        _emit_dependency(lines, dependency, "  ")
    lines.append("}")
    return "\n".join(lines)


def model_to_dot(model: Model, name: str = "Model") -> str:
    """Render the whole model: one cluster per stereotyped package.

    Cross-package edges (associations drawn in one library whose classes
    live in another, and basedOn dependencies across libraries) are emitted
    at the top level so Graphviz routes them between clusters.
    """
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [fontsize=10];", "  compound=true;"]
    cluster = 0
    emitted: set[int] = set()

    def walk(package: Package, indent: str) -> None:
        nonlocal cluster
        for sub in package.packages:
            stereo = "".join(f"«{n}» " for n in sub.stereotypes)
            lines.append(f"{indent}subgraph cluster_{cluster} {{")
            cluster += 1
            lines.append(f'{indent}  label="{_escape(stereo + sub.name)}";')
            for classifier in sub.classifiers:
                _emit_classifier(lines, classifier, indent + "  ")
                emitted.add(id(classifier))
            walk(sub, indent + "  ")
            lines.append(f"{indent}}}")

    walk(model, "  ")
    # Catch classifiers owned by the model root itself.
    for classifier in model.classifiers:
        _emit_classifier(lines, classifier, "  ")
        emitted.add(id(classifier))
    for element in model.walk():
        if isinstance(element, Association):
            _emit_association(lines, element, "  ")
        elif isinstance(element, Dependency):
            _emit_dependency(lines, element, "  ")
    lines.append("}")
    return "\n".join(lines)
