"""Multiplicities: ``lower..upper`` ranges with ``*`` for unbounded.

The generator maps these straight onto XSD ``minOccurs``/``maxOccurs`` (see
paper Figure 6 where ``0..*`` becomes ``minOccurs="0" maxOccurs="unbounded"``),
so the class also knows how to render itself in XSD terms.
"""

from __future__ import annotations

from dataclasses import dataclass

UNBOUNDED: int | None = None


@dataclass(frozen=True)
class Multiplicity:
    """An inclusive cardinality range ``lower..upper``.

    ``upper is None`` means unbounded (``*``).  The common UML shorthands are
    supported by :meth:`parse`: ``"1"`` -> 1..1, ``"0..1"``, ``"0..*"``,
    ``"*"`` -> 0..*, ``"1..*"``.
    """

    lower: int = 1
    upper: int | None = 1

    def __post_init__(self) -> None:
        if self.lower < 0:
            raise ValueError(f"lower bound must be >= 0, got {self.lower}")
        if self.upper is not None and self.upper < self.lower:
            raise ValueError(f"upper bound {self.upper} < lower bound {self.lower}")

    @classmethod
    def parse(cls, text: str) -> "Multiplicity":
        """Parse a UML multiplicity string such as ``"0..1"`` or ``"*"``."""
        text = text.strip()
        if not text:
            raise ValueError("empty multiplicity")
        if ".." in text:
            low_text, _, high_text = text.partition("..")
            lower = int(low_text)
            upper = None if high_text.strip() == "*" else int(high_text)
            return cls(lower, upper)
        if text == "*":
            return cls(0, None)
        value = int(text)
        return cls(value, value)

    @property
    def is_optional(self) -> bool:
        """True when the lower bound is zero."""
        return self.lower == 0

    @property
    def is_unbounded(self) -> bool:
        """True when the upper bound is ``*``."""
        return self.upper is None

    @property
    def is_single(self) -> bool:
        """True when at most one value is allowed."""
        return self.upper == 1

    def contains(self, count: int) -> bool:
        """True when ``count`` occurrences satisfy this multiplicity."""
        if count < self.lower:
            return False
        return self.upper is None or count <= self.upper

    def intersect(self, other: "Multiplicity") -> "Multiplicity | None":
        """The overlap of two ranges, or None when they are disjoint."""
        lower = max(self.lower, other.lower)
        if self.upper is None:
            upper = other.upper
        elif other.upper is None:
            upper = self.upper
        else:
            upper = min(self.upper, other.upper)
        if upper is not None and upper < lower:
            return None
        return Multiplicity(lower, upper)

    def is_restriction_of(self, other: "Multiplicity") -> bool:
        """True when every count valid here is also valid in ``other``.

        This is the check the derivation-by-restriction engine applies: a
        BBIE multiplicity must be a restriction of its BCC's multiplicity.
        """
        if self.lower < other.lower:
            return False
        if other.upper is None:
            return True
        return self.upper is not None and self.upper <= other.upper

    @property
    def min_occurs(self) -> str:
        """The XSD ``minOccurs`` value."""
        return str(self.lower)

    @property
    def max_occurs(self) -> str:
        """The XSD ``maxOccurs`` value (``unbounded`` for ``*``)."""
        return "unbounded" if self.upper is None else str(self.upper)

    def __str__(self) -> str:
        upper = "*" if self.upper is None else str(self.upper)
        if self.upper is not None and self.lower == self.upper:
            return str(self.lower)
        return f"{self.lower}..{upper}"


#: Frequently used constants.
ONE = Multiplicity(1, 1)
OPTIONAL = Multiplicity(0, 1)
MANY = Multiplicity(0, None)
ONE_OR_MORE = Multiplicity(1, None)
