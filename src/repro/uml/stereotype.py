"""Profile machinery: stereotype definitions, tag definitions, profiles.

A :class:`Profile` is a catalog of :class:`StereotypeDef` objects grouped in
named profile packages, mirroring Figure 3 of the paper (Management,
DataTypes, Common).  Definitions constrain *which metaclasses* a stereotype
may extend and *which tags* it may carry; :meth:`Profile.check_application`
enforces both, which is how the validation engine detects profile misuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProfileError
from repro.uml.elements import Element


@dataclass(frozen=True)
class TagDef:
    """Definition of one tagged value: name, requiredness, default."""

    name: str
    required: bool = False
    default: str | None = None
    description: str = ""


@dataclass
class StereotypeDef:
    """Definition of a stereotype: its name, metaclasses and tags.

    ``metaclasses`` holds class *names* from the UML kernel ("Package",
    "Class", "Property", "Association", "Dependency", "Enumeration",
    "DataType", "PrimitiveType"); an element matches when any name in its
    MRO matches.
    """

    name: str
    metaclasses: tuple[str, ...]
    tags: tuple[TagDef, ...] = ()
    description: str = ""
    abstract: bool = False

    def tag(self, name: str) -> TagDef | None:
        """The tag definition called ``name``, or None."""
        for tag_def in self.tags:
            if tag_def.name == name:
                return tag_def
        return None

    def extends(self, element: Element) -> bool:
        """True when this stereotype may be applied to ``element``."""
        mro_names = {cls.__name__ for cls in type(element).__mro__}
        return any(metaclass in mro_names for metaclass in self.metaclasses)


@dataclass
class Profile:
    """A named profile: packages of stereotype definitions."""

    name: str
    packages: dict[str, list[StereotypeDef]] = field(default_factory=dict)

    def add(self, package: str, stereotype: StereotypeDef) -> StereotypeDef:
        """Register a stereotype definition under a profile package."""
        existing = self.find(stereotype.name)
        if existing is not None:
            raise ProfileError(f"stereotype {stereotype.name!r} already defined in profile {self.name!r}")
        self.packages.setdefault(package, []).append(stereotype)
        return stereotype

    def find(self, name: str) -> StereotypeDef | None:
        """Look up a stereotype definition by name across all packages."""
        for stereotypes in self.packages.values():
            for stereotype in stereotypes:
                if stereotype.name == name:
                    return stereotype
        return None

    def get(self, name: str) -> StereotypeDef:
        """Like :meth:`find` but raises :class:`ProfileError` when missing."""
        stereotype = self.find(name)
        if stereotype is None:
            raise ProfileError(f"profile {self.name!r} defines no stereotype {name!r}")
        return stereotype

    def stereotype_names(self, package: str | None = None) -> list[str]:
        """All stereotype names, optionally limited to one profile package."""
        if package is not None:
            return [s.name for s in self.packages.get(package, [])]
        return [s.name for defs in self.packages.values() for s in defs]

    def check_application(self, element: Element, stereotype_name: str) -> list[str]:
        """Validate one stereotype application; returns problem strings.

        Checks that the stereotype exists, is not abstract, extends the
        element's metaclass, that every applied tag is defined and that
        every required tag is present.
        """
        problems: list[str] = []
        definition = self.find(stereotype_name)
        if definition is None:
            return [f"unknown stereotype <<{stereotype_name}>>"]
        if definition.abstract:
            problems.append(f"stereotype <<{stereotype_name}>> is abstract and cannot be applied directly")
        if not definition.extends(element):
            problems.append(
                f"stereotype <<{stereotype_name}>> extends {'/'.join(definition.metaclasses)}, "
                f"not {type(element).__name__}"
            )
        applied_tags = element.stereotype_applications.get(stereotype_name, {})
        for tag_name in applied_tags:
            if definition.tag(tag_name) is None:
                problems.append(f"<<{stereotype_name}>> defines no tagged value {tag_name!r}")
        for tag_def in definition.tags:
            if tag_def.required and tag_def.name not in applied_tags and tag_def.default is None:
                problems.append(
                    f"<<{stereotype_name}>> requires tagged value {tag_def.name!r} which is missing"
                )
        return problems

    def check_element(self, element: Element) -> list[str]:
        """Validate every stereotype application on ``element``."""
        problems: list[str] = []
        for stereotype_name in element.stereotypes:
            problems.extend(self.check_application(element, stereotype_name))
        return problems
