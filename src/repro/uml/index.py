"""A read-only index over a model snapshot.

``Model.associations_anywhere_from`` and ``Model.dependencies_of`` walk the
whole tree per query, which makes whole-model passes (generation,
validation) quadratic in model size.  :class:`ModelIndex` snapshots the
associations and dependencies once and answers the same queries in O(1).

The index is deliberately *not* self-invalidating: build it at the start of
a pass that does not mutate the model (the generator and the validation
engine qualify) and drop it afterwards.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ModelError
from repro.uml.association import Association
from repro.uml.classifier import Classifier
from repro.uml.dependency import Dependency
from repro.uml.elements import NamedElement

if TYPE_CHECKING:  # pragma: no cover
    from repro.uml.model import Model


class ModelIndex:
    """O(1) association / dependency lookups over a model snapshot."""

    def __init__(self, model: "Model") -> None:
        self.model = model
        self._associations_by_source: dict[int, list[Association]] = {}
        self._dependencies_by_client: dict[int, list[Dependency]] = {}
        for element in model.walk():
            if isinstance(element, Association):
                self._associations_by_source.setdefault(id(element.source.type), []).append(element)
            elif isinstance(element, Dependency):
                self._dependencies_by_client.setdefault(id(element.client), []).append(element)

    def associations_from(self, source: Classifier) -> list[Association]:
        """All associations whose whole end attaches to ``source``."""
        return list(self._associations_by_source.get(id(source), []))

    def dependencies_of(self, client: NamedElement, stereotype: str | None = None) -> list[Dependency]:
        """All dependencies whose client is ``client``, optionally filtered."""
        found = self._dependencies_by_client.get(id(client), [])
        if stereotype is None:
            return list(found)
        return [dependency for dependency in found if dependency.has_stereotype(stereotype)]

    def based_on_target(self, client: NamedElement) -> NamedElement | None:
        """The supplier of the client's single ``basedOn`` dependency."""
        deps = self.dependencies_of(client, "basedOn")
        if not deps:
            return None
        if len(deps) > 1:
            raise ModelError(f"{client.name!r} has {len(deps)} basedOn dependencies, expected one")
        return deps[0].supplier
