"""Binary associations with aggregation semantics.

The UPCC profile uses associations for ASCCs and ASBIEs: the *whole* end sits
on the source class (diamond side) and the *part* end carries the role name
and multiplicity.  Figure 6/7 of the paper make the aggregation kind
behaviourally relevant -- a **composition**-connected ASBIE is inlined in the
owner's complex type, while a **shared aggregation** produces a global element
plus a ``ref``.

Note on paper terminology: the paper's Figure 7 narrative labels the
global-element case "composition" in its caption while the body text says
"If an ASBIE is connected by a composition the ASBIE is first declared
globally and then referenced"; we follow the body text (composition ->
global + ref would contradict Figure 6, whose composite ASBIEs are typed
inline, so we adopt the consistent reading: shared aggregation -> global
element + ref, composition -> inline).  The generator exposes a switch so
both readings can be produced and benchmarked.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.uml.elements import NamedElement
from repro.uml.multiplicity import Multiplicity

if TYPE_CHECKING:  # pragma: no cover
    from repro.uml.classifier import Class


class AggregationKind(enum.Enum):
    """UML aggregation kinds for the whole-end of an association."""

    NONE = "none"
    SHARED = "shared"
    COMPOSITE = "composite"


class AssociationEnd(NamedElement):
    """One end of a binary association.

    ``name`` is the role name (may be empty on the whole end), ``type`` the
    class the end attaches to.
    """

    def __init__(
        self,
        type: "Class",
        name: str = "",
        multiplicity: Multiplicity | str = Multiplicity(1, 1),
        aggregation: AggregationKind = AggregationKind.NONE,
        navigable: bool = True,
    ) -> None:
        super().__init__(name)
        self.type = type
        if isinstance(multiplicity, str):
            multiplicity = Multiplicity.parse(multiplicity)
        self.multiplicity = multiplicity
        self.aggregation = aggregation
        self.navigable = navigable


class Association(NamedElement):
    """A binary association from a *source* (whole) to a *target* (part) end.

    ``source.aggregation`` distinguishes plain association, shared
    aggregation and composition.  The stereotype (ASCC / ASBIE) is applied to
    the association element itself, matching the profile.
    """

    def __init__(self, source: AssociationEnd, target: AssociationEnd, name: str = "") -> None:
        super().__init__(name)
        source.owner = self
        target.owner = self
        self.source = source
        self.target = target

    def owned_elements(self):
        """The two ends, in (source, target) order."""
        yield self.source
        yield self.target

    @property
    def aggregation(self) -> AggregationKind:
        """The aggregation kind at the whole (source) end."""
        return self.source.aggregation

    @property
    def is_composite(self) -> bool:
        """True for a composition (filled diamond)."""
        return self.source.aggregation is AggregationKind.COMPOSITE

    @property
    def is_shared(self) -> bool:
        """True for a shared aggregation (hollow diamond)."""
        return self.source.aggregation is AggregationKind.SHARED

    def __repr__(self) -> str:
        stereo = "".join(f"<<{name}>>" for name in self.stereotypes)
        return (
            f"<Association {stereo}{self.source.type.name} "
            f"-> +{self.target.name} {self.target.type.name} [{self.target.multiplicity}]>"
        )
