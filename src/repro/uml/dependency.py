"""Dependencies between named elements.

The profile's ``basedOn`` dependency (Figure 1 and 3) records derivation
relationships: ABIE -> ACC, ASBIE -> ASCC and QDT -> CDT.
"""

from __future__ import annotations

from repro.uml.elements import NamedElement


class Dependency(NamedElement):
    """A client-depends-on-supplier relationship."""

    def __init__(self, client: NamedElement, supplier: NamedElement, name: str = "") -> None:
        super().__init__(name)
        self.client = client
        self.supplier = supplier

    def __repr__(self) -> str:
        stereo = "".join(f"<<{name}>>" for name in self.stereotypes)
        return f"<Dependency {stereo}{self.client.name} --> {self.supplier.name}>"
