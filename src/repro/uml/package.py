"""Packages: the containers libraries are mapped onto.

All eight UPCC library stereotypes (CCLibrary, BIELibrary, DOCLibrary, ...)
apply to packages.  A package owns classifiers, associations, dependencies
and subpackages, and offers name-based lookup used everywhere above.
"""

from __future__ import annotations

from typing import Iterator, TypeVar

from repro.errors import ModelError
from repro.uml.association import AggregationKind, Association, AssociationEnd
from repro.uml.classifier import Class, Classifier, DataType, Enumeration, PrimitiveType
from repro.uml.dependency import Dependency
from repro.uml.elements import Element, NamedElement
from repro.uml.multiplicity import Multiplicity

ClassifierT = TypeVar("ClassifierT", bound=Classifier)


class Package(NamedElement):
    """A UML package owning classifiers, associations and subpackages."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self.packages: list[Package] = []
        self.classifiers: list[Classifier] = []
        self.associations: list[Association] = []
        self.dependencies: list[Dependency] = []

    # -- construction ----------------------------------------------------------

    def add_package(self, name: str, stereotype: str | None = None, **tags: str) -> "Package":
        """Create, own and return a subpackage, optionally stereotyped."""
        if any(existing.name == name for existing in self.packages):
            raise ModelError(f"duplicate subpackage {name!r} in package {self.name!r}")
        package = Package(name)
        package.owner = self
        if stereotype is not None:
            package.apply_stereotype(stereotype, **tags)
        self.packages.append(package)
        return package

    def _add_classifier(self, classifier: ClassifierT, stereotype: str | None, tags: dict[str, str]) -> ClassifierT:
        if any(existing.name == classifier.name for existing in self.classifiers):
            raise ModelError(
                f"duplicate classifier {classifier.name!r} in package {self.name!r}"
            )
        classifier.owner = self
        if stereotype is not None:
            classifier.apply_stereotype(stereotype, **tags)
        self.classifiers.append(classifier)
        return classifier

    def add_class(self, name: str, stereotype: str | None = None, **tags: str) -> Class:
        """Create, own and return a class."""
        return self._add_classifier(Class(name), stereotype, tags)

    def add_data_type(self, name: str, stereotype: str | None = None, **tags: str) -> DataType:
        """Create, own and return a data type."""
        return self._add_classifier(DataType(name), stereotype, tags)

    def add_primitive_type(self, name: str, stereotype: str | None = None, **tags: str) -> PrimitiveType:
        """Create, own and return a primitive type."""
        return self._add_classifier(PrimitiveType(name), stereotype, tags)

    def add_enumeration(self, name: str, stereotype: str | None = None, **tags: str) -> Enumeration:
        """Create, own and return an enumeration."""
        return self._add_classifier(Enumeration(name), stereotype, tags)

    def add_association(
        self,
        source: Class,
        target: Class,
        role: str,
        multiplicity: Multiplicity | str = Multiplicity(1, 1),
        aggregation: AggregationKind = AggregationKind.COMPOSITE,
        stereotype: str | None = None,
        **tags: str,
    ) -> Association:
        """Create, own and return a binary association.

        ``role`` names the target (part) end, as in ``+Included`` on the
        HoardingPermit -> Attachment ASBIE of Figure 4.
        """
        source_end = AssociationEnd(source, aggregation=aggregation, navigable=False)
        target_end = AssociationEnd(target, role, multiplicity)
        association = Association(source_end, target_end)
        association.owner = self
        if stereotype is not None:
            association.apply_stereotype(stereotype, **tags)
        self.associations.append(association)
        return association

    def add_dependency(
        self,
        client: NamedElement,
        supplier: NamedElement,
        stereotype: str | None = None,
        **tags: str,
    ) -> Dependency:
        """Create, own and return a dependency (e.g. ``basedOn``)."""
        dependency = Dependency(client, supplier)
        dependency.owner = self
        if stereotype is not None:
            dependency.apply_stereotype(stereotype, **tags)
        self.dependencies.append(dependency)
        return dependency

    # -- lookup ------------------------------------------------------------------

    def package(self, name: str) -> "Package":
        """The direct subpackage called ``name``."""
        for package in self.packages:
            if package.name == name:
                return package
        raise ModelError(f"package {self.name!r} has no subpackage {name!r}")

    def classifier(self, name: str) -> Classifier:
        """The directly owned classifier called ``name``."""
        for classifier in self.classifiers:
            if classifier.name == name:
                return classifier
        raise ModelError(f"package {self.name!r} has no classifier {name!r}")

    def find_classifier(self, name: str) -> Classifier | None:
        """Like :meth:`classifier` but returns None instead of raising."""
        for classifier in self.classifiers:
            if classifier.name == name:
                return classifier
        return None

    def classifiers_with_stereotype(self, stereotype: str) -> list[Classifier]:
        """Directly owned classifiers carrying the given stereotype."""
        return [c for c in self.classifiers if c.has_stereotype(stereotype)]

    def associations_from(self, source: Class) -> list[Association]:
        """Owned associations whose whole-end attaches to ``source``."""
        return [a for a in self.associations if a.source.type is source]

    def packages_with_stereotype(self, stereotype: str) -> "list[Package]":
        """All (recursively) contained packages carrying the stereotype."""
        found: list[Package] = []
        for element in self.walk():
            if isinstance(element, Package) and element.has_stereotype(stereotype):
                found.append(element)
        return found

    # -- traversal ---------------------------------------------------------------

    def owned_elements(self) -> Iterator[Element]:
        yield from self.classifiers
        yield from self.associations
        yield from self.dependencies
        yield from self.packages
