"""A from-scratch UML 2 kernel subset.

The paper models core components in Enterprise Architect; this package is the
substitute substrate: exactly the class-diagram subset the UPCC profile and
the XSD generator consume.

* structural elements: :class:`Package`, :class:`Class`, :class:`DataType`,
  :class:`Enumeration`, :class:`Property`, :class:`Association`,
  :class:`Dependency`,
* profile machinery: :class:`Profile`, :class:`StereotypeDef`,
  :class:`TagDef`, stereotype application with tagged values,
* a :class:`Model` root with registries and lookup helpers,
* :mod:`repro.uml.visitor` traversal utilities.

Everything is plain mutable Python objects; identity is object identity, and
XMI ids are allocated only at serialization time (see :mod:`repro.xmi`).
"""

from repro.uml.association import AggregationKind, Association, AssociationEnd
from repro.uml.classifier import (
    Class,
    Classifier,
    DataType,
    Enumeration,
    EnumerationLiteral,
    PrimitiveType,
)
from repro.uml.dependency import Dependency
from repro.uml.elements import Element, NamedElement
from repro.uml.model import Model
from repro.uml.multiplicity import Multiplicity
from repro.uml.package import Package
from repro.uml.property import Property
from repro.uml.stereotype import Profile, StereotypeDef, TagDef

__all__ = [
    "AggregationKind",
    "Association",
    "AssociationEnd",
    "Class",
    "Classifier",
    "DataType",
    "Dependency",
    "Element",
    "Enumeration",
    "EnumerationLiteral",
    "Model",
    "Multiplicity",
    "NamedElement",
    "Package",
    "PrimitiveType",
    "Profile",
    "Property",
    "StereotypeDef",
    "TagDef",
]
