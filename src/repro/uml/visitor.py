"""Traversal helpers: typed visits and a tree renderer.

The tree renderer reproduces the "tree view" on the left hand side of the
paper's Figure 4 -- packages, their stereotypes and their contents -- and is
what the Figure 4 benchmark prints.
"""

from __future__ import annotations

from typing import Callable, Iterator, TypeVar

from repro.uml.association import Association
from repro.uml.classifier import Classifier, Enumeration
from repro.uml.dependency import Dependency
from repro.uml.elements import Element
from repro.uml.package import Package

ElementT = TypeVar("ElementT", bound=Element)


def iter_elements(root: Element, element_type: type[ElementT]) -> Iterator[ElementT]:
    """Yield every element under ``root`` matching ``element_type``."""
    for element in root.walk():
        if isinstance(element, element_type):
            yield element


def visit(root: Element, callback: Callable[[Element], None]) -> None:
    """Apply ``callback`` to every element under ``root`` (depth first)."""
    for element in root.walk():
        callback(element)


def _stereo(element: Element) -> str:
    return "".join(f"«{name}» " for name in element.stereotypes)


def render_tree(package: Package, indent: str = "") -> str:
    """Render a package subtree as an indented text outline.

    Classifiers list their attributes; enumerations list their literals;
    associations render as ``source -> +role target [mult]`` lines.
    """
    lines = [f"{indent}{_stereo(package)}{package.name}"]
    child_indent = indent + "  "
    for classifier in package.classifiers:
        lines.append(f"{child_indent}{_stereo(classifier)}{classifier.name}")
        for prop in classifier.attributes:
            lines.append(
                f"{child_indent}  + {_stereo(prop)}{prop.name}: {prop.type_name} [{prop.multiplicity}]"
            )
        if isinstance(classifier, Enumeration):
            for literal in classifier.literals:
                lines.append(f"{child_indent}  * {literal.name} = {literal.value}")
    for association in package.associations:
        lines.append(
            f"{child_indent}{_stereo(association)}{association.source.type.name} "
            f"-> +{association.target.name} {association.target.type.name} "
            f"[{association.target.multiplicity}] ({association.aggregation.value})"
        )
    for dependency in package.dependencies:
        lines.append(
            f"{child_indent}{_stereo(dependency)}{dependency.client.name} "
            f"--> {dependency.supplier.name}"
        )
    for subpackage in package.packages:
        lines.append(render_tree(subpackage, child_indent))
    return "\n".join(lines)


def census(package: Package) -> dict[str, int]:
    """Count elements per applied stereotype under ``package``.

    Used by the Figure 4 benchmark to compare the model census against the
    element inventory visible in the paper's diagram.
    """
    counts: dict[str, int] = {}
    for element in package.walk():
        for stereotype in element.stereotypes:
            counts[stereotype] = counts.get(stereotype, 0) + 1
    return dict(sorted(counts.items()))


def summarize(package: Package) -> dict[str, int]:
    """Count elements per kernel metaclass under ``package``."""
    counts: dict[str, int] = {}
    for element in package.walk():
        name = type(element).__name__
        counts[name] = counts.get(name, 0) + 1
    return dict(sorted(counts.items()))


__all__ = [
    "census",
    "iter_elements",
    "render_tree",
    "summarize",
    "visit",
]
