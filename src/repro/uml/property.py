"""Properties: class attributes and (via association ends) navigable roles.

In the paper's profile BCCs, BBIEs, CONs and SUPs are all class attributes:
a name, a type (a classifier) and a multiplicity (Figure 4 shows e.g.
``CreatedDate: Date [0..1]``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.uml.elements import NamedElement
from repro.uml.multiplicity import Multiplicity

if TYPE_CHECKING:  # pragma: no cover
    from repro.uml.classifier import Classifier


class Property(NamedElement):
    """An attribute of a classifier.

    ``type`` may be None while a model is under construction, but the
    validation engine reports untyped attributes as errors before any
    generation is attempted.
    """

    def __init__(
        self,
        name: str,
        type: "Classifier | None" = None,
        multiplicity: Multiplicity | str = Multiplicity(1, 1),
        default: str | None = None,
    ) -> None:
        super().__init__(name)
        self.type = type
        if isinstance(multiplicity, str):
            multiplicity = Multiplicity.parse(multiplicity)
        self.multiplicity = multiplicity
        self.default = default

    @property
    def type_name(self) -> str:
        """The name of the type, or '' when untyped."""
        return self.type.name if self.type is not None else ""

    def __repr__(self) -> str:
        stereo = "".join(f"<<{name}>>" for name in self.stereotypes)
        return f"<Property {stereo}{self.name}: {self.type_name} [{self.multiplicity}]>"
