"""Typed wrappers for the core-component stereotypes: ACC, BCC, ASCC."""

from __future__ import annotations

from repro.ccts.base import ElementWrapper
from repro.ccts.data_types import CoreDataType
from repro.ccts.naming import ccts_den_for_acc, ccts_den_for_ascc, ccts_den_for_bcc, compact_component_set
from repro.errors import CctsError
from repro.profile import ACC, ASCC, BCC, CDT
from repro.uml.association import AggregationKind, Association
from repro.uml.classifier import Class
from repro.uml.multiplicity import Multiplicity
from repro.uml.package import Package
from repro.uml.property import Property


class Bcc(ElementWrapper):
    """A basic core component: an atomic field of an ACC, typed by a CDT."""

    stereotype = BCC

    element: Property

    @property
    def cdt(self) -> CoreDataType | None:
        """The core data type of this BCC (None when the type is not a CDT)."""
        if self.element.type is not None and self.element.type.has_stereotype(CDT):
            return CoreDataType(self.element.type, self.model)
        return None

    @property
    def multiplicity(self) -> Multiplicity:
        """The field multiplicity."""
        return self.element.multiplicity

    @property
    def acc(self) -> "Acc":
        """The owning aggregate core component."""
        owner = self.element.owner
        if not isinstance(owner, Class) or not owner.has_stereotype(ACC):
            raise CctsError(f"BCC {self.name!r} is not owned by an ACC")
        return Acc(owner, self.model)

    def den(self) -> str:
        """The full CCTS dictionary entry name of this BCC."""
        representation = self.element.type_name or "Text"
        return ccts_den_for_bcc(self.acc.name, self.name, representation)


class Ascc(ElementWrapper):
    """An association core component: a complex-typed field between ACCs."""

    stereotype = ASCC

    element: Association

    @property
    def role(self) -> str:
        """The role name at the target end (``Private``, ``Work``, ...)."""
        return self.element.target.name

    @property
    def source(self) -> "Acc":
        """The whole-end ACC."""
        return Acc(self.element.source.type, self.model)

    @property
    def target(self) -> "Acc":
        """The part-end ACC."""
        return Acc(self.element.target.type, self.model)

    @property
    def multiplicity(self) -> Multiplicity:
        """The multiplicity at the part end."""
        return self.element.target.multiplicity

    @property
    def aggregation(self) -> AggregationKind:
        """Composition vs shared aggregation at the whole end."""
        return self.element.aggregation

    # ElementWrapper.name would return the (empty) association name; expose
    # the role name instead, which is what call sites mean by "name".
    @property
    def name(self) -> str:  # type: ignore[override]
        return self.role

    def den(self) -> str:
        """The full CCTS dictionary entry name of this ASCC."""
        return ccts_den_for_ascc(self.source.name, self.role, self.target.name)


class Acc(ElementWrapper):
    """An aggregate core component: a class of related business information."""

    stereotype = ACC

    element: Class

    # -- construction ----------------------------------------------------------

    def add_bcc(
        self,
        name: str,
        cdt: CoreDataType,
        multiplicity: Multiplicity | str = "1",
        **tags: str,
    ) -> Bcc:
        """Add a basic core component typed by ``cdt``."""
        prop = self.element.add_attribute(name, cdt.element, multiplicity, stereotype=BCC, **tags)
        return Bcc(prop, self.model)

    def add_ascc(
        self,
        role: str,
        target: "Acc",
        multiplicity: Multiplicity | str = "1",
        aggregation: AggregationKind = AggregationKind.COMPOSITE,
        **tags: str,
    ) -> Ascc:
        """Add an association core component to ``target`` under ``role``.

        The association element is owned by the package owning this ACC, as
        a modeling tool would do when the connector is drawn in the ACC's
        library diagram.
        """
        owner = self.element.owner
        if not isinstance(owner, Package):
            raise CctsError(f"ACC {self.name!r} has no owning package to hold the ASCC")
        association = owner.add_association(
            self.element, target.element, role, multiplicity, aggregation, stereotype=ASCC, **tags
        )
        return Ascc(association, self.model)

    # -- queries -----------------------------------------------------------------

    @property
    def bccs(self) -> list[Bcc]:
        """All basic core components in declaration order."""
        return [Bcc(prop, self.model) for prop in self.element.attributes_with_stereotype(BCC)]

    def bcc(self, name: str) -> Bcc:
        """The BCC called ``name`` (raises :class:`CctsError` when absent)."""
        for bcc in self.bccs:
            if bcc.name == name:
                return bcc
        raise CctsError(f"ACC {self.name!r} has no BCC {name!r}")

    @property
    def asccs(self) -> list[Ascc]:
        """All outgoing association core components, model wide."""
        return [
            Ascc(association, self.model)
            for association in self.model.associations_anywhere_from(self.element)
            if association.has_stereotype(ASCC)
        ]

    def ascc(self, role: str) -> Ascc:
        """The outgoing ASCC with role ``role``."""
        for ascc in self.asccs:
            if ascc.role == role:
                return ascc
        raise CctsError(f"ACC {self.name!r} has no ASCC with role {role!r}")

    def den(self) -> str:
        """The full CCTS dictionary entry name: ``Person. Details``."""
        return ccts_den_for_acc(self.name)

    def component_set(self) -> list[str]:
        """The paper's compact element-set listing (section 2.1 / Figure 1)."""
        return compact_component_set(
            self.name,
            [bcc.name for bcc in self.bccs],
            [(ascc.role, ascc.target.name) for ascc in self.asccs],
            kind_labels=("ACC", "BCC", "ASCC"),
        )
