"""Typed wrappers for the business-information-entity stereotypes.

ABIE / BBIE / ASBIE mirror ACC / BCC / ASCC in structure; the extra
behaviour is the ``basedOn`` linkage to the core side and the context
qualifier handling (``US_Person`` -> qualifier ``US``, core name
``Person``).
"""

from __future__ import annotations

from repro.ccts.base import ElementWrapper
from repro.ccts.core_components import Acc, Ascc, Bcc
from repro.ccts.data_types import CoreDataType, QualifiedDataType
from repro.ccts.naming import (
    ccts_den_for_acc,
    ccts_den_for_ascc,
    ccts_den_for_bcc,
    compact_component_set,
    strip_qualifier,
)
from repro.errors import CctsError
from repro.profile import ABIE, ACC, ASBIE, ASCC, BBIE, CDT, QDT, TAG_BUSINESS_CONTEXT
from repro.uml.association import AggregationKind, Association
from repro.uml.classifier import Class, Classifier
from repro.uml.multiplicity import Multiplicity
from repro.uml.package import Package
from repro.uml.property import Property


class Bbie(ElementWrapper):
    """A basic business information entity: an atomic field of an ABIE."""

    stereotype = BBIE

    element: Property

    @property
    def data_type(self) -> CoreDataType | QualifiedDataType | None:
        """The CDT or QDT typing this BBIE (paper section 2.2)."""
        type_ = self.element.type
        if type_ is None:
            return None
        if type_.has_stereotype(QDT):
            return QualifiedDataType(type_, self.model)
        if type_.has_stereotype(CDT):
            return CoreDataType(type_, self.model)
        return None

    @property
    def multiplicity(self) -> Multiplicity:
        """The field multiplicity."""
        return self.element.multiplicity

    @property
    def abie(self) -> "Abie":
        """The owning aggregate business information entity."""
        owner = self.element.owner
        if not isinstance(owner, Class) or not owner.has_stereotype(ABIE):
            raise CctsError(f"BBIE {self.name!r} is not owned by an ABIE")
        return Abie(owner, self.model)

    @property
    def based_on(self) -> Bcc | None:
        """The BCC this BBIE restricts: the same-named attribute of the base ACC."""
        acc = self.abie.based_on
        if acc is None:
            return None
        for bcc in acc.bccs:
            if bcc.name == self.name:
                return bcc
        return None

    def den(self) -> str:
        """The full CCTS dictionary entry name of this BBIE."""
        abie = self.abie
        qualifier, core_name = strip_qualifier(abie.name)
        representation = self.element.type_name or "Text"
        return ccts_den_for_bcc(core_name, self.name, representation, qualifier)


class Asbie(ElementWrapper):
    """An association business information entity between ABIEs."""

    stereotype = ASBIE

    element: Association

    @property
    def role(self) -> str:
        """The role name at the target end (``Included``, ``Billing``, ...)."""
        return self.element.target.name

    @property
    def source(self) -> "Abie":
        """The whole-end ABIE."""
        return Abie(self.element.source.type, self.model)

    @property
    def target(self) -> "Abie":
        """The part-end ABIE."""
        return Abie(self.element.target.type, self.model)

    @property
    def multiplicity(self) -> Multiplicity:
        """The multiplicity at the part end."""
        return self.element.target.multiplicity

    @property
    def aggregation(self) -> AggregationKind:
        """Composition vs shared aggregation (drives Figure-7 global/ref)."""
        return self.element.aggregation

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.role

    @property
    def based_on(self) -> Ascc | None:
        """The ASCC this ASBIE restricts (None when missing or mismatched)."""
        target = self.model.based_on_target(self.element)
        if target is None or not isinstance(target, Association) or not target.has_stereotype(ASCC):
            return None
        return Ascc(target, self.model)

    def compound_name(self) -> str:
        """The NDR element name: role name + target ABIE name (paper section 4.1).

        ``Included`` + ``Attachment`` -> ``IncludedAttachment``;
        ``Billing`` + ``Person_Identification`` ->
        ``BillingPerson_Identification`` (underscores survive, per Figure 6).
        """
        return f"{self.role}{self.target.name}"

    def den(self) -> str:
        """The full CCTS dictionary entry name of this ASBIE."""
        source_qualifier, source_core = strip_qualifier(self.source.name)
        target_qualifier, target_core = strip_qualifier(self.target.name)
        return ccts_den_for_ascc(source_core, self.role, target_core, source_qualifier, target_qualifier)


class Abie(ElementWrapper):
    """An aggregate business information entity: a context-qualified ACC."""

    stereotype = ABIE

    element: Class

    # -- construction -------------------------------------------------------------

    def add_bbie(
        self,
        name: str,
        data_type: CoreDataType | QualifiedDataType,
        multiplicity: Multiplicity | str = "1",
        **tags: str,
    ) -> Bbie:
        """Add a basic business information entity typed by a CDT or QDT."""
        prop = self.element.add_attribute(name, data_type.element, multiplicity, stereotype=BBIE, **tags)
        return Bbie(prop, self.model)

    def add_asbie(
        self,
        role: str,
        target: "Abie",
        multiplicity: Multiplicity | str = "1",
        aggregation: AggregationKind = AggregationKind.COMPOSITE,
        based_on: Ascc | None = None,
        **tags: str,
    ) -> Asbie:
        """Add an association business information entity to ``target``.

        When ``based_on`` is given, a ``basedOn`` dependency to the ASCC is
        recorded alongside, as Figure 1 draws it.
        """
        owner = self.element.owner
        if not isinstance(owner, Package):
            raise CctsError(f"ABIE {self.name!r} has no owning package to hold the ASBIE")
        association = owner.add_association(
            self.element, target.element, role, multiplicity, aggregation, stereotype=ASBIE, **tags
        )
        if based_on is not None:
            owner.add_dependency(association, based_on.element, stereotype="basedOn")
        return Asbie(association, self.model)

    # -- queries ----------------------------------------------------------------------

    @property
    def bbies(self) -> list[Bbie]:
        """All basic business information entities in declaration order."""
        return [Bbie(prop, self.model) for prop in self.element.attributes_with_stereotype(BBIE)]

    def bbie(self, name: str) -> Bbie:
        """The BBIE called ``name``."""
        for bbie in self.bbies:
            if bbie.name == name:
                return bbie
        raise CctsError(f"ABIE {self.name!r} has no BBIE {name!r}")

    @property
    def asbies(self) -> list[Asbie]:
        """All outgoing association business information entities, model wide."""
        return [
            Asbie(association, self.model)
            for association in self.model.associations_anywhere_from(self.element)
            if association.has_stereotype(ASBIE)
        ]

    def asbie(self, role: str) -> Asbie:
        """The outgoing ASBIE with role ``role``."""
        for asbie in self.asbies:
            if asbie.role == role:
                return asbie
        raise CctsError(f"ABIE {self.name!r} has no ASBIE with role {role!r}")

    @property
    def based_on(self) -> Acc | None:
        """The ACC this ABIE restricts, via its ``basedOn`` dependency.

        None when the dependency is missing *or* points at a non-ACC (rule
        UPCC-P07 reports the latter; queries stay usable on broken models).
        """
        target = self.model.based_on_target(self.element)
        if target is None or not target.has_stereotype(ACC):
            return None
        return Acc(target, self.model)

    @property
    def qualifier(self) -> str | None:
        """The context prefix of the name (``US`` for ``US_Person``)."""
        return strip_qualifier(self.name)[0]

    @property
    def business_context(self) -> str | None:
        """The declared business-context tag, when present."""
        return self._tag(TAG_BUSINESS_CONTEXT)

    def den(self) -> str:
        """The full CCTS dictionary entry name: ``US_ Person. Details``."""
        qualifier, core_name = strip_qualifier(self.name)
        return ccts_den_for_acc(core_name, qualifier)

    def component_set(self) -> list[str]:
        """The paper's compact element-set listing for the business side."""
        return compact_component_set(
            self.name,
            [bbie.name for bbie in self.bbies],
            [(asbie.role, asbie.target.name) for asbie in self.asbies],
            kind_labels=("ABIE", "BBIE", "ASBIE"),
        )

    # Guard against accidental non-CCTS attribute types slipping in.
    def untyped_or_foreign_bbies(self) -> list[str]:
        """Names of BBIEs whose type is neither a CDT nor a QDT (for validation)."""
        problems = []
        for bbie in self.bbies:
            type_: Classifier | None = bbie.element.type
            if type_ is None or not (type_.has_stereotype(CDT) or type_.has_stereotype(QDT)):
                problems.append(bbie.name)
        return problems
