"""Dictionary entry names (DEN) per CCTS 2.01 / ISO 11179 naming rules.

Two styles are produced:

* the **compact dotted style** the paper uses in section 2.1 when it lists
  derived element sets, e.g. ``Person.Private.Address (ASCC)``,
* the **full CCTS style** used in the standard's dictionaries, built from
  object class term, property term and representation term with ``". "``
  separators, e.g. ``Person. Date of Birth. Date`` and
  ``Person. Details`` for the ACC itself.

The word-splitting rules turn model CamelCase names into the space-separated
terms of the CCTS dictionary (``DateofBirth`` -> ``Dateof Birth`` is what a
strict camel split yields; CCTS models normally write ``DateOfBirth``, and
both are accepted).
"""

from __future__ import annotations

import re

from repro.errors import NamingError

_CAMEL_BOUNDARY = re.compile(
    r"""
    (?<=[a-z0-9])(?=[A-Z])        # aB -> a B
    | (?<=[A-Z])(?=[A-Z][a-z])    # ABc -> A Bc  (acronym end)
    """,
    re.VERBOSE,
)

#: Separator between DEN components, per CCTS ("Object Class. Property. Rep").
DEN_SEPARATOR = ". "

#: The representation term suffix for aggregate entries.
DETAILS_TERM = "Details"


def split_words(name: str) -> list[str]:
    """Split a CamelCase / snake_case / dotted model name into words.

    >>> split_words("DateOfBirth")
    ['Date', 'Of', 'Birth']
    >>> split_words("US_Address")
    ['US', 'Address']
    """
    if not name:
        raise NamingError("cannot split an empty name into words")
    chunks = re.split(r"[\s_.\-]+", name)
    words: list[str] = []
    for chunk in chunks:
        if not chunk:
            continue
        words.extend(part for part in _CAMEL_BOUNDARY.split(chunk) if part)
    if not words:
        raise NamingError(f"name {name!r} contains no words")
    return words


def words_to_term(name: str) -> str:
    """Render a model name as a space-separated CCTS dictionary term."""
    return " ".join(split_words(name))


def join_den(*parts: str) -> str:
    """Join DEN components with the CCTS separator, skipping empties."""
    cleaned = [part for part in parts if part]
    if not cleaned:
        raise NamingError("a dictionary entry name needs at least one component")
    return DEN_SEPARATOR.join(cleaned)


def qualified_term(term: str, qualifier: str | None) -> str:
    """Prefix a term with a context qualifier (CCTS writes ``US_ Person``)."""
    if qualifier:
        return f"{qualifier}_ {term}"
    return term


def ccts_den_for_acc(acc_name: str, qualifier: str | None = None) -> str:
    """Full DEN of an ACC/ABIE: ``Person. Details`` / ``US_ Person. Details``."""
    return join_den(qualified_term(words_to_term(acc_name), qualifier), DETAILS_TERM)


def ccts_den_for_bcc(
    acc_name: str,
    property_name: str,
    representation_term: str,
    qualifier: str | None = None,
) -> str:
    """Full DEN of a BCC/BBIE: ``Person. Date Of Birth. Date``.

    When the property term already ends in the representation term, CCTS
    truncation rules drop the duplication in the XML name but keep it in the
    DEN, so no truncation happens here.
    """
    return join_den(
        qualified_term(words_to_term(acc_name), qualifier),
        words_to_term(property_name),
        words_to_term(representation_term),
    )


def ccts_den_for_ascc(
    source_name: str,
    role_name: str,
    target_name: str,
    qualifier: str | None = None,
    target_qualifier: str | None = None,
) -> str:
    """Full DEN of an ASCC/ASBIE: ``Person. Private. Address``."""
    return join_den(
        qualified_term(words_to_term(source_name), qualifier),
        words_to_term(role_name),
        qualified_term(words_to_term(target_name), target_qualifier),
    )


def compact_den(*parts: str) -> str:
    """The paper's compact dotted DEN: ``Person.Private.Address``."""
    cleaned = [part for part in parts if part]
    if not cleaned:
        raise NamingError("a compact dictionary entry name needs at least one component")
    return ".".join(cleaned)


def compact_component_set(
    aggregate_name: str,
    basic_names: list[str],
    associations: list[tuple[str, str]],
    kind_labels: tuple[str, str, str] = ("ACC", "BCC", "ASCC"),
) -> list[str]:
    """Reproduce the paper's element-set listing for an aggregate.

    For ``Person`` with BCCs ``DateofBirth``/``FirstName`` and ASCCs
    ``(Private, Address)``/``(Work, Address)`` this returns exactly the list
    printed in section 2.1::

        ['Person (ACC)', 'Person.DateofBirth (BCC)', 'Person.FirstName (BCC)',
         'Person.Private.Address (ASCC)', 'Person.Work.Address (ASCC)']

    ``kind_labels`` switches the labels to ``("ABIE", "BBIE", "ASBIE")`` for
    the business side of Figure 1.
    """
    aggregate_label, basic_label, association_label = kind_labels
    entries = [f"{aggregate_name} ({aggregate_label})"]
    entries.extend(
        f"{compact_den(aggregate_name, basic)} ({basic_label})" for basic in basic_names
    )
    entries.extend(
        f"{compact_den(aggregate_name, role, target)} ({association_label})"
        for role, target in associations
    )
    return entries


def strip_qualifier(name: str) -> tuple[str | None, str]:
    """Split a qualified model name into ``(qualifier, core name)``.

    The paper marks business context "by adding an optional prefix to the
    name of the underlying core component", separated with an underscore
    (``US_Person``).  Names without an underscore have no qualifier.
    """
    if "_" in name:
        qualifier, _, rest = name.partition("_")
        if qualifier and rest:
            return qualifier, rest
    return None, name


def apply_qualifier(qualifier: str | None, name: str) -> str:
    """Build a qualified model name (``US`` + ``Person`` -> ``US_Person``)."""
    if qualifier:
        return f"{qualifier}_{name}"
    return name
