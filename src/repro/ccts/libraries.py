"""Typed wrappers for the eight UPCC library stereotypes.

A library is a stereotyped package that groups one element kind (paper
section 3: "Each library contains a specific data type as described in the
DataType package") and carries the generation-steering tagged values
(``baseURN``, ``namespacePrefix``, ``version``, ``status``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, TypeVar

from repro.ccts.base import ElementWrapper
from repro.ccts.bie import Abie
from repro.ccts.core_components import Acc
from repro.ccts.data_types import CoreDataType, EnumerationType, Primitive, QualifiedDataType
from repro.errors import CctsError
from repro.profile import (
    ABIE,
    ACC,
    BIE_LIBRARY,
    BUSINESS_LIBRARY,
    CC_LIBRARY,
    CDT,
    CDT_LIBRARY,
    DOC_LIBRARY,
    ENUM,
    ENUM_LIBRARY,
    PRIM,
    PRIM_LIBRARY,
    QDT,
    QDT_LIBRARY,
    TAG_BASE_URN,
    TAG_NAMESPACE_PREFIX,
    TAG_STATUS,
    TAG_VERSION,
)
from repro.uml.package import Package

if TYPE_CHECKING:  # pragma: no cover
    from repro.uml.model import Model

WrapperT = TypeVar("WrapperT", bound=ElementWrapper)


class Library(ElementWrapper):
    """Base wrapper for stereotyped library packages."""

    element: Package

    @property
    def package(self) -> Package:
        """The wrapped package."""
        return self.element

    @property
    def base_urn(self) -> str:
        """The ``baseURN`` tag the target namespace is built from."""
        return self._tag(TAG_BASE_URN, "") or ""

    @base_urn.setter
    def base_urn(self, value: str) -> None:
        self._set_tag(TAG_BASE_URN, value)

    @property
    def namespace_prefix(self) -> str | None:
        """The user-chosen namespace prefix, when one is set."""
        return self._tag(TAG_NAMESPACE_PREFIX)

    @namespace_prefix.setter
    def namespace_prefix(self, value: str) -> None:
        self._set_tag(TAG_NAMESPACE_PREFIX, value)

    @property
    def status(self) -> str:
        """The lifecycle status (``draft`` / ``standard`` ...), URN component."""
        return self._tag(TAG_STATUS, "draft") or "draft"

    @property
    def library_version(self) -> str:
        """The library version, URN component (distinct from CCTS element version)."""
        return self._tag(TAG_VERSION, "1.0") or "1.0"

    def _wrap_classifiers(self, stereotype: str, wrapper: type[WrapperT]) -> list[WrapperT]:
        return [
            wrapper(classifier, self.model)
            for classifier in self.element.classifiers_with_stereotype(stereotype)
        ]


class PrimLibrary(Library):
    """A ``PRIMLibrary``: container for primitive types."""

    stereotype = PRIM_LIBRARY

    def add_primitive(self, name: str, **tags: str) -> Primitive:
        """Define a primitive type (String, Integer, Boolean, ...)."""
        element = self.element.add_primitive_type(name, stereotype=PRIM, **tags)
        return Primitive(element, self.model)

    @property
    def primitives(self) -> list[Primitive]:
        """All primitives in declaration order."""
        return self._wrap_classifiers(PRIM, Primitive)

    def primitive(self, name: str) -> Primitive:
        """The primitive called ``name``."""
        for primitive in self.primitives:
            if primitive.name == name:
                return primitive
        raise CctsError(f"PRIMLibrary {self.name!r} has no primitive {name!r}")


class EnumLibrary(Library):
    """An ``ENUMLibrary``: container for enumeration types."""

    stereotype = ENUM_LIBRARY

    def add_enumeration(self, name: str, literals: dict[str, str] | None = None, **tags: str) -> EnumerationType:
        """Define an enumeration, optionally pre-populated from a dict."""
        element = self.element.add_enumeration(name, stereotype=ENUM, **tags)
        wrapper = EnumerationType(element, self.model)
        for literal_name, value in (literals or {}).items():
            wrapper.add_literal(literal_name, value)
        return wrapper

    @property
    def enumerations(self) -> list[EnumerationType]:
        """All enumerations in declaration order."""
        return self._wrap_classifiers(ENUM, EnumerationType)

    def enumeration(self, name: str) -> EnumerationType:
        """The enumeration called ``name``."""
        for enumeration in self.enumerations:
            if enumeration.name == name:
                return enumeration
        raise CctsError(f"ENUMLibrary {self.name!r} has no enumeration {name!r}")


class CdtLibrary(Library):
    """A ``CDTLibrary``: container for core data types."""

    stereotype = CDT_LIBRARY

    def add_cdt(self, name: str, **tags: str) -> CoreDataType:
        """Define an (initially empty) core data type."""
        element = self.element.add_data_type(name, stereotype=CDT, **tags)
        return CoreDataType(element, self.model)

    @property
    def cdts(self) -> list[CoreDataType]:
        """All core data types in declaration order."""
        return self._wrap_classifiers(CDT, CoreDataType)

    def cdt(self, name: str) -> CoreDataType:
        """The CDT called ``name``."""
        for cdt in self.cdts:
            if cdt.name == name:
                return cdt
        raise CctsError(f"CDTLibrary {self.name!r} has no CDT {name!r}")


class QdtLibrary(Library):
    """A ``QDTLibrary``: container for qualified data types."""

    stereotype = QDT_LIBRARY

    def add_qdt(self, name: str, **tags: str) -> QualifiedDataType:
        """Define an (initially empty) qualified data type.

        Use :meth:`repro.ccts.derivation.derive_qdt` to create one properly
        from a CDT with the restriction rules enforced.
        """
        element = self.element.add_data_type(name, stereotype=QDT, **tags)
        return QualifiedDataType(element, self.model)

    @property
    def qdts(self) -> list[QualifiedDataType]:
        """All qualified data types in declaration order."""
        return self._wrap_classifiers(QDT, QualifiedDataType)

    def qdt(self, name: str) -> QualifiedDataType:
        """The QDT called ``name``."""
        for qdt in self.qdts:
            if qdt.name == name:
                return qdt
        raise CctsError(f"QDTLibrary {self.name!r} has no QDT {name!r}")


class CcLibrary(Library):
    """A ``CCLibrary``: container for aggregate core components."""

    stereotype = CC_LIBRARY

    def add_acc(self, name: str, **tags: str) -> Acc:
        """Define an (initially empty) aggregate core component."""
        element = self.element.add_class(name, stereotype=ACC, **tags)
        return Acc(element, self.model)

    @property
    def accs(self) -> list[Acc]:
        """All ACCs in declaration order."""
        return self._wrap_classifiers(ACC, Acc)

    def acc(self, name: str) -> Acc:
        """The ACC called ``name``."""
        for acc in self.accs:
            if acc.name == name:
                return acc
        raise CctsError(f"CCLibrary {self.name!r} has no ACC {name!r}")


class BieLibrary(Library):
    """A ``BIELibrary``: ABIEs and their interdependencies, offered for reuse."""

    stereotype = BIE_LIBRARY

    def add_abie(self, name: str, **tags: str) -> Abie:
        """Define an (initially empty) ABIE.

        Use :meth:`repro.ccts.derivation.derive_abie` to create one properly
        from an ACC with the restriction rules enforced.
        """
        element = self.element.add_class(name, stereotype=ABIE, **tags)
        return Abie(element, self.model)

    @property
    def abies(self) -> list[Abie]:
        """All ABIEs in declaration order."""
        return self._wrap_classifiers(ABIE, Abie)

    def abie(self, name: str) -> Abie:
        """The ABIE called ``name``."""
        for abie in self.abies:
            if abie.name == name:
                return abie
        raise CctsError(f"BIELibrary {self.name!r} has no ABIE {name!r}")


class DocLibrary(BieLibrary):
    """A ``DOCLibrary``: assembles imported ABIEs into a business document.

    Structurally identical to a BIELibrary -- it owns ABIEs and draws ASBIEs
    to ABIEs of other libraries -- but it "represents a final business
    document" (paper section 3) and is the usual schema-generation root.
    """

    stereotype = DOC_LIBRARY

    def root_candidates(self) -> list[Abie]:
        """The ABIEs a user may pick as schema root (the Figure-5 dropdown)."""
        return self.abies


class BusinessLibrary(Library):
    """A ``BusinessLibrary``: aggregates the per-kind libraries."""

    stereotype = BUSINESS_LIBRARY

    def _add_library(self, name: str, wrapper: type[WrapperT], **tags: str) -> WrapperT:
        # Nested libraries inherit the business library's baseURN; the
        # namespace policy appends kind/status/name itself.
        tags.setdefault(TAG_BASE_URN, self.base_urn or f"urn:{name.lower()}")
        package = self.element.add_package(name, stereotype=wrapper.stereotype, **tags)
        return wrapper(package, self.model)

    def add_prim_library(self, name: str, **tags: str) -> PrimLibrary:
        """Create a nested PRIMLibrary."""
        return self._add_library(name, PrimLibrary, **tags)

    def add_enum_library(self, name: str, **tags: str) -> EnumLibrary:
        """Create a nested ENUMLibrary."""
        return self._add_library(name, EnumLibrary, **tags)

    def add_cdt_library(self, name: str, **tags: str) -> CdtLibrary:
        """Create a nested CDTLibrary."""
        return self._add_library(name, CdtLibrary, **tags)

    def add_qdt_library(self, name: str, **tags: str) -> QdtLibrary:
        """Create a nested QDTLibrary."""
        return self._add_library(name, QdtLibrary, **tags)

    def add_cc_library(self, name: str, **tags: str) -> CcLibrary:
        """Create a nested CCLibrary."""
        return self._add_library(name, CcLibrary, **tags)

    def add_bie_library(self, name: str, **tags: str) -> BieLibrary:
        """Create a nested BIELibrary."""
        return self._add_library(name, BieLibrary, **tags)

    def add_doc_library(self, name: str, **tags: str) -> DocLibrary:
        """Create a nested DOCLibrary."""
        return self._add_library(name, DocLibrary, **tags)

    def libraries(self) -> list[Library]:
        """All nested libraries, wrapped by their concrete kind."""
        found: list[Library] = []
        for package in self.element.packages:
            wrapper = library_wrapper_for(package, self.model)
            if wrapper is not None:
                found.append(wrapper)
        return found


#: Concrete wrapper per library stereotype, in Figure-3 order.
LIBRARY_WRAPPERS: dict[str, type[Library]] = {
    BIE_LIBRARY: BieLibrary,
    BUSINESS_LIBRARY: BusinessLibrary,
    CC_LIBRARY: CcLibrary,
    CDT_LIBRARY: CdtLibrary,
    DOC_LIBRARY: DocLibrary,
    ENUM_LIBRARY: EnumLibrary,
    PRIM_LIBRARY: PrimLibrary,
    QDT_LIBRARY: QdtLibrary,
}


def library_wrapper_for(package: Package, model: "Model") -> Library | None:
    """Wrap ``package`` with the wrapper matching its library stereotype."""
    for stereotype, wrapper in LIBRARY_WRAPPERS.items():
        if package.has_stereotype(stereotype):
            return wrapper(package, model)
    return None
