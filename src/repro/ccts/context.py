"""Business context per CCTS 2.01.

A business information entity is a core component *qualified for a business
context* (paper section 2.2).  CCTS defines eight context categories; a
:class:`BusinessContext` assigns a value (or values) to some of them, e.g.
``geopolitical=["US"]`` for the Figure-1 example.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ContextCategory(enum.Enum):
    """The eight CCTS 2.01 context categories."""

    BUSINESS_PROCESS = "BusinessProcess"
    PRODUCT_CLASSIFICATION = "ProductClassification"
    INDUSTRY_CLASSIFICATION = "IndustryClassification"
    GEOPOLITICAL = "Geopolitical"
    OFFICIAL_CONSTRAINTS = "OfficialConstraints"
    BUSINESS_PROCESS_ROLE = "BusinessProcessRole"
    SUPPORTING_ROLE = "SupportingRole"
    SYSTEM_CAPABILITIES = "SystemCapabilities"


@dataclass(frozen=True)
class BusinessContext:
    """An assignment of values to context categories.

    ``values`` maps each used category to a tuple of tokens.  An empty
    context means "all contexts" -- the context of core components
    themselves.
    """

    name: str = ""
    values: tuple[tuple[ContextCategory, tuple[str, ...]], ...] = field(default_factory=tuple)

    @classmethod
    def build(cls, name: str = "", **categories: list[str] | str) -> "BusinessContext":
        """Convenience constructor using category names as keyword args.

        >>> ctx = BusinessContext.build("US retail", geopolitical="US",
        ...                             industry_classification=["Retail"])
        >>> ctx.value_of(ContextCategory.GEOPOLITICAL)
        ('US',)
        """
        pairs: list[tuple[ContextCategory, tuple[str, ...]]] = []
        for key, value in sorted(categories.items()):
            category = ContextCategory[key.upper()]
            tokens = (value,) if isinstance(value, str) else tuple(value)
            pairs.append((category, tokens))
        return cls(name, tuple(pairs))

    def value_of(self, category: ContextCategory) -> tuple[str, ...]:
        """The tokens assigned to ``category`` (empty tuple = unconstrained)."""
        for assigned, tokens in self.values:
            if assigned is category:
                return tokens
        return ()

    @property
    def is_unconstrained(self) -> bool:
        """True for the empty ("all contexts") context of core components."""
        return not self.values

    def is_subcontext_of(self, other: "BusinessContext") -> bool:
        """True when this context is at least as specific as ``other``.

        A category unconstrained in ``other`` accepts anything; a category
        constrained in ``other`` must be constrained here to a subset.
        """
        for category, other_tokens in other.values:
            mine = self.value_of(category)
            if not mine or not set(mine) <= set(other_tokens):
                return False
        return True

    def describe(self) -> str:
        """A compact human-readable rendering used in diagnostics."""
        if self.is_unconstrained:
            return "(all contexts)"
        parts = [
            f"{category.value}={'|'.join(tokens)}" for category, tokens in self.values
        ]
        return ", ".join(parts)

    def __str__(self) -> str:
        return self.name or self.describe()
