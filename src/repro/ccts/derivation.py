"""The derivation-by-restriction engine.

CCTS creates the business layer exclusively by restricting the core layer
(paper section 2.3.1): "ABIEs are exclusively derived from ACCs by
restriction" and QDTs from CDTs likewise.  This module performs those
derivations while *enforcing* restriction:

* every BBIE corresponds to a BCC of the base ACC (no additions),
* a BBIE multiplicity must be a sub-range of its BCC's,
* a BBIE may narrow its type from the BCC's CDT to a QDT based on that CDT,
* every QDT SUP corresponds to a SUP of the base CDT, multiplicities may
  only tighten, and the content component may gain an ENUM restriction,
* every derivation records a ``basedOn`` dependency (Figure 1).

Violations raise :class:`repro.errors.DerivationError`.
"""

from __future__ import annotations

from repro.ccts.bie import Abie, Bbie
from repro.ccts.core_components import Acc, Ascc
from repro.ccts.data_types import CoreDataType, EnumerationType, QualifiedDataType
from repro.ccts.libraries import BieLibrary, QdtLibrary
from repro.ccts.naming import apply_qualifier
from repro.errors import DerivationError
from repro.profile import BASED_ON, BBIE, CDT, CON, QDT, SUP
from repro.uml.association import AggregationKind
from repro.uml.classifier import Enumeration
from repro.uml.multiplicity import Multiplicity


def _as_multiplicity(value: Multiplicity | str | None, default: Multiplicity) -> Multiplicity:
    if value is None:
        return default
    if isinstance(value, str):
        return Multiplicity.parse(value)
    return value


def derive_qdt(
    library: QdtLibrary,
    base: CoreDataType,
    name: str,
    keep_supplementaries: dict[str, Multiplicity | str | None] | list[str] | None = None,
    content_enum: EnumerationType | None = None,
    **tags: str,
) -> QualifiedDataType:
    """Derive a qualified data type from ``base`` by restriction.

    ``keep_supplementaries`` selects which SUPs survive (all dropped when
    None/empty -- CCTS allows removing every supplementary, as CountryType in
    Figure 4 keeps only ``CodeListName``); a dict form also tightens their
    multiplicities.  ``content_enum`` restricts the content value space.
    """
    if not base.element.has_stereotype(CDT):
        raise DerivationError(f"cannot derive QDT {name!r}: base {base.name!r} is not a CDT")
    base_content = base.content_component
    if base_content is None:
        raise DerivationError(f"cannot derive QDT {name!r}: CDT {base.name!r} has no content component")

    qdt = library.add_qdt(name, **tags)

    content_type = content_enum.element if content_enum is not None else base_content.element.type
    qdt.element.add_attribute(
        base_content.element.name,
        content_type,
        base_content.element.multiplicity,
        stereotype=CON,
    )

    if isinstance(keep_supplementaries, list):
        keep_supplementaries = {sup_name: None for sup_name in keep_supplementaries}
    base_sups = {sup.name: sup for sup in base.supplementary_components}
    for sup_name, new_multiplicity in (keep_supplementaries or {}).items():
        base_sup = base_sups.get(sup_name)
        if base_sup is None:
            raise DerivationError(
                f"QDT {name!r} keeps supplementary {sup_name!r} which CDT {base.name!r} does not define"
            )
        # SUP multiplicities may change freely: the paper's own CountryType
        # keeps CodeListName at [0..1] although Code declares it mandatory.
        # (The widening is reported as a warning by rule UPCC-D09.)
        multiplicity = _as_multiplicity(new_multiplicity, base_sup.element.multiplicity)
        qdt.element.add_attribute(sup_name, base_sup.element.type, multiplicity, stereotype=SUP)

    library.package.add_dependency(qdt.element, base.element, stereotype=BASED_ON)
    return qdt


class AbieDerivation:
    """Builder returned by :func:`derive_abie`; selects the restricted content.

    Mirrors how a modeler works in the paper's add-in: create the ABIE,
    pick which BCCs become BBIEs (possibly retyping to QDTs / tightening
    multiplicities), then wire ASBIEs.
    """

    def __init__(self, abie: Abie, base: Acc) -> None:
        self.abie = abie
        self.base = base

    def include(
        self,
        bcc_name: str,
        multiplicity: Multiplicity | str | None = None,
        data_type: CoreDataType | QualifiedDataType | None = None,
        rename: str | None = None,
        **tags: str,
    ) -> Bbie:
        """Turn one BCC of the base ACC into a BBIE of the ABIE.

        ``data_type`` may retype the field to a QDT, but only one based on
        the BCC's own CDT; ``multiplicity`` may only tighten; ``rename``
        adds a property-term qualifier (kept a pure rename here).
        """
        bcc = self.base.bcc(bcc_name)
        new_multiplicity = _as_multiplicity(multiplicity, bcc.element.multiplicity)
        if not new_multiplicity.is_restriction_of(bcc.element.multiplicity):
            raise DerivationError(
                f"BBIE {bcc_name!r} multiplicity {new_multiplicity} is not a restriction "
                f"of BCC multiplicity {bcc.element.multiplicity}"
            )
        if data_type is None:
            new_type = bcc.element.type
        else:
            new_type = data_type.element
            if new_type.has_stereotype(QDT):
                base_cdt = QualifiedDataType(new_type, self.abie.model).based_on
                if base_cdt is None or base_cdt.element is not bcc.element.type:
                    raise DerivationError(
                        f"BBIE {bcc_name!r} retyped to QDT {data_type.name!r} which is not "
                        f"based on the BCC's CDT {bcc.element.type_name!r}"
                    )
            elif new_type is not bcc.element.type:
                raise DerivationError(
                    f"BBIE {bcc_name!r} retyped to {data_type.name!r} which is neither the "
                    f"BCC's CDT nor a QDT derived from it"
                )
        prop = self.abie.element.add_attribute(
            rename or bcc_name, new_type, new_multiplicity, stereotype=BBIE, **tags
        )
        return Bbie(prop, self.abie.model)

    def include_all(self) -> list[Bbie]:
        """Include every BCC unchanged (no restriction applied)."""
        return [self.include(bcc.name) for bcc in self.base.bccs]

    def connect(
        self,
        role: str,
        target: Abie,
        multiplicity: Multiplicity | str | None = None,
        aggregation: AggregationKind | None = None,
        based_on: Ascc | str | None = None,
        **tags: str,
    ):
        """Add an ASBIE, optionally derived from an ASCC of the base ACC.

        When ``based_on`` names (or is) an ASCC, the ASBIE multiplicity must
        restrict the ASCC's and the target ABIE must be based on the ASCC's
        target ACC.
        """
        ascc: Ascc | None
        if isinstance(based_on, str):
            ascc = self.base.ascc(based_on)
        else:
            ascc = based_on
        if ascc is not None:
            new_multiplicity = _as_multiplicity(multiplicity, ascc.element.target.multiplicity)
            if not new_multiplicity.is_restriction_of(ascc.element.target.multiplicity):
                raise DerivationError(
                    f"ASBIE {role!r} multiplicity {new_multiplicity} is not a restriction "
                    f"of ASCC multiplicity {ascc.element.target.multiplicity}"
                )
            target_base = target.based_on
            if target_base is None or target_base.element is not ascc.target.element:
                raise DerivationError(
                    f"ASBIE {role!r} targets ABIE {target.name!r} which is not based on "
                    f"the ASCC's target ACC {ascc.target.name!r}"
                )
            chosen_aggregation = aggregation if aggregation is not None else ascc.aggregation
        else:
            new_multiplicity = _as_multiplicity(multiplicity, Multiplicity(1, 1))
            chosen_aggregation = aggregation if aggregation is not None else AggregationKind.COMPOSITE
        return self.abie.add_asbie(
            role, target, new_multiplicity, chosen_aggregation, based_on=ascc, **tags
        )


def derive_abie(
    library: BieLibrary,
    base: Acc,
    qualifier: str | None = None,
    name: str | None = None,
    **tags: str,
) -> AbieDerivation:
    """Derive an ABIE from ``base`` by restriction; returns the builder.

    The ABIE name defaults to ``qualifier_BaseName`` (``US`` + ``Person`` ->
    ``US_Person``) or just the base name when unqualified, matching the
    paper's "optional prefix to the name of the underlying core component".
    """
    abie_name = name if name is not None else apply_qualifier(qualifier, base.name)
    abie = library.add_abie(abie_name, **tags)
    library.package.add_dependency(abie.element, base.element, stereotype=BASED_ON)
    return AbieDerivation(abie, base)


def check_abie_restriction(abie: Abie) -> list[str]:
    """Re-validate an existing ABIE against its base ACC; returns problems.

    Used by the validation engine on models built by hand or loaded from
    XMI, where the construction-time guarantees of :class:`AbieDerivation`
    do not apply.
    """
    problems: list[str] = []
    base = abie.based_on
    if base is None:
        return [f"ABIE {abie.name!r} has no basedOn dependency to an ACC"]
    base_bccs = {bcc.name: bcc for bcc in base.bccs}
    for bbie in abie.bbies:
        bcc = base_bccs.get(bbie.name)
        if bcc is None:
            problems.append(
                f"BBIE {abie.name}.{bbie.name} has no corresponding BCC in ACC {base.name!r}"
            )
            continue
        if not bbie.multiplicity.is_restriction_of(bcc.multiplicity):
            problems.append(
                f"BBIE {abie.name}.{bbie.name} multiplicity {bbie.multiplicity} does not "
                f"restrict BCC multiplicity {bcc.multiplicity}"
            )
        bbie_type = bbie.element.type
        bcc_type = bcc.element.type
        if bbie_type is None:
            problems.append(f"BBIE {abie.name}.{bbie.name} is untyped")
        elif bbie_type is not bcc_type:
            if bbie_type.has_stereotype(QDT):
                base_cdt = QualifiedDataType(bbie_type, abie.model).based_on
                if base_cdt is None or base_cdt.element is not bcc_type:
                    problems.append(
                        f"BBIE {abie.name}.{bbie.name} type {bbie_type.name!r} is not based on "
                        f"BCC type {bcc.element.type_name!r}"
                    )
            else:
                problems.append(
                    f"BBIE {abie.name}.{bbie.name} type {bbie_type.name!r} neither matches the "
                    f"BCC type nor is a QDT derived from it"
                )
    for asbie in abie.asbies:
        ascc = asbie.based_on
        if ascc is None:
            continue  # an unlinked ASBIE is legal when assembling documents
        if not asbie.multiplicity.is_restriction_of(ascc.multiplicity):
            problems.append(
                f"ASBIE {abie.name}.{asbie.role} multiplicity {asbie.multiplicity} does not "
                f"restrict ASCC multiplicity {ascc.multiplicity}"
            )
        target_base = asbie.target.based_on
        if target_base is None or target_base.element is not ascc.target.element:
            problems.append(
                f"ASBIE {abie.name}.{asbie.role} target {asbie.target.name!r} is not based on "
                f"ASCC target {ascc.target.name!r}"
            )
    return problems


def check_qdt_restriction(qdt: QualifiedDataType) -> list[str]:
    """Re-validate an existing QDT against its base CDT; returns problems."""
    problems: list[str] = []
    base = qdt.based_on
    if base is None:
        return [f"QDT {qdt.name!r} has no basedOn dependency to a CDT"]
    content = qdt.content_component
    base_content = base.content_component
    if content is None:
        problems.append(f"QDT {qdt.name!r} has no content component")
    elif base_content is not None:
        content_type = content.element.type
        if content_type is not base_content.element.type and not isinstance(content_type, Enumeration):
            problems.append(
                f"QDT {qdt.name!r} content type {content.element.type_name!r} is neither the "
                f"CDT's content type nor an enumeration restriction"
            )
    base_sups = {sup.name: sup for sup in base.supplementary_components}
    for sup in qdt.supplementary_components:
        if sup.name not in base_sups:
            problems.append(
                f"QDT {qdt.name!r} supplementary {sup.name!r} does not exist on CDT {base.name!r}"
            )
    return problems


def qdt_widened_supplementaries(qdt: QualifiedDataType) -> list[str]:
    """SUPs whose multiplicity got *wider* than the base CDT's.

    Legal per the paper's own example (CountryType relaxes CodeListName to
    [0..1]) but worth a warning: instances valid against the QDT schema are
    then not valid against the CDT schema.
    """
    findings: list[str] = []
    base = qdt.based_on
    if base is None:
        return findings
    base_sups = {sup.name: sup for sup in base.supplementary_components}
    for sup in qdt.supplementary_components:
        base_sup = base_sups.get(sup.name)
        if base_sup is not None and not sup.multiplicity.is_restriction_of(base_sup.multiplicity):
            findings.append(
                f"QDT {qdt.name!r} supplementary {sup.name!r} widens multiplicity "
                f"{base_sup.multiplicity} to {sup.multiplicity}"
            )
    return findings

