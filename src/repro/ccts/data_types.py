"""Typed wrappers for the data-type stereotypes: PRIM, ENUM, CDT, QDT.

Structural rules from the paper (section 3):

* a CDT has **exactly one** attribute stereotyped ``CON`` and zero or more
  stereotyped ``SUP``;
* a QDT has the same shape, is ``basedOn`` a CDT, and its CON/SUPs are
  restrictions of the CDT's (SUPs may be dropped, multiplicities tightened,
  value spaces restricted by assigning an ENUM).
"""

from __future__ import annotations

from repro.errors import CctsError
from repro.ccts.base import ElementWrapper
from repro.profile import CDT, CON, ENUM, PRIM, QDT, SUP
from repro.uml.classifier import Classifier, DataType, Enumeration, EnumerationLiteral, PrimitiveType
from repro.uml.multiplicity import Multiplicity
from repro.uml.property import Property

class Primitive(ElementWrapper):
    """A primitive type (``PRIM``): String, Integer, Boolean, ..."""

    stereotype = PRIM

    element: PrimitiveType


class EnumerationType(ElementWrapper):
    """An enumeration (``ENUM``) restricting a CON/SUP value space."""

    stereotype = ENUM

    element: Enumeration

    def add_literal(self, name: str, value: str | None = None) -> EnumerationLiteral:
        """Add a code literal (``USA`` = ``United States of America``)."""
        return self.element.add_literal(name, value)

    @property
    def literals(self) -> list[EnumerationLiteral]:
        """All literals in declaration order."""
        return list(self.element.literals)

    @property
    def literal_names(self) -> list[str]:
        """Literal names in declaration order (the XSD enumeration values)."""
        return self.element.literal_names()


class ContentComponent(ElementWrapper):
    """The CON attribute of a CDT/QDT carrying the actual value."""

    stereotype = CON

    element: Property

    @property
    def type(self) -> Classifier | None:
        """The primitive or enumeration typing the content."""
        return self.element.type

    @property
    def multiplicity(self) -> Multiplicity:
        """Always 1..1 in well-formed models; kept for diagnostics."""
        return self.element.multiplicity

    @property
    def restricted_by_enum(self) -> bool:
        """True when an ENUM restricts the value space (paper section 3)."""
        return isinstance(self.element.type, Enumeration)


class SupplementaryComponent(ElementWrapper):
    """A SUP attribute: meta information about the content component."""

    stereotype = SUP

    element: Property

    @property
    def type(self) -> Classifier | None:
        """The primitive or enumeration typing the supplementary value."""
        return self.element.type

    @property
    def multiplicity(self) -> Multiplicity:
        """Maps to attribute ``use`` in XSD (0..1 -> optional, 1 -> required)."""
        return self.element.multiplicity


class CoreDataType(ElementWrapper):
    """A core data type (``CDT``): one CON plus zero or more SUPs."""

    stereotype = CDT

    element: DataType

    # -- construction ------------------------------------------------------------

    def set_content(
        self,
        type: Classifier,
        multiplicity: Multiplicity | str = "1",
        **tags: str,
    ) -> ContentComponent:
        """Create the single content component (raises when one exists)."""
        if self.element.attributes_with_stereotype(CON):
            raise CctsError(f"{self.stereotype} {self.name!r} already has a content component")
        prop = self.element.add_attribute("Content", type, multiplicity, stereotype=CON, **tags)
        return ContentComponent(prop, self.model)

    def add_supplementary(
        self,
        name: str,
        type: Classifier,
        multiplicity: Multiplicity | str = "1",
        **tags: str,
    ) -> SupplementaryComponent:
        """Add a supplementary component."""
        prop = self.element.add_attribute(name, type, multiplicity, stereotype=SUP, **tags)
        return SupplementaryComponent(prop, self.model)

    # -- queries --------------------------------------------------------------------

    @property
    def content_component(self) -> ContentComponent | None:
        """The CON attribute, or None when the type has none.

        A well-formed type has exactly one; when a hand-built or loaded
        model carries several, the first is returned and rule UPCC-D01/D02
        reports the violation (queries stay usable on broken models so the
        validation engine can describe them).
        """
        cons = self.element.attributes_with_stereotype(CON)
        if not cons:
            return None
        return ContentComponent(cons[0], self.model)

    @property
    def supplementary_components(self) -> list[SupplementaryComponent]:
        """All SUP attributes in declaration order."""
        return [
            SupplementaryComponent(prop, self.model)
            for prop in self.element.attributes_with_stereotype(SUP)
        ]

    def supplementary(self, name: str) -> SupplementaryComponent:
        """The SUP called ``name`` (raises :class:`CctsError` when absent)."""
        for sup in self.supplementary_components:
            if sup.name == name:
                return sup
        raise CctsError(f"{self.stereotype} {self.name!r} has no supplementary component {name!r}")


class QualifiedDataType(CoreDataType):
    """A qualified data type (``QDT``): a CDT restricted for a context."""

    stereotype = QDT

    @property
    def based_on(self) -> CoreDataType | None:
        """The CDT this QDT was derived from (None when missing or mismatched).

        A ``basedOn`` pointing at a non-CDT is reported by rule UPCC-P07;
        the accessor stays usable on broken models.
        """
        target = self.model.based_on_target(self.element)
        if target is None or not target.has_stereotype(CDT):
            return None
        return CoreDataType(target, self.model)

    @property
    def content_enum(self) -> EnumerationType | None:
        """The ENUM restricting the content component, when one is assigned."""
        content = self.content_component
        if content is not None and isinstance(content.element.type, Enumeration):
            return EnumerationType(content.element.type, self.model)
        return None
