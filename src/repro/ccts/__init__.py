"""The CCTS layer: a typed facade over the stereotyped UML model.

The UML kernel knows nothing about core components; this package adds the
CCTS 2.01 vocabulary on top of it:

* :mod:`repro.ccts.naming` -- dictionary entry names (DEN) in both the
  paper's compact dotted style and the full CCTS/ISO-11179 style,
* :mod:`repro.ccts.context` -- the eight CCTS business-context categories,
* wrapper classes (:class:`Acc`, :class:`Bcc`, :class:`Ascc`,
  :class:`CoreDataType`, :class:`QualifiedDataType`, :class:`Abie`, ...)
  giving each stereotype a typed API,
* library wrappers (:class:`CcLibrary`, :class:`BieLibrary`,
  :class:`DocLibrary`, ...) for the eight UPCC library kinds,
* :mod:`repro.ccts.derivation` -- the derivation-by-restriction engine that
  creates ABIEs from ACCs and QDTs from CDTs while enforcing the
  restriction rules,
* :class:`CctsModel` -- the top-level entry point that owns the model root.
"""

from repro.ccts.assembly import ContextRegistry
from repro.ccts.bie import Abie, Asbie, Bbie
from repro.ccts.context import BusinessContext, ContextCategory
from repro.ccts.core_components import Acc, Ascc, Bcc
from repro.ccts.data_types import (
    ContentComponent,
    CoreDataType,
    EnumerationType,
    Primitive,
    QualifiedDataType,
    SupplementaryComponent,
)
from repro.ccts.libraries import (
    BieLibrary,
    BusinessLibrary,
    CcLibrary,
    CdtLibrary,
    DocLibrary,
    EnumLibrary,
    PrimLibrary,
    QdtLibrary,
)
from repro.ccts.model import CctsModel
from repro.ccts.naming import (
    ccts_den_for_acc,
    ccts_den_for_ascc,
    ccts_den_for_bcc,
    compact_component_set,
    split_words,
)

__all__ = [
    "Abie",
    "Acc",
    "Asbie",
    "Ascc",
    "Bbie",
    "Bcc",
    "BieLibrary",
    "BusinessContext",
    "BusinessLibrary",
    "ContextRegistry",
    "CcLibrary",
    "CctsModel",
    "CdtLibrary",
    "ContentComponent",
    "ContextCategory",
    "CoreDataType",
    "DocLibrary",
    "EnumLibrary",
    "EnumerationType",
    "PrimLibrary",
    "Primitive",
    "QdtLibrary",
    "QualifiedDataType",
    "SupplementaryComponent",
    "ccts_den_for_acc",
    "ccts_den_for_ascc",
    "ccts_den_for_bcc",
    "compact_component_set",
    "split_words",
]
