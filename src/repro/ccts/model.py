"""The top-level entry point: a core-components model.

:class:`CctsModel` owns a :class:`repro.uml.Model` root, creates business
libraries, and exposes whole-model queries used by the generator, the
validation engine, the registry and the CLI.
"""

from __future__ import annotations

from repro.ccts.bie import Abie
from repro.ccts.core_components import Acc
from repro.ccts.data_types import CoreDataType, QualifiedDataType
from repro.ccts.libraries import (
    BieLibrary,
    BusinessLibrary,
    CcLibrary,
    CdtLibrary,
    DocLibrary,
    EnumLibrary,
    Library,
    PrimLibrary,
    QdtLibrary,
    library_wrapper_for,
)
from repro.errors import CctsError
from repro.profile import (
    ABIE,
    ACC,
    BUSINESS_LIBRARY,
    CDT,
    QDT,
    TAG_BASE_URN,
    UPCC,
)
from repro.uml.classifier import Class, DataType
from repro.uml.elements import structural_revision
from repro.uml.model import Model
from repro.uml.package import Package


class CctsModel:
    """A core-components model: the root object users interact with."""

    def __init__(self, name: str = "Model", model: Model | None = None) -> None:
        self.model = model if model is not None else Model(name)
        self.profile = UPCC
        self._libraries_cache: tuple[int, list[Library]] | None = None

    @property
    def name(self) -> str:
        """The model name."""
        return self.model.name

    # -- construction ------------------------------------------------------------

    def add_business_library(self, name: str, base_urn: str = "", **tags: str) -> BusinessLibrary:
        """Create a top-level business library."""
        tags.setdefault(TAG_BASE_URN, base_urn or f"urn:{name.lower()}")
        package = self.model.add_package(name, stereotype=BUSINESS_LIBRARY, **tags)
        return BusinessLibrary(package, self.model)

    # -- library queries ------------------------------------------------------------

    def business_libraries(self) -> list[BusinessLibrary]:
        """All top-level business libraries."""
        return [
            BusinessLibrary(package, self.model)
            for package in self.model.packages
            if package.has_stereotype(BUSINESS_LIBRARY)
        ]

    def libraries(self) -> list[Library]:
        """Every stereotyped library anywhere in the model.

        The scan is memoized against the model's
        :func:`~repro.uml.elements.structural_revision`; repeated lookups
        on an unchanged model reuse the wrapper list.
        """
        revision = structural_revision()
        cached = self._libraries_cache
        if cached is not None and cached[0] == revision:
            return list(cached[1])
        found: list[Library] = []
        for element in self.model.walk():
            if isinstance(element, Package):
                wrapper = library_wrapper_for(element, self.model)
                if wrapper is not None:
                    found.append(wrapper)
        self._libraries_cache = (revision, found)
        return list(found)

    def _libraries_of(self, wrapper_type: type) -> list:
        return [library for library in self.libraries() if type(library) is wrapper_type]

    def cdt_libraries(self) -> list[CdtLibrary]:
        """All CDT libraries."""
        return self._libraries_of(CdtLibrary)

    def qdt_libraries(self) -> list[QdtLibrary]:
        """All QDT libraries."""
        return self._libraries_of(QdtLibrary)

    def cc_libraries(self) -> list[CcLibrary]:
        """All CC libraries."""
        return self._libraries_of(CcLibrary)

    def bie_libraries(self) -> list[BieLibrary]:
        """All BIE libraries (excluding DOC libraries)."""
        return self._libraries_of(BieLibrary)

    def doc_libraries(self) -> list[DocLibrary]:
        """All DOC libraries."""
        return self._libraries_of(DocLibrary)

    def enum_libraries(self) -> list[EnumLibrary]:
        """All ENUM libraries."""
        return self._libraries_of(EnumLibrary)

    def prim_libraries(self) -> list[PrimLibrary]:
        """All PRIM libraries."""
        return self._libraries_of(PrimLibrary)

    def library_named(self, name: str) -> Library:
        """The library called ``name`` anywhere in the model."""
        for library in self.libraries():
            if library.name == name:
                return library
        raise CctsError(f"model {self.name!r} contains no library named {name!r}")

    # -- element queries ---------------------------------------------------------------

    def accs(self) -> list[Acc]:
        """Every ACC in the model."""
        return [
            Acc(element, self.model)
            for element in self.model.all_with_stereotype(ACC)
            if isinstance(element, Class)
        ]

    def abies(self) -> list[Abie]:
        """Every ABIE in the model."""
        return [
            Abie(element, self.model)
            for element in self.model.all_with_stereotype(ABIE)
            if isinstance(element, Class)
        ]

    def cdts(self) -> list[CoreDataType]:
        """Every CDT in the model."""
        return [
            CoreDataType(element, self.model)
            for element in self.model.all_with_stereotype(CDT)
            if isinstance(element, DataType)
        ]

    def qdts(self) -> list[QualifiedDataType]:
        """Every QDT in the model."""
        return [
            QualifiedDataType(element, self.model)
            for element in self.model.all_with_stereotype(QDT)
            if isinstance(element, DataType)
        ]

    def acc(self, name: str) -> Acc:
        """The ACC called ``name``."""
        for acc in self.accs():
            if acc.name == name:
                return acc
        raise CctsError(f"model {self.name!r} contains no ACC {name!r}")

    def abie(self, name: str) -> Abie:
        """The ABIE called ``name``."""
        for abie in self.abies():
            if abie.name == name:
                return abie
        raise CctsError(f"model {self.name!r} contains no ABIE {name!r}")

    def owning_library_of(self, wrapper) -> Library | None:
        """The library whose package owns the wrapped element, if any.

        This is how the generator decides which schema defines a type: the
        *owning* package, not the diagram it is drawn in (paper section 3:
        "Code is originally defined in package 4 and has only been drawn in
        package 3").
        """
        package = self.model.owning_package_of(wrapper.element)
        while package is not None:
            library = library_wrapper_for(package, self.model)
            if library is not None:
                return library
            owner = package.owner
            package = owner if isinstance(owner, Package) else None
        return None

    # -- profile validation hook ----------------------------------------------------------

    def profile_problems(self) -> list[str]:
        """Every stereotype-application problem in the model."""
        problems: list[str] = []
        for element in self.model.walk():
            for problem in self.profile.check_element(element):
                label = getattr(element, "qualified_name", repr(element))
                problems.append(f"{label}: {problem}")
        return problems
