"""Context-driven entity resolution.

CCTS's promise (paper section 2.2): a core component is refined per
business context, and document assemblers pick the BIE matching *their*
context.  :class:`ContextRegistry` implements that resolution step:

* ABIEs register with the :class:`repro.ccts.context.BusinessContext` they
  were qualified for (stored in the ``businessContext`` tagged value as a
  display string, and in the registry as the structured value),
* :meth:`resolve` answers "which ABIE of ACC X applies in context C?" by
  picking the registered entity whose context is the most specific one
  containing C,
* unregistered ABIEs with an unconstrained context act as defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ccts.bie import Abie
from repro.ccts.context import BusinessContext
from repro.ccts.core_components import Acc
from repro.ccts.model import CctsModel
from repro.errors import CctsError
from repro.profile import TAG_BUSINESS_CONTEXT


@dataclass
class _Registration:
    abie: Abie
    context: BusinessContext


@dataclass
class ContextRegistry:
    """Maps (base ACC, business context) to the qualified ABIE."""

    model: CctsModel
    _by_acc: dict[int, list[_Registration]] = field(default_factory=dict)

    def register(self, abie: Abie, context: BusinessContext) -> None:
        """Register an ABIE for a context; also stamps the tagged value."""
        base = abie.based_on
        if base is None:
            raise CctsError(f"cannot register {abie.name!r}: it is not based on an ACC")
        registrations = self._by_acc.setdefault(id(base.element), [])
        for existing in registrations:
            if existing.context == context:
                raise CctsError(
                    f"ACC {base.name!r} already has an entity for context "
                    f"{context.describe()} ({existing.abie.name!r})"
                )
        registrations.append(_Registration(abie, context))
        abie.element.apply_stereotype(abie.stereotype, **{TAG_BUSINESS_CONTEXT: str(context)})

    def register_all_unqualified(self) -> int:
        """Register every untagged ABIE under the unconstrained context."""
        count = 0
        for abie in self.model.abies():
            if abie.business_context is not None:
                continue
            base = abie.based_on
            if base is None:
                continue
            registrations = self._by_acc.setdefault(id(base.element), [])
            if any(registration.context.is_unconstrained for registration in registrations):
                continue
            registrations.append(_Registration(abie, BusinessContext()))
            count += 1
        return count

    def entities_of(self, acc: Acc) -> list[tuple[Abie, BusinessContext]]:
        """All registered (ABIE, context) pairs for a base ACC."""
        return [
            (registration.abie, registration.context)
            for registration in self._by_acc.get(id(acc.element), [])
        ]

    def resolve(self, acc: Acc, context: BusinessContext) -> Abie:
        """The ABIE of ``acc`` applying in ``context``.

        Among registrations whose context *contains* the requested one, the
        most specific (most constrained categories) wins; ties are an
        error, no candidate raises :class:`CctsError`.
        """
        candidates = [
            registration
            for registration in self._by_acc.get(id(acc.element), [])
            if context.is_subcontext_of(registration.context)
        ]
        if not candidates:
            raise CctsError(
                f"no business information entity of ACC {acc.name!r} applies in "
                f"context {context.describe()}"
            )
        best_specificity = max(len(c.context.values) for c in candidates)
        best = [c for c in candidates if len(c.context.values) == best_specificity]
        if len(best) > 1:
            names = ", ".join(c.abie.name for c in best)
            raise CctsError(
                f"ambiguous resolution for ACC {acc.name!r} in {context.describe()}: {names}"
            )
        return best[0].abie


def assemble_document(
    doc_library,
    root_acc: Acc,
    context: BusinessContext,
    registry: ContextRegistry,
    name: str | None = None,
) -> Abie:
    """Assemble a document ABIE for a business context (Figure 2's box).

    The root ACC's BCCs become BBIEs unchanged; every outgoing ASCC is wired
    to the ABIE the registry resolves for ``context`` -- so the same core
    definition assembles into different documents per context.  The new
    document ABIE is created in ``doc_library`` and tagged with the context.
    """
    from repro.ccts.derivation import derive_abie

    derivation = derive_abie(doc_library, root_acc, name=name)
    derivation.include_all()
    for ascc in root_acc.asccs:
        target = registry.resolve(ascc.target, context)
        derivation.connect(ascc.role, target, based_on=ascc)
    document = derivation.abie
    document.element.apply_stereotype(document.stereotype, **{TAG_BUSINESS_CONTEXT: str(context)})
    return document
