"""Shared base class for CCTS wrapper objects.

Wrappers pair a UML element with the owning :class:`repro.uml.Model` so they
can answer model-wide questions (``basedOn`` targets, outgoing
associations).  They compare equal when they wrap the same element, so
round-tripping through lookups yields interchangeable handles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.profile import TAG_DEFINITION, TAG_DICTIONARY_ENTRY_NAME, TAG_VERSION
from repro.uml.elements import NamedElement

if TYPE_CHECKING:  # pragma: no cover
    from repro.uml.model import Model


class ElementWrapper:
    """A typed handle on a stereotyped UML element."""

    #: The stereotype this wrapper expects on its element.
    stereotype: str = ""

    def __init__(self, element: NamedElement, model: "Model") -> None:
        self.element = element
        self.model = model

    @property
    def name(self) -> str:
        """The model name of the wrapped element."""
        return self.element.name

    @property
    def qualified_name(self) -> str:
        """Dot-separated path from the model root."""
        return self.element.qualified_name

    def _tag(self, tag: str, default: str | None = None) -> str | None:
        return self.element.tagged_value(self.stereotype, tag, default)

    def _set_tag(self, tag: str, value: str) -> None:
        self.element.set_tagged_value(self.stereotype, tag, value)

    @property
    def definition(self) -> str:
        """The CCTS definition annotation text."""
        return self._tag(TAG_DEFINITION, "") or ""

    @definition.setter
    def definition(self, value: str) -> None:
        self._set_tag(TAG_DEFINITION, value)

    @property
    def version(self) -> str:
        """The CCTS version annotation."""
        return self._tag(TAG_VERSION, "1.0") or "1.0"

    @version.setter
    def version(self, value: str) -> None:
        self._set_tag(TAG_VERSION, value)

    @property
    def dictionary_entry_name(self) -> str | None:
        """The denormalized DEN tag, when present."""
        return self._tag(TAG_DICTIONARY_ENTRY_NAME)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ElementWrapper) and other.element is self.element

    def __hash__(self) -> int:
        return id(self.element)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
