"""CSV (spreadsheet) interchange of core-components models.

Row shape follows the UN/CEFACT harmonization spreadsheets: one row per
dictionary entry with kind, owning library, names, type, cardinality and
definition.  The format is **deliberately lossy**, exactly as the paper
criticizes: it carries no namespace prefixes, no tagged values beyond the
definition, no enum display values beyond a value column, and no stable
ids.  :func:`import_csv` reconstructs what it can; the interchange
benchmark measures the gap against XMI.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.ccts.libraries import (
    BieLibrary,
    CcLibrary,
    CdtLibrary,
    DocLibrary,
    EnumLibrary,
    PrimLibrary,
    QdtLibrary,
)
from repro.ccts.model import CctsModel
from repro.errors import InterchangeError
from repro.profile import (
    ABIE,
    ACC,
    ASBIE,
    ASCC,
    BASED_ON,
    BBIE,
    BCC,
    CDT,
    CON,
    ENUM,
    PRIM,
    QDT,
    SUP,
    TAG_DEFINITION,
)
from repro.uml.association import AggregationKind

#: CSV column names, in order.
COLUMNS = (
    "kind",
    "library",
    "library_kind",
    "owner",
    "name",
    "type",
    "cardinality",
    "aggregation",
    "based_on",
    "definition",
)

_LIBRARY_KINDS = {
    "PRIMLibrary": PrimLibrary,
    "ENUMLibrary": EnumLibrary,
    "CDTLibrary": CdtLibrary,
    "QDTLibrary": QdtLibrary,
    "CCLibrary": CcLibrary,
    "BIELibrary": BieLibrary,
    "DOCLibrary": DocLibrary,
}


def export_csv(model: CctsModel, path: str | Path | None = None) -> str:
    """Export ``model`` to harmonization-sheet CSV; returns the text."""
    out = io.StringIO()
    writer = csv.DictWriter(out, COLUMNS, lineterminator="\n")
    writer.writeheader()

    def row(**values: str) -> None:
        writer.writerow({column: values.get(column, "") for column in COLUMNS})

    for library in model.libraries():
        if library.stereotype == "BusinessLibrary":
            continue
        lib = {"library": library.name, "library_kind": library.stereotype}
        for classifier in library.package.classifiers:
            stereotypes = classifier.stereotypes
            kind = stereotypes[0] if stereotypes else ""
            based_on = model.model.based_on_target(classifier)
            row(
                kind=kind,
                owner="",
                name=classifier.name,
                based_on=based_on.name if based_on is not None else "",
                definition=classifier.any_tagged_value(TAG_DEFINITION) or "",
                **lib,
            )
            for prop in classifier.attributes:
                prop_kind = prop.stereotypes[0] if prop.stereotypes else ""
                row(
                    kind=prop_kind,
                    owner=classifier.name,
                    name=prop.name,
                    type=prop.type_name,
                    cardinality=str(prop.multiplicity),
                    definition=prop.any_tagged_value(TAG_DEFINITION) or "",
                    **lib,
                )
            for literal in getattr(classifier, "literals", []):
                row(kind="LITERAL", owner=classifier.name, name=literal.name, type=literal.value, **lib)
        for association in library.package.associations:
            assoc_kind = association.stereotypes[0] if association.stereotypes else ""
            based_on = model.model.based_on_target(association)
            row(
                kind=assoc_kind,
                owner=association.source.type.name,
                name=association.target.name,
                type=association.target.type.name,
                cardinality=str(association.target.multiplicity),
                aggregation=association.aggregation.value,
                based_on=(based_on.target.name if hasattr(based_on, "target") else "") if based_on is not None else "",
                **lib,
            )
    text = out.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def import_csv(text: str, model_name: str = "Imported", base_urn: str = "urn:imported") -> CctsModel:
    """Reconstruct a model from harmonization-sheet CSV.

    Reconstruction is two-pass: classifiers first, then typed members and
    associations.  Everything the format cannot express (prefixes, tagged
    values, ids) comes back as defaults -- that *is* the baseline's point.
    """
    reader = csv.DictReader(io.StringIO(text))
    rows = list(reader)
    model = CctsModel(model_name)
    business = model.add_business_library("Imported", base_urn)

    libraries: dict[str, object] = {}
    classifiers: dict[tuple[str, str], object] = {}

    adders = {
        "PRIMLibrary": business.add_prim_library,
        "ENUMLibrary": business.add_enum_library,
        "CDTLibrary": business.add_cdt_library,
        "QDTLibrary": business.add_qdt_library,
        "CCLibrary": business.add_cc_library,
        "BIELibrary": business.add_bie_library,
        "DOCLibrary": business.add_doc_library,
    }

    # Pass 1: libraries and classifiers.
    for row in rows:
        library_name = row["library"]
        if library_name not in libraries:
            adder = adders.get(row["library_kind"])
            if adder is None:
                raise InterchangeError(f"unknown library kind {row['library_kind']!r}")
            libraries[library_name] = adder(library_name)
        library = libraries[library_name]
        kind = row["kind"]
        if row["owner"]:
            continue
        if kind == PRIM:
            classifiers[(library_name, row["name"])] = library.add_primitive(row["name"])
        elif kind == ENUM:
            classifiers[(library_name, row["name"])] = library.add_enumeration(row["name"])
        elif kind == CDT:
            classifiers[(library_name, row["name"])] = library.add_cdt(row["name"])
        elif kind == QDT:
            classifiers[(library_name, row["name"])] = library.add_qdt(row["name"])
        elif kind == ACC:
            classifiers[(library_name, row["name"])] = library.add_acc(row["name"])
        elif kind == ABIE:
            classifiers[(library_name, row["name"])] = library.add_abie(row["name"])
        elif kind:
            raise InterchangeError(f"unknown classifier kind {kind!r} for {row['name']!r}")

    def find_classifier(name: str):
        matches = [wrapper for (_, n), wrapper in classifiers.items() if n == name]
        if not matches:
            raise InterchangeError(f"row references unknown classifier {name!r}")
        return matches[0]

    # Pass 2: members, literals, associations and basedOn links.
    for row in rows:
        kind, owner_name = row["kind"], row["owner"]
        if not owner_name:
            if kind in (QDT, ABIE) or not row["based_on"]:
                continue
            continue
        library = libraries[row["library"]]
        owner = classifiers.get((row["library"], owner_name))
        if owner is None:
            owner = find_classifier(owner_name)
        if kind == "LITERAL":
            owner.add_literal(row["name"], row["type"] or None)
        elif kind in (CON, SUP):
            type_wrapper = find_classifier(row["type"])
            if kind == CON:
                owner.set_content(type_wrapper.element, row["cardinality"] or "1")
            else:
                owner.add_supplementary(row["name"], type_wrapper.element, row["cardinality"] or "1")
        elif kind in (BCC, BBIE):
            type_wrapper = find_classifier(row["type"])
            prop = owner.element.add_attribute(
                row["name"], type_wrapper.element, row["cardinality"] or "1", stereotype=kind
            )
            if row["definition"]:
                prop.apply_stereotype(kind, **{TAG_DEFINITION: row["definition"]})
        elif kind in (ASCC, ASBIE):
            target = find_classifier(row["type"])
            library.package.add_association(
                owner.element,
                target.element,
                row["name"],
                row["cardinality"] or "1",
                AggregationKind(row["aggregation"] or "composite"),
                stereotype=kind,
            )

    # Pass 3: basedOn dependencies on classifiers.
    for row in rows:
        if row["owner"] or not row["based_on"]:
            continue
        client = classifiers.get((row["library"], row["name"]))
        if client is None:
            continue
        try:
            supplier = find_classifier(row["based_on"])
        except InterchangeError:
            continue
        library = libraries[row["library"]]
        library.package.add_dependency(client.element, supplier.element, stereotype=BASED_ON)

    return model
