"""External code-list import/export.

Real UN/CEFACT code lists (currencies, countries, transport modes) are
maintained outside the model and change on their own cadence; modelers
import them into ENUM libraries rather than typing literals by hand.  The
format here is the pragmatic two-column CSV those lists circulate in::

    code,name
    USA,United States of America
    AUT,Austria

with optional comment lines starting ``#`` and an optional header row
(detected when the first row is literally ``code,name``).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.ccts.data_types import EnumerationType
from repro.ccts.libraries import EnumLibrary
from repro.errors import InterchangeError


def import_code_list(
    library: EnumLibrary,
    name: str,
    source: str | Path,
    **tags: str,
) -> EnumerationType:
    """Create an enumeration in ``library`` from code-list CSV.

    ``source`` is CSV text or a file path.  Duplicate codes, empty codes
    and rows with more than two columns are rejected -- code lists feed
    straight into value spaces, so silent repair would hide data problems.
    """
    if isinstance(source, Path) or (isinstance(source, str) and "\n" not in source and source.endswith(".csv")):
        text = Path(source).read_text(encoding="utf-8")
    else:
        text = str(source)
    rows = [
        row for row in csv.reader(io.StringIO(text))
        if row and not (row[0].startswith("#"))
    ]
    if rows and [cell.strip().lower() for cell in rows[0]] == ["code", "name"]:
        rows = rows[1:]
    if not rows:
        raise InterchangeError(f"code list {name!r} is empty")
    enum = library.add_enumeration(name, **tags)
    seen: set[str] = set()
    for line_number, row in enumerate(rows, start=1):
        if len(row) > 2:
            raise InterchangeError(
                f"code list {name!r} row {line_number}: expected 'code[,name]', got {row!r}"
            )
        code = row[0].strip()
        display = row[1].strip() if len(row) > 1 else None
        if not code:
            raise InterchangeError(f"code list {name!r} row {line_number}: empty code")
        if code in seen:
            raise InterchangeError(f"code list {name!r} row {line_number}: duplicate code {code!r}")
        seen.add(code)
        enum.add_literal(code, display)
    return enum


def export_code_list(enum: EnumerationType, path: str | Path | None = None) -> str:
    """Export an enumeration back to code-list CSV; returns the text."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(["code", "name"])
    for literal in enum.literals:
        writer.writerow([literal.name, literal.value])
    text = out.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
