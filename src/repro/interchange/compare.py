"""Structural comparison of two core-components models.

``diff_models(a, b)`` returns human-readable difference strings; an empty
list means the models agree on everything compared: library inventory and
tagged values, classifier inventory per library, attribute shapes
(stereotype, type name, multiplicity), enum literals, associations and
``basedOn`` links.  Used to quantify interchange fidelity (XMI round-trips
to zero differences, the spreadsheet baseline does not).
"""

from __future__ import annotations

from repro.ccts.model import CctsModel
from repro.uml.classifier import Enumeration


def _library_signature(model: CctsModel) -> dict[str, dict]:
    signature: dict[str, dict] = {}
    for library in model.libraries():
        if library.stereotype == "BusinessLibrary":
            continue
        classifiers = {}
        for classifier in library.package.classifiers:
            attributes = tuple(
                (
                    tuple(prop.stereotypes),
                    prop.name,
                    prop.type_name,
                    str(prop.multiplicity),
                )
                for prop in classifier.attributes
            )
            literals = ()
            if isinstance(classifier, Enumeration):
                literals = tuple((literal.name, literal.value) for literal in classifier.literals)
            based_on = model.model.based_on_target(classifier)
            classifiers[classifier.name] = {
                "stereotypes": tuple(classifier.stereotypes),
                "attributes": attributes,
                "literals": literals,
                "based_on": based_on.name if based_on is not None else "",
                "tags": _tag_signature(classifier),
            }
        associations = sorted(
            (
                tuple(association.stereotypes),
                association.source.type.name,
                association.target.name,
                association.target.type.name,
                str(association.target.multiplicity),
                association.aggregation.value,
            )
            for association in library.package.associations
        )
        signature[library.name] = {
            "stereotype": library.stereotype,
            "tags": _tag_signature(library.element),
            "classifiers": classifiers,
            "associations": associations,
        }
    return signature


def _tag_signature(element) -> tuple:
    return tuple(
        sorted(
            (stereotype, tag, value)
            for stereotype, tags in element.stereotype_applications.items()
            for tag, value in tags.items()
        )
    )


def diff_models(a: CctsModel, b: CctsModel) -> list[str]:
    """Structural differences between two models (empty = equivalent)."""
    differences: list[str] = []
    sig_a = _library_signature(a)
    sig_b = _library_signature(b)
    for name in sorted(set(sig_a) - set(sig_b)):
        differences.append(f"library {name!r} only in first model")
    for name in sorted(set(sig_b) - set(sig_a)):
        differences.append(f"library {name!r} only in second model")
    for name in sorted(set(sig_a) & set(sig_b)):
        lib_a, lib_b = sig_a[name], sig_b[name]
        if lib_a["stereotype"] != lib_b["stereotype"]:
            differences.append(
                f"library {name!r}: stereotype {lib_a['stereotype']} vs {lib_b['stereotype']}"
            )
        if lib_a["tags"] != lib_b["tags"]:
            differences.append(f"library {name!r}: tagged values differ")
        cls_a, cls_b = lib_a["classifiers"], lib_b["classifiers"]
        for classifier in sorted(set(cls_a) - set(cls_b)):
            differences.append(f"{name}.{classifier} only in first model")
        for classifier in sorted(set(cls_b) - set(cls_a)):
            differences.append(f"{name}.{classifier} only in second model")
        for classifier in sorted(set(cls_a) & set(cls_b)):
            entry_a, entry_b = cls_a[classifier], cls_b[classifier]
            for field in ("stereotypes", "attributes", "literals", "based_on", "tags"):
                if entry_a[field] != entry_b[field]:
                    differences.append(
                        f"{name}.{classifier}: {field} differ "
                        f"({entry_a[field]!r} vs {entry_b[field]!r})"
                    )
        if lib_a["associations"] != lib_b["associations"]:
            only_a = set(lib_a["associations"]) - set(lib_b["associations"])
            only_b = set(lib_b["associations"]) - set(lib_a["associations"])
            for assoc in sorted(only_a):
                differences.append(f"{name}: association {assoc!r} only in first model")
            for assoc in sorted(only_b):
                differences.append(f"{name}: association {assoc!r} only in second model")
    return differences
