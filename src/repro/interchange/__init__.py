"""Model interchange: the spreadsheet baseline and model comparison.

The paper motivates the XMI route by what preceded it: "the standardization
and harmonization process of core component instances is based on spread
sheets".  This package implements that baseline --
:mod:`repro.interchange.spreadsheet` exports/imports a core-components
model as CSV rows shaped like the UN/CEFACT harmonization sheets -- and
:mod:`repro.interchange.compare` diffs two models, which the interchange
benchmark uses to quantify what the spreadsheet loses and XMI keeps.
"""

from repro.interchange.codelists import export_code_list, import_code_list
from repro.interchange.compare import diff_models
from repro.interchange.spreadsheet import export_csv, import_csv

__all__ = [
    "diff_models",
    "export_code_list",
    "export_csv",
    "import_code_list",
    "import_csv",
]
