"""The schema-to-model reconstruction."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ccts.base import ElementWrapper
from repro.ccts.derivation import derive_abie, derive_qdt
from repro.ccts.libraries import BieLibrary, CcLibrary, CdtLibrary, EnumLibrary, PrimLibrary, QdtLibrary
from repro.ccts.model import CctsModel
from repro.errors import SchemaError
from repro.ndr.names import TYPE_POSTFIX
from repro.uml.association import AggregationKind
from repro.uml.multiplicity import Multiplicity
from repro.xmlutil.qname import QName
from repro.xsd.components import (
    XSD_NS,
    AttributeDecl,
    AttributeUse,
    ComplexType,
    ElementDecl,
    Schema,
    SimpleType,
)
from repro.xsd.validator import SchemaSet
from repro.xsdgen.primitives import PRIMITIVE_BUILTINS

#: Reverse mapping: XSD built-in local name -> CCTS primitive name.
_PRIM_FOR_BUILTIN = {}
for _prim, _builtin in PRIMITIVE_BUILTINS.items():
    _PRIM_FOR_BUILTIN.setdefault(_builtin, _prim)


@dataclass
class _NamespaceFacts:
    """What the URN and content of one schema reveal about its library."""

    urn: str
    base: str
    kind: str  # "data" | "types"
    status: str
    name: str
    version: str | None


def _parse_urn(schema: Schema) -> _NamespaceFacts:
    tokens = schema.target_namespace.split(":")
    for index, token in enumerate(tokens):
        if token in ("data", "types") and index + 2 < len(tokens):
            return _NamespaceFacts(
                urn=schema.target_namespace,
                base=":".join(tokens[:index]),
                kind=token,
                status=tokens[index + 1],
                name=tokens[index + 2],
                version=schema.version,
            )
    # Fallback for non-NDR namespaces: synthesize a library name.
    return _NamespaceFacts(
        urn=schema.target_namespace,
        base=schema.target_namespace,
        kind="data",
        status="draft",
        name=tokens[-1] if tokens else "Imported",
        version=schema.version,
    )


def _strip_type(name: str) -> str:
    if name.endswith(TYPE_POSTFIX) and len(name) > len(TYPE_POSTFIX):
        return name[: -len(TYPE_POSTFIX)]
    return name


def _split_compound(element_name: str, target_entity: str) -> str:
    """Recover the ASBIE role from a compound name (role + target)."""
    if element_name.endswith(target_entity) and len(element_name) > len(target_entity):
        return element_name[: -len(target_entity)]
    return element_name


@dataclass
class ReverseReport:
    """The reconstructed model plus bookkeeping from the reconstruction."""

    model: CctsModel
    doc_library_names: list[str] = field(default_factory=list)
    root_elements: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)


class _Reverser:
    def __init__(self, schema_set: SchemaSet, model_name: str) -> None:
        self.schema_set = schema_set
        self.model = CctsModel(model_name)
        facts = [_parse_urn(schema_set.schema_for(ns)) for ns in sorted(schema_set.namespaces)]
        base = facts[0].base if facts else "urn:reverse"
        self.business = self.model.add_business_library("Reversed", base)
        self.prims: PrimLibrary = self.business.add_prim_library("Primitives")
        self._prim_cache: dict[str, object] = {}
        self.shadow_ccs: CcLibrary = self.business.add_cc_library("ReverseEngineeredComponents")
        self.report = ReverseReport(model=self.model)
        self._facts = {f.urn: f for f in facts}
        self._enum_wrappers: dict[QName, object] = {}
        self._cdt_wrappers: dict[QName, object] = {}
        self._qdt_wrappers: dict[QName, object] = {}
        self._abie_wrappers: dict[QName, object] = {}
        self._acc_wrappers: dict[QName, object] = {}
        self._cdt_library_of: dict[str, CdtLibrary] = {}

    # -- annotations --------------------------------------------------------------

    def _apply_annotation(self, wrapper: ElementWrapper, annotated) -> None:
        """Recover CCTS documentation from an ``xsd:annotation`` block."""
        if annotated is None or annotated.annotation is None:
            return
        mapping = {
            "Definition": "definition",
            "Version": "version",
            "DictionaryEntryName": "dictionaryEntryName",
            "BusinessTerm": "businessTerm",
            "UniqueID": "uniqueIdentifier",
        }
        for entry_name, text in annotated.annotation.entries:
            tag = mapping.get(entry_name)
            if tag and text:
                wrapper.element.apply_stereotype(wrapper.stereotype, **{tag: text})

    # -- primitives -----------------------------------------------------------------

    def _prim(self, builtin_local: str):
        name = _PRIM_FOR_BUILTIN.get(builtin_local, "String")
        if name not in self._prim_cache:
            self._prim_cache[name] = self.prims.add_primitive(name)
        return self._prim_cache[name]

    # -- classification ----------------------------------------------------------------

    def _classify(self, schema: Schema) -> str:
        """One of 'enum', 'datatype', 'bie' by schema content."""
        has_particles = any(ct.particle is not None for ct in schema.complex_types)
        has_simple_content = any(ct.simple_content is not None for ct in schema.complex_types)
        if has_particles:
            return "bie"
        if has_simple_content:
            return "datatype"
        if schema.simple_types:
            return "enum"
        return "bie"

    def _library_tags(self, facts: _NamespaceFacts) -> dict[str, str]:
        tags = {"baseURN": facts.base, "status": facts.status}
        if facts.version:
            tags["version"] = facts.version
        return tags

    # -- passes ----------------------------------------------------------------------------

    def run(self) -> ReverseReport:
        schemas = [self.schema_set.schema_for(ns) for ns in sorted(self.schema_set.namespaces)]
        enum_schemas = [s for s in schemas if self._classify(s) == "enum"]
        datatype_schemas = [s for s in schemas if self._classify(s) == "datatype"]
        bie_schemas = [s for s in schemas if self._classify(s) == "bie"]

        for schema in enum_schemas:
            self._reverse_enums(schema)
        # CDT-style schemas (every base a built-in) must precede QDT-style
        # ones, whose restrictions reference the reconstructed CDTs.
        datatype_schemas.sort(
            key=lambda s: any(
                ct.simple_content is not None and ct.simple_content.base.namespace != XSD_NS
                for ct in s.complex_types
            )
        )
        for schema in datatype_schemas:
            self._reverse_data_types(schema)
        for schema in bie_schemas:
            self._synthesize_core(schema)
        self._synthesize_core_associations(bie_schemas)
        for schema in bie_schemas:
            self._reverse_bies(schema)
        self._reverse_asbies(bie_schemas)
        self._detect_documents(bie_schemas)
        return self.report

    def _reverse_enums(self, schema: Schema) -> None:
        facts = self._facts[schema.target_namespace]
        library: EnumLibrary = self.business.add_enum_library(facts.name, **self._library_tags(facts))
        for simple_type in schema.simple_types:
            enum = library.add_enumeration(_strip_type(simple_type.name))
            for value in simple_type.enumeration_values:
                enum.add_literal(value)
            self._enum_wrappers[QName(schema.target_namespace, simple_type.name)] = enum

    def _reverse_data_types(self, schema: Schema) -> None:
        facts = self._facts[schema.target_namespace]
        extensions_of_builtin = [
            ct for ct in schema.complex_types
            if ct.simple_content is not None and ct.simple_content.base.namespace == XSD_NS
        ]
        derived = [
            ct for ct in schema.complex_types
            if ct.simple_content is not None and ct.simple_content.base.namespace != XSD_NS
        ]
        if extensions_of_builtin and not derived:
            library = self.business.add_cdt_library(facts.name, **self._library_tags(facts))
            self._cdt_library_of[schema.target_namespace] = library
            for complex_type in extensions_of_builtin:
                self._reverse_cdt(library, schema, complex_type)
            return
        # Mixed or purely derived: a QDT library.
        library = self.business.add_qdt_library(facts.name, **self._library_tags(facts))
        for complex_type in schema.complex_types:
            self._reverse_qdt(library, schema, complex_type)

    def _sup_spec(self, attribute: AttributeDecl) -> tuple[str, object, str]:
        if attribute.type.namespace == XSD_NS:
            type_element = self._prim(attribute.type.local).element
        else:
            enum = self._enum_wrappers.get(attribute.type)
            type_element = enum.element if enum is not None else self._prim("string").element
        multiplicity = "1" if attribute.use is AttributeUse.REQUIRED else "0..1"
        return attribute.name, type_element, multiplicity

    def _reverse_cdt(self, library: CdtLibrary, schema: Schema, complex_type: ComplexType) -> None:
        cdt = library.add_cdt(_strip_type(complex_type.name))
        content = complex_type.simple_content
        cdt.set_content(self._prim(content.base.local).element)
        for attribute in content.attributes:
            if attribute.use is AttributeUse.PROHIBITED:
                continue
            name, type_element, multiplicity = self._sup_spec(attribute)
            cdt.add_supplementary(name, type_element, multiplicity)
        self._apply_annotation(cdt, complex_type)
        self._cdt_wrappers[QName(schema.target_namespace, complex_type.name)] = cdt

    def _shadow_cdt_library(self) -> CdtLibrary:
        existing = self._cdt_library_of.get("__shadow__")
        if existing is None:
            existing = self.business.add_cdt_library("ReverseEngineeredDataTypes")
            self._cdt_library_of["__shadow__"] = existing
            self.report.notes.append(
                "synthesized CDT library for enum-based qualified data types "
                "(the extension base does not record the original CDT)"
            )
        return existing

    def _reverse_qdt(self, library: QdtLibrary, schema: Schema, complex_type: ComplexType) -> None:
        content = complex_type.simple_content
        qname = QName(schema.target_namespace, complex_type.name)
        name = _strip_type(complex_type.name)
        kept = {
            a.name: ("1" if a.use is AttributeUse.REQUIRED else "0..1")
            for a in content.attributes
            if a.use is not AttributeUse.PROHIBITED
        }
        enum = self._enum_wrappers.get(content.base)
        if enum is not None:
            # Enum-based extension: synthesize the lost base CDT.
            shadow_library = self._shadow_cdt_library()
            base = shadow_library.add_cdt(f"{name}Base")
            base.set_content(self._prim("token").element)
            for attribute in content.attributes:
                sup_name, type_element, multiplicity = self._sup_spec(attribute)
                base.add_supplementary(sup_name, type_element, multiplicity)
            qdt = derive_qdt(library, base, name, kept, content_enum=enum)
        else:
            base = self._cdt_wrappers.get(content.base)
            if base is None:
                raise SchemaError(f"QDT base {content.base.clark()} was not reconstructed")
            qdt = derive_qdt(library, base, name, kept)
        self._apply_annotation(qdt, complex_type)
        self._qdt_wrappers[qname] = qdt

    # -- core layer synthesis -----------------------------------------------------------------

    def _entity_types(self, schema: Schema) -> list[ComplexType]:
        return [ct for ct in schema.complex_types if ct.particle is not None]

    def _synthesize_core(self, schema: Schema) -> None:
        for complex_type in self._entity_types(schema):
            entity = _strip_type(complex_type.name)
            acc = self.shadow_ccs.add_acc(entity) if self.shadow_ccs.package.find_classifier(entity) is None else self.shadow_ccs.acc(entity)
            for element in self._sequence_elements(complex_type):
                if element.is_ref or not self._is_data_typed(element):
                    continue
                data_type = self._data_type_for_bcc(element.type)
                if data_type is not None and not any(b.name == element.name for b in acc.bccs):
                    acc.add_bcc(element.name, data_type, self._multiplicity(element))
            self._acc_wrappers[QName(schema.target_namespace, complex_type.name)] = acc

    def _synthesize_core_associations(self, schemas: list[Schema]) -> None:
        for schema in schemas:
            for complex_type in self._entity_types(schema):
                acc = self._acc_wrappers[QName(schema.target_namespace, complex_type.name)]
                for element, target_type, aggregation in self._asbie_shapes(schema, complex_type):
                    target_acc = self._acc_wrappers.get(target_type)
                    if target_acc is None:
                        continue
                    role = _split_compound(
                        element.name if element.name else element.ref.local,
                        target_acc.name,
                    )
                    if not any(
                        a.role == role and a.target.element is target_acc.element
                        for a in acc.asccs
                    ):
                        acc.add_ascc(role, target_acc, self._multiplicity(element), aggregation)

    # -- BIE layer ----------------------------------------------------------------------------------

    def _reverse_bies(self, schema: Schema) -> None:
        facts = self._facts[schema.target_namespace]
        prefix = schema.prefix_for(schema.target_namespace)
        tags = self._library_tags(facts)
        if prefix and not prefix.startswith(("bie", "doc")):
            tags["namespacePrefix"] = prefix
        library: BieLibrary = self.business.add_bie_library(facts.name, **tags)
        for complex_type in self._entity_types(schema):
            qname = QName(schema.target_namespace, complex_type.name)
            acc = self._acc_wrappers[qname]
            derivation = derive_abie(library, acc)
            for element in self._sequence_elements(complex_type):
                if element.is_ref or not self._is_data_typed(element):
                    continue
                qdt = self._qdt_wrappers.get(element.type)
                bbie = derivation.include(
                    element.name,
                    self._multiplicity(element),
                    data_type=qdt,
                )
                self._apply_annotation(bbie, element)
            self._apply_annotation(derivation.abie, complex_type)
            self._abie_wrappers[qname] = derivation.abie

    def _reverse_asbies(self, schemas: list[Schema]) -> None:
        for schema in schemas:
            for complex_type in self._entity_types(schema):
                qname = QName(schema.target_namespace, complex_type.name)
                abie = self._abie_wrappers[qname]
                acc = self._acc_wrappers[qname]
                for element, target_type, aggregation in self._asbie_shapes(schema, complex_type):
                    target_abie = self._abie_wrappers.get(target_type)
                    if target_abie is None:
                        self.report.notes.append(
                            f"dropped association to unreconstructed type {target_type.clark()}"
                        )
                        continue
                    role = _split_compound(
                        element.name if element.name else element.ref.local,
                        target_abie.name,
                    )
                    ascc = next(
                        (a for a in acc.asccs
                         if a.role == role and a.target.name == target_abie.based_on.name),
                        None,
                    )
                    abie.add_asbie(
                        role, target_abie, self._multiplicity(element), aggregation, based_on=ascc
                    )

    # -- shared helpers ----------------------------------------------------------------------------------

    def _sequence_elements(self, complex_type: ComplexType) -> list[ElementDecl]:
        if complex_type.particle is None:
            return []
        return [p for p in complex_type.particle.particles if isinstance(p, ElementDecl)]

    def _multiplicity(self, element: ElementDecl) -> Multiplicity:
        return Multiplicity(element.min_occurs, element.max_occurs)

    def _is_data_typed(self, element: ElementDecl) -> bool:
        if element.type is None:
            return False
        if element.type.namespace == XSD_NS:
            return True
        definition = self.schema_set.find_type(element.type)
        return not (isinstance(definition, ComplexType) and definition.particle is not None)

    def _data_type_for_bcc(self, type_name: QName):
        """The CDT a BCC should use for an element typed by CDT or QDT."""
        cdt = self._cdt_wrappers.get(type_name)
        if cdt is not None:
            return cdt
        qdt = self._qdt_wrappers.get(type_name)
        if qdt is not None:
            return qdt.based_on
        definition = self.schema_set.find_type(type_name)
        if isinstance(definition, SimpleType) or type_name.namespace == XSD_NS:
            return None
        return None

    def _asbie_shapes(self, schema: Schema, complex_type: ComplexType):
        """(element, target type QName, aggregation) for entity-typed children."""
        shapes = []
        for element in self._sequence_elements(complex_type):
            if element.is_ref:
                target = self.schema_set.find_global_element(element.ref)
                if target is None or target.type is None:
                    continue
                shapes.append((element, target.type, AggregationKind.SHARED))
            elif element.type is not None and not self._is_data_typed(element):
                shapes.append((element, element.type, AggregationKind.COMPOSITE))
        return shapes

    # -- documents -------------------------------------------------------------------------------------------

    def _detect_documents(self, schemas: list[Schema]) -> None:
        """Global elements never referenced by a ref are document roots."""
        referenced: set[QName] = set()
        for schema in schemas:
            for complex_type in schema.complex_types:
                for element in self._sequence_elements(complex_type):
                    if element.is_ref:
                        referenced.add(element.ref)
        for schema in schemas:
            for element in schema.global_elements:
                qname = QName(schema.target_namespace, element.name)
                if qname in referenced:
                    continue
                facts = self._facts[schema.target_namespace]
                self.report.doc_library_names.append(facts.name)
                self.report.root_elements.append(element.name)
                # Promote the owning BIELibrary to a DOCLibrary.  Go through
                # the stereotype API (not the dict) so the structural
                # revision advances and memoized library wrappers refresh.
                library = self.model.library_named(facts.name)
                element = library.element
                tags = dict(element.stereotype_applications.get("BIELibrary", {}))
                element.remove_stereotype("BIELibrary")
                element.apply_stereotype("DOCLibrary", **tags)


def reverse_engineer(schema_set: SchemaSet, model_name: str = "Reversed") -> ReverseReport:
    """Reconstruct a core-components model from an NDR schema set."""
    return _Reverser(schema_set, model_name).run()
