"""Reverse engineering: generated XSD schema sets back into UPCC models.

The paper's related work (Bernauer et al., "Representing XML Schema in
UML") covers the opposite direction of the paper's transformation; this
package implements it for the NDR dialect:

* :func:`reverse_engineer` consumes a :class:`repro.xsd.SchemaSet` and
  reconstructs a validating core-components model -- libraries recovered
  from the namespace URNs, ABIEs from complexTypes, BBIEs/ASBIEs from the
  sequence elements (compound names split back into role + target), QDTs
  from simpleContent derivations, ENUMs from token restrictions,
* because ABIEs derive exclusively from ACCs, a *candidate core layer* is
  synthesized alongside (one shadow ACC per recovered ABIE) -- mirroring
  how real harmonization promotes proven BIEs into core components.

Round trip: reverse-engineering the EasyBiz schema set and regenerating
yields structurally identical schemas (same namespaces, types, element
sequences, occurrences and imports) -- the integration tests check it.
"""

from repro.reverse.engineer import ReverseReport, reverse_engineer

__all__ = ["ReverseReport", "reverse_engineer"]
