"""Stereotype definitions of the UML Profile for Core Components.

The inventory reproduces Figure 3 of the paper exactly: eight library
stereotypes in *Management*, six data-type stereotypes in *DataTypes* and
nine stereotypes in *Common*.  ``BIE`` and ``CC`` are the abstract parents
of the concrete BIE/CC stereotypes (they appear in the profile but are never
applied directly).
"""

from __future__ import annotations

from repro.profile import tags
from repro.uml.stereotype import Profile, StereotypeDef, TagDef

# --- stereotype name constants (Figure 3) -------------------------------------

# Management package
BIE_LIBRARY = "BIELibrary"
BUSINESS_LIBRARY = "BusinessLibrary"
CC_LIBRARY = "CCLibrary"
CDT_LIBRARY = "CDTLibrary"
DOC_LIBRARY = "DOCLibrary"
ENUM_LIBRARY = "ENUMLibrary"
PRIM_LIBRARY = "PRIMLibrary"
QDT_LIBRARY = "QDTLibrary"

# DataTypes package
CDT = "CDT"
CON = "CON"
ENUM = "ENUM"
PRIM = "PRIM"
QDT = "QDT"
SUP = "SUP"

# Common package
ABIE = "ABIE"
ACC = "ACC"
ASBIE = "ASBIE"
ASCC = "ASCC"
BASED_ON = "basedOn"
BBIE = "BBIE"
BCC = "BCC"
BIE = "BIE"
CC = "CC"

#: The eight library stereotypes (Management package of Figure 3).
MANAGEMENT_STEREOTYPES = (
    BIE_LIBRARY,
    BUSINESS_LIBRARY,
    CC_LIBRARY,
    CDT_LIBRARY,
    DOC_LIBRARY,
    ENUM_LIBRARY,
    PRIM_LIBRARY,
    QDT_LIBRARY,
)

#: Alias kept for call sites that think in terms of "libraries".
LIBRARY_STEREOTYPES = MANAGEMENT_STEREOTYPES

#: The six data-type stereotypes (DataTypes package of Figure 3).
DATATYPE_STEREOTYPES = (CDT, CON, ENUM, PRIM, QDT, SUP)

#: The nine common stereotypes (Common package of Figure 3).
COMMON_STEREOTYPES = (ABIE, ACC, ASBIE, ASCC, BASED_ON, BBIE, BCC, BIE, CC)


def _library_tags() -> tuple[TagDef, ...]:
    """Tags shared by every library stereotype."""
    return (
        TagDef(tags.TAG_BASE_URN, required=True, description="URN base for the target namespace"),
        TagDef(tags.TAG_NAMESPACE_PREFIX, description="user-chosen namespace prefix"),
        TagDef(tags.TAG_VERSION, default="1.0", description="library version (URN component)"),
        TagDef(tags.TAG_STATUS, default="draft", description="lifecycle status (URN component)"),
        TagDef(tags.TAG_OWNER, description="owning agency"),
    )


def _annotation_tags() -> tuple[TagDef, ...]:
    """CCTS annotation tags shared by modelling elements.

    The paper: "An ABIE for instance, amongst others, has two mandatory
    annotation fields Version and Definition."  They are modelled as
    defaulted-required so an unannotated toy model still validates while
    the annotation writer has content to emit.
    """
    return (
        TagDef(tags.TAG_DEFINITION, required=True, default="", description="CCTS definition text"),
        TagDef(tags.TAG_VERSION, required=True, default="1.0", description="CCTS version"),
        TagDef(tags.TAG_DICTIONARY_ENTRY_NAME, description="denormalized dictionary entry name"),
        TagDef(tags.TAG_BUSINESS_TERM, description="business synonym"),
        TagDef(tags.TAG_UNIQUE_IDENTIFIER, description="CCTS unique identifier"),
        TagDef(tags.TAG_USAGE_RULE, description="free-text usage rule"),
    )


def build_upcc_profile() -> Profile:
    """Construct the UPCC profile with the full Figure-3 inventory."""
    profile = Profile("UPCC")
    annotation = _annotation_tags()
    library = _library_tags()

    # -- Management: the eight libraries, all extending Package ----------------
    profile.add("Management", StereotypeDef(
        BUSINESS_LIBRARY, ("Package",), library,
        description="Aggregates data-type/CC/BIE/DOC libraries into one business library.",
    ))
    for name, description in (
        (BIE_LIBRARY, "Container for ABIEs and their interdependencies, provided for reuse."),
        (CC_LIBRARY, "Container for aggregate core components."),
        (CDT_LIBRARY, "Container for core data types."),
        (DOC_LIBRARY, "Container assembling imported ABIEs into a business document."),
        (ENUM_LIBRARY, "Container for enumeration types used by qualified data types."),
        (PRIM_LIBRARY, "Container for primitive types."),
        (QDT_LIBRARY, "Container for qualified data types."),
    ):
        profile.add("Management", StereotypeDef(name, ("Package",), library, description=description))

    # -- DataTypes --------------------------------------------------------------
    profile.add("DataTypes", StereotypeDef(
        CDT, ("DataType", "Class"), annotation,
        description="Core data type: exactly one CON plus zero or more SUPs; no business semantic.",
    ))
    profile.add("DataTypes", StereotypeDef(
        QDT, ("DataType", "Class"), annotation,
        description="Qualified data type: a CDT restricted for a business context.",
    ))
    profile.add("DataTypes", StereotypeDef(
        CON, ("Property",), annotation,
        description="Content component: carries the actual value of a CDT/QDT.",
    ))
    profile.add("DataTypes", StereotypeDef(
        SUP, ("Property",), annotation,
        description="Supplementary component: meta information about the content component.",
    ))
    profile.add("DataTypes", StereotypeDef(
        ENUM, ("Enumeration",), annotation + (
            TagDef(tags.TAG_CODE_LIST_ID, description="identifier of the represented code list"),
        ),
        description="Enumeration restricting the value space of a CON or SUP.",
    ))
    profile.add("DataTypes", StereotypeDef(
        PRIM, ("PrimitiveType", "DataType"), annotation,
        description="Primitive type per CCTS (String, Integer, Boolean, ...).",
    ))

    # -- Common -------------------------------------------------------------------
    profile.add("Common", StereotypeDef(
        CC, ("Class", "Property", "Association"), annotation, abstract=True,
        description="Abstract parent of ACC, BCC and ASCC.",
    ))
    profile.add("Common", StereotypeDef(
        BIE, ("Class", "Property", "Association"), annotation, abstract=True,
        description="Abstract parent of ABIE, BBIE and ASBIE.",
    ))
    profile.add("Common", StereotypeDef(
        ACC, ("Class",), annotation,
        description="Aggregate core component: related pieces of business information.",
    ))
    profile.add("Common", StereotypeDef(
        BCC, ("Property",), annotation,
        description="Basic core component: an atomic information field of an ACC.",
    ))
    profile.add("Common", StereotypeDef(
        ASCC, ("Association",), annotation,
        description="Association core component: a complex-typed field between ACCs.",
    ))
    profile.add("Common", StereotypeDef(
        ABIE, ("Class",), annotation + (
            TagDef(tags.TAG_BUSINESS_CONTEXT, description="business context qualifying the entity"),
        ),
        description="Aggregate business information entity: an ACC restricted to a context.",
    ))
    profile.add("Common", StereotypeDef(
        BBIE, ("Property",), annotation,
        description="Basic business information entity: an atomic field of an ABIE.",
    ))
    profile.add("Common", StereotypeDef(
        ASBIE, ("Association",), annotation,
        description="Association business information entity between ABIEs.",
    ))
    profile.add("Common", StereotypeDef(
        BASED_ON, ("Dependency",), (),
        description="Derivation-by-restriction trace: ABIE->ACC, ASBIE->ASCC, QDT->CDT.",
    ))
    return profile


#: The singleton profile instance used across the library.
UPCC = build_upcc_profile()
