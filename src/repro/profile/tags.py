"""Tagged-value names used by the UPCC profile.

The paper (section 4) calls out ``baseURN`` (namespace construction) and
``NamespacePrefix`` (user-chosen prefix, e.g. ``commonAggregates``) on
library packages, and the CCTS-mandated annotation fields -- every element
carries at least ``Version`` and ``Definition`` -- on modelling elements.
"""

from __future__ import annotations

#: Library tag: the URN base the schema targetNamespace is built from.
TAG_BASE_URN = "baseURN"
#: Library tag: user-chosen namespace prefix for imports of this library.
TAG_NAMESPACE_PREFIX = "namespacePrefix"
#: Library/element tag: version string (also part of the namespace URN).
TAG_VERSION = "version"
#: Element tag: the CCTS definition annotation (mandatory per CCTS).
TAG_DEFINITION = "definition"
#: Element tag: the CCTS dictionary entry name, stored denormalized.
TAG_DICTIONARY_ENTRY_NAME = "dictionaryEntryName"
#: Element tag: a business synonym.
TAG_BUSINESS_TERM = "businessTerm"
#: Element tag: CCTS unique identifier (UN-assigned in the real registry).
TAG_UNIQUE_IDENTIFIER = "uniqueIdentifier"
#: Library tag: lifecycle status (e.g. draft / candidate / standard).
TAG_STATUS = "status"
#: Library tag: copyright / agency metadata kept for completeness.
TAG_OWNER = "owner"
#: Element tag: usage rule free text.
TAG_USAGE_RULE = "usageRule"
#: BIE tag: name of the business context the entity is qualified for.
TAG_BUSINESS_CONTEXT = "businessContext"
#: QDT/ENUM tag: identification of the code list represented.
TAG_CODE_LIST_ID = "codeListIdentifier"
#: ENUM literal value tag (display name of a code).
TAG_CODE_NAME = "codeName"
