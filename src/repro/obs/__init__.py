"""Pipeline observability: tracing spans, metrics, profiling, logging interop.

Zero-dependency, stdlib-only.  Six parts:

* :mod:`repro.obs.trace` -- hierarchical :class:`Span` context managers
  (wall + thread-CPU time) collected by a thread-safe :class:`Tracer`
  with pluggable sinks (in-memory ring buffer, logfmt-to-stderr,
  JSON-lines file),
* :mod:`repro.obs.metrics` -- named counters, gauges and histogram timers
  with a deterministic ``snapshot()`` / ``render_text()`` /
  ``render_json()`` reporting API,
* :mod:`repro.obs.prof` -- deterministic call-tree :class:`Profile`
  aggregation over finished spans with top-N table, JSON and
  collapsed-stack ("flamegraph") renderings plus an optional
  :mod:`cProfile` attach,
* :mod:`repro.obs.export` -- Prometheus text exposition of the metrics
  registry (``GET /metrics`` on the serve daemon) plus a stdlib parser
  and bucket-series quantile estimation for scrape consumers,
* :mod:`repro.obs.runtime` -- a background :class:`RuntimeCollector`
  publishing process gauges (RSS, GC, threads, fds, uptime) and running
  registered hooks on its cadence,
* :mod:`repro.obs.logging_bridge` -- standard :mod:`logging` loggers for
  the pipeline plus a handler that forwards records into the trace sinks,
* :mod:`repro.obs.propagation` -- W3C trace-context (``traceparent`` /
  ``tracestate``) parsing, rendering, and an ambient
  :class:`TraceContext` carried across threads via :mod:`contextvars`,
* :mod:`repro.obs.slo` -- declarative :class:`SloSpec` objectives
  evaluated by a multi-window burn-rate :class:`SloEngine`, with alert
  transitions recorded to a bounded :class:`AlertLog` ring,
* :mod:`repro.obs.query` -- offline filters over the serve daemon's
  JSONL artifacts (access logs, slow captures, alert rings) backing the
  ``upcc obs query`` subcommand.

Everything is off by default and costs one attribute check per
instrumented site.  Turn it on with::

    import repro.obs

    tracer = repro.obs.configure(trace=True)
    ... run the pipeline ...
    print(tracer.ring_buffer().render_tree())
    print(repro.obs.get_metrics().render_text())

or from the CLI with ``upcc --trace --metrics-out metrics.json ...`` and
``upcc stats``.  The metric name catalog and sink formats are documented
in ``docs/observability.md``.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO

from repro.obs.logging_bridge import (
    PIPELINE_LOGGERS,
    TraceSinkHandler,
    get_logger,
    unwire_logging,
    wire_logging,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    set_registry,
)
from repro.obs.export import (
    OPENMETRICS_CONTENT_TYPE,
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus_text,
    quantile_from_buckets,
    render_prometheus,
)
from repro.obs.prof import (
    Profile,
    ProfileNode,
    build_profile,
    cprofile_session,
    cprofile_stats_text,
    profile_from_tracer,
    to_trace_events,
)
from repro.obs.propagation import (
    TRACEPARENT_HEADER,
    TRACESTATE_HEADER,
    TraceContext,
    current_trace_context,
    parse_traceparent,
    parse_tracestate,
    render_traceparent,
    render_tracestate,
    use_trace_context,
)
from repro.obs.query import (
    query_access_log,
    query_alerts,
    query_slow_captures,
)
from repro.obs.runtime import RuntimeCollector, sample_runtime
from repro.obs.slo import (
    DEFAULT_SLOS,
    Alert,
    AlertLog,
    SloEngine,
    SloSpec,
    SloStatus,
    load_slo_specs,
)
from repro.obs.trace import (
    JsonLinesSink,
    LogfmtSink,
    RingBufferSink,
    Span,
    SpanSink,
    Tracer,
    get_tracer,
    set_tracer,
    span,
)


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry (alias of :func:`get_registry`)."""
    return get_registry()


def configure(
    *,
    trace: bool = True,
    ring_capacity: int = 1024,
    logfmt_stream: TextIO | None = None,
    jsonl_path: str | Path | TextIO | None = None,
    sinks: list[SpanSink] | None = None,
    reset_metrics: bool = False,
    logging_interop: bool = True,
) -> Tracer:
    """Set up the process-global observability state; returns the tracer.

    ``trace`` toggles span collection (a ring-buffer sink is always
    attached when on, so :meth:`Tracer.ring_buffer` works); pass
    ``logfmt_stream`` (e.g. ``sys.stderr``) for live logfmt lines and/or
    ``jsonl_path`` for a JSON-lines file.  Extra ``sinks`` are attached
    as given.  ``reset_metrics`` clears the registry first, giving a run
    a clean snapshot.  ``logging_interop`` routes ``repro.*`` log records
    through the same sinks; it is skipped when tracing is off.
    """
    tracer = get_tracer()
    tracer.clear_sinks()
    tracer.enabled = trace
    if trace:
        tracer.add_sink(RingBufferSink(ring_capacity))
        if logfmt_stream is not None:
            tracer.add_sink(LogfmtSink(logfmt_stream))
        if jsonl_path is not None:
            tracer.add_sink(JsonLinesSink(jsonl_path))
        for sink in sinks or []:
            tracer.add_sink(sink)
        if logging_interop:
            wire_logging(tracer)
    else:
        unwire_logging()
    if reset_metrics:
        get_registry().reset()
    return tracer


def disable() -> None:
    """Turn tracing off and detach all sinks (metrics keep counting)."""
    configure(trace=False)


__all__ = [
    "Alert",
    "AlertLog",
    "Counter",
    "DEFAULT_SLOS",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "LogfmtSink",
    "MetricsRegistry",
    "PIPELINE_LOGGERS",
    "OPENMETRICS_CONTENT_TYPE",
    "PROMETHEUS_CONTENT_TYPE",
    "Profile",
    "ProfileNode",
    "RingBufferSink",
    "RuntimeCollector",
    "SloEngine",
    "SloSpec",
    "SloStatus",
    "Span",
    "SpanSink",
    "TRACEPARENT_HEADER",
    "TRACESTATE_HEADER",
    "TraceContext",
    "TraceSinkHandler",
    "Tracer",
    "build_profile",
    "configure",
    "counter",
    "cprofile_session",
    "cprofile_stats_text",
    "current_trace_context",
    "disable",
    "gauge",
    "load_slo_specs",
    "parse_prometheus_text",
    "parse_traceparent",
    "parse_tracestate",
    "profile_from_tracer",
    "get_logger",
    "get_metrics",
    "get_registry",
    "get_tracer",
    "histogram",
    "quantile_from_buckets",
    "query_access_log",
    "query_alerts",
    "query_slow_captures",
    "render_prometheus",
    "render_traceparent",
    "render_tracestate",
    "sample_runtime",
    "set_registry",
    "set_tracer",
    "span",
    "to_trace_events",
    "unwire_logging",
    "use_trace_context",
    "wire_logging",
]
