"""Declarative SLOs with multi-window burn-rate alerting over the registry.

The serve daemon's raw telemetry (``serve.responses_total{code=..}``,
``serve.request_ms`` buckets) answers "what happened"; this module answers
"is the service meeting its objectives".  It follows the multi-window,
multi-burn-rate recipe from the Google SRE workbook:

* an :class:`SloSpec` declares an objective -- availability ("99.5% of
  responses are non-5xx") or latency ("99% of requests finish under
  250ms") -- plus a *fast* and a *slow* evaluation window and a burn-rate
  threshold;
* the :class:`SloEngine` keeps a bounded ring of cumulative good/total
  counter snapshots per SLO, sampled on the runtime collector's cadence,
  and computes windowed **burn rates**: the rate at which the error
  budget (``1 - objective``) is being consumed, where burn ``1.0`` means
  "exactly spending the budget", ``14.4`` means "a 30-day budget gone in
  2 days";
* an SLO **fires** only when *both* windows exceed the threshold -- the
  fast window makes alerts prompt, the slow window keeps a brief blip
  from paging -- and **resolves** once either window recovers;
* transitions append :class:`Alert` records to an in-memory ring and an
  optional size-bounded JSONL file (:class:`AlertLog`), served by
  ``GET /alerts`` and queried by ``upcc obs query --alerts``.

No traffic means no burn: windows with zero total are healthy, so an
idle daemon never pages.  Everything is stdlib-only and clock-injectable
for deterministic tests.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.obs.logging_bridge import get_logger
from repro.obs.metrics import MetricsRegistry, get_registry

_log = get_logger("repro.obs.slo")

__all__ = [
    "Alert",
    "AlertLog",
    "DEFAULT_SLOS",
    "SloEngine",
    "SloSpec",
    "SloStatus",
    "load_slo_specs",
]


@dataclass(frozen=True)
class SloSpec:
    """One declarative service-level objective.

    ``kind`` selects the data source:

    * ``availability`` -- good/total from ``counter_name`` (default
      ``serve.responses_total``), whose ``code`` label is matched against
      ``error_classes`` (``"5xx"``/``"4xx"`` class patterns or exact
      codes like ``"503"``);
    * ``latency`` -- good/total from ``histogram_name`` (default
      ``serve.request_ms``) bucket counts, where an observation is good
      when it lands at or under ``threshold_ms`` (snapped up to the
      nearest bucket bound, since only bucket edges are observable).

    ``burn_threshold`` is the burn rate both windows must exceed before
    the SLO fires; with the default fast window of 5 minutes a threshold
    of 14.4 pages only when ~5% of a 30-day budget burns in an hour.
    """

    name: str
    objective: float
    kind: str = "availability"
    error_classes: tuple[str, ...] = ("5xx",)
    threshold_ms: float | None = None
    counter_name: str = "serve.responses_total"
    histogram_name: str = "serve.request_ms"
    fast_window_s: float = 300.0
    slow_window_s: float = 3600.0
    burn_threshold: float = 14.4

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"slo {self.name!r}: objective must be in (0, 1), "
                f"got {self.objective}"
            )
        if self.kind not in ("availability", "latency"):
            raise ValueError(
                f"slo {self.name!r}: kind must be 'availability' or "
                f"'latency', got {self.kind!r}"
            )
        if self.kind == "latency" and self.threshold_ms is None:
            raise ValueError(
                f"slo {self.name!r}: latency objectives need threshold_ms"
            )
        if self.fast_window_s <= 0 or self.slow_window_s < self.fast_window_s:
            raise ValueError(
                f"slo {self.name!r}: need 0 < fast_window_s <= slow_window_s"
            )
        if self.burn_threshold <= 0:
            raise ValueError(
                f"slo {self.name!r}: burn_threshold must be positive"
            )

    @property
    def error_budget(self) -> float:
        """The tolerable error fraction: ``1 - objective``."""
        return 1.0 - self.objective

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view of the spec (``GET /alerts``, docs)."""
        payload: dict[str, Any] = {
            "name": self.name,
            "objective": self.objective,
            "kind": self.kind,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "burn_threshold": self.burn_threshold,
        }
        if self.kind == "availability":
            payload["error_classes"] = list(self.error_classes)
        else:
            payload["threshold_ms"] = self.threshold_ms
        return payload


#: Objectives every daemon gets without any ``--slo`` file: five nines of
#: worth of headroom would be fiction for a dev box, so these are
#: deliberately modest -- 99.5% non-5xx availability and a generous
#: latency bound at the top of the bucket ladder's mid-range.
DEFAULT_SLOS: tuple[SloSpec, ...] = (
    SloSpec(name="availability-5xx", objective=0.995, kind="availability"),
    SloSpec(
        name="latency-p99-1s", objective=0.99, kind="latency",
        threshold_ms=1000.0,
    ),
)


def load_slo_specs(path: str) -> tuple[SloSpec, ...]:
    """Parse a ``--slo`` JSON file into specs.

    The file holds ``{"slos": [{...spec fields...}]}``; unknown fields
    raise (a typo'd window name silently falling back to defaults would
    be an alerting bug, the worst kind).
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or not isinstance(payload.get("slos"), list):
        raise ValueError(f"{path}: expected an object with an 'slos' list")
    allowed = {
        "name", "objective", "kind", "error_classes", "threshold_ms",
        "counter_name", "histogram_name", "fast_window_s", "slow_window_s",
        "burn_threshold",
    }
    specs: list[SloSpec] = []
    for index, entry in enumerate(payload["slos"]):
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: slos[{index}] is not an object")
        unknown = set(entry) - allowed
        if unknown:
            raise ValueError(
                f"{path}: slos[{index}] has unknown fields {sorted(unknown)}"
            )
        if "error_classes" in entry:
            entry = dict(entry, error_classes=tuple(entry["error_classes"]))
        specs.append(SloSpec(**entry))
    if not specs:
        raise ValueError(f"{path}: 'slos' list is empty")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"{path}: duplicate slo names in {names}")
    return tuple(specs)


@dataclass(frozen=True)
class SloStatus:
    """One SLO's evaluation at an instant."""

    name: str
    state: str  # "ok" | "firing"
    burn_fast: float
    burn_slow: float
    error_budget: float
    budget_remaining: float  # fraction of budget left over the slow window
    window_total: int  # requests seen in the slow window
    window_errors: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "state": self.state,
            "burn_fast": round(self.burn_fast, 4),
            "burn_slow": round(self.burn_slow, 4),
            "error_budget": round(self.error_budget, 6),
            "budget_remaining": round(self.budget_remaining, 4),
            "window_total": self.window_total,
            "window_errors": self.window_errors,
        }


@dataclass(frozen=True)
class Alert:
    """One state transition of one SLO (firing or resolved)."""

    ts: float
    slo: str
    state: str  # "firing" | "resolved"
    burn_fast: float
    burn_slow: float
    budget_remaining: float
    window_total: int
    window_errors: int
    message: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "ts": round(self.ts, 3),
            "slo": self.slo,
            "state": self.state,
            "burn_fast": round(self.burn_fast, 4),
            "burn_slow": round(self.burn_slow, 4),
            "budget_remaining": round(self.budget_remaining, 4),
            "window_total": self.window_total,
            "window_errors": self.window_errors,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Alert":
        return cls(
            ts=float(payload["ts"]),
            slo=str(payload["slo"]),
            state=str(payload["state"]),
            burn_fast=float(payload.get("burn_fast", 0.0)),
            burn_slow=float(payload.get("burn_slow", 0.0)),
            budget_remaining=float(payload.get("budget_remaining", 1.0)),
            window_total=int(payload.get("window_total", 0)),
            window_errors=int(payload.get("window_errors", 0)),
            message=str(payload.get("message", "")),
        )


class AlertLog:
    """A bounded alert ring: the last ``keep`` records, optionally on disk.

    Appends go to an in-memory deque and (when ``path`` is set) a JSONL
    file.  The file is compacted back to the ring contents whenever the
    appended lines exceed twice ``keep``, so a flapping SLO on a
    long-running daemon cannot grow it without bound.
    """

    def __init__(self, path: str | None = None, keep: int = 256) -> None:
        self.path = path
        self.keep = max(1, keep)
        self._ring: deque[Alert] = deque(maxlen=self.keep)
        self._appended = 0
        self._lock = threading.Lock()
        if path is not None:
            os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)

    def append(self, alert: Alert) -> None:
        """Record one alert, compacting the backing file when oversized.

        File I/O failures are logged and swallowed: the in-memory ring
        (what ``GET /alerts`` serves) already has the alert, and a disk
        blip must not propagate into the collector thread that calls
        this from the SLO engine's tick.
        """
        with self._lock:
            self._ring.append(alert)
            if self.path is None:
                return
            line = json.dumps(alert.to_dict(), sort_keys=True)
            self._appended += 1
            try:
                if self._appended > 2 * self.keep:
                    with open(self.path, "w", encoding="utf-8") as handle:
                        for kept in self._ring:
                            handle.write(
                                json.dumps(kept.to_dict(), sort_keys=True) + "\n"
                            )
                    self._appended = len(self._ring)
                else:
                    with open(self.path, "a", encoding="utf-8") as handle:
                        handle.write(line + "\n")
            except OSError as error:
                _log.warning("alert log write failed: %s", error)

    def recent(self, limit: int | None = None) -> list[Alert]:
        """The newest alerts, oldest first (bounded by ``limit``)."""
        with self._lock:
            alerts = list(self._ring)
        if limit is not None and limit >= 0:
            alerts = alerts[-limit:]
        return alerts


#: Ring-capacity bounds for :class:`_Window`: never smaller than the
#: historical default, never so large that a sub-second cadence against a
#: day-long window eats unbounded memory (samples are 3-tuples, so the
#: cap is ~2 MB per SLO at worst).
_WINDOW_MIN_CAPACITY = 4096
_WINDOW_MAX_CAPACITY = 90_000


def _window_capacity(slow_window_s: float, sample_interval_s: float) -> int:
    """Ring size covering ``slow_window_s`` at ``sample_interval_s`` cadence."""
    needed = int(slow_window_s / max(0.05, sample_interval_s)) + 8
    return min(_WINDOW_MAX_CAPACITY, max(_WINDOW_MIN_CAPACITY, needed))


@dataclass
class _Window:
    """The cumulative-counter snapshot ring backing one SLO."""

    capacity: int = _WINDOW_MIN_CAPACITY
    samples: deque[tuple[float, int, int]] = field(init=False)

    def __post_init__(self) -> None:
        # (ts, total, errors), cumulative
        self.samples = deque(maxlen=max(1, self.capacity))

    def push(self, ts: float, total: int, errors: int) -> None:
        self.samples.append((ts, total, errors))

    def delta(self, now: float, window_s: float) -> tuple[int, int]:
        """``(total, errors)`` accumulated inside the trailing window.

        The baseline is the newest sample at or before ``now - window_s``
        (so a window fully covered by samples uses the true edge), or the
        oldest sample when history is shorter than the window.
        """
        if not self.samples:
            return (0, 0)
        cutoff = now - window_s
        baseline = None
        newest = self.samples[-1]
        for ts, total, errors in self.samples:
            if ts <= cutoff:
                baseline = (ts, total, errors)
            else:
                break
        if baseline is None:
            baseline = self.samples[0]
        return (
            max(0, newest[1] - baseline[1]),
            max(0, newest[2] - baseline[2]),
        )


def _code_matches(code: str, classes: Iterable[str]) -> bool:
    for pattern in classes:
        if pattern.endswith("xx") and len(pattern) == 3:
            if code and code[0] == pattern[0] and len(code) == 3:
                return True
        elif code == pattern:
            return True
    return False


class SloEngine:
    """Samples good/total counters and evaluates burn-rate alerts.

    ``tick()`` -- called from the runtime collector thread on its
    interval -- snapshots the source counters into each SLO's window
    ring, evaluates both windows, and appends an :class:`Alert` on every
    ok->firing / firing->resolved transition.  All math is pure over the
    injected ``clock``, so tests drive it with synthetic time.
    """

    def __init__(
        self,
        specs: Iterable[SloSpec] = DEFAULT_SLOS,
        registry: MetricsRegistry | None = None,
        alert_log: AlertLog | None = None,
        clock: Callable[[], float] = time.time,
        sample_interval_s: float = 5.0,
    ) -> None:
        self.specs = tuple(specs)
        if not self.specs:
            raise ValueError("SloEngine needs at least one SloSpec")
        self._registry = registry
        self.alert_log = alert_log if alert_log is not None else AlertLog()
        self._clock = clock
        # Each ring must hold a full slow window of snapshots at the
        # sampling cadence, else delta() silently falls back to the
        # oldest retained sample and the slow burn rate is computed over
        # a shorter window than declared.
        self._windows: dict[str, _Window] = {}
        for spec in self.specs:
            capacity = _window_capacity(spec.slow_window_s, sample_interval_s)
            if capacity * max(0.05, sample_interval_s) < spec.slow_window_s:
                _log.warning(
                    "slo %s: snapshot ring (%d entries) cannot cover the "
                    "%.0fs slow window at a %.2fs sampling cadence; the "
                    "slow burn rate will span a shorter window",
                    spec.name, capacity, spec.slow_window_s, sample_interval_s,
                )
            self._windows[spec.name] = _Window(capacity)
        self._firing: dict[str, bool] = {spec.name: False for spec in self.specs}
        self._statuses: dict[str, SloStatus] = {}
        self._lock = threading.Lock()

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    # -- counter sources ----------------------------------------------------------

    def _availability_counts(self, spec: SloSpec) -> tuple[int, int]:
        """Cumulative ``(total, errors)`` from the status-code counter."""
        total = 0
        errors = 0
        counters, _, _ = self.registry.instruments()
        for instrument in counters:
            if instrument.base_name != spec.counter_name:
                continue
            value = instrument.value
            total += value
            if _code_matches(str(instrument.labels.get("code", "")), spec.error_classes):
                errors += value
        return total, errors

    def _latency_counts(self, spec: SloSpec) -> tuple[int, int]:
        """Cumulative ``(total, over-threshold)`` from the latency histogram.

        "Good" snaps the threshold up to the nearest bucket bound --
        bucket edges are the only observable cut points.
        """
        assert spec.threshold_ms is not None
        total = 0
        good = 0
        _, _, histograms = self.registry.instruments()
        for instrument in histograms:
            if instrument.base_name != spec.histogram_name:
                continue
            pairs = instrument.cumulative_buckets()
            total += pairs[-1][1]
            for bound, cumulative in pairs:
                if bound >= spec.threshold_ms:
                    good += cumulative
                    break
        return total, total - good

    def _counts(self, spec: SloSpec) -> tuple[int, int]:
        if spec.kind == "availability":
            return self._availability_counts(spec)
        return self._latency_counts(spec)

    # -- sampling and evaluation --------------------------------------------------

    def sample(self, now: float | None = None) -> None:
        """Snapshot every SLO's cumulative counters into its window ring."""
        ts = self._clock() if now is None else now
        with self._lock:
            for spec in self.specs:
                total, errors = self._counts(spec)
                self._windows[spec.name].push(ts, total, errors)

    @staticmethod
    def _burn(total: int, errors: int, budget: float) -> float:
        if total <= 0:
            return 0.0
        return (errors / total) / budget

    def evaluate(self, now: float | None = None) -> list[SloStatus]:
        """Burn rates per SLO, recording alert transitions as they happen."""
        ts = self._clock() if now is None else now
        statuses: list[SloStatus] = []
        transitions: list[Alert] = []
        with self._lock:
            for spec in self.specs:
                window = self._windows[spec.name]
                fast_total, fast_errors = window.delta(ts, spec.fast_window_s)
                slow_total, slow_errors = window.delta(ts, spec.slow_window_s)
                burn_fast = self._burn(fast_total, fast_errors, spec.error_budget)
                burn_slow = self._burn(slow_total, slow_errors, spec.error_budget)
                firing = (
                    burn_fast > spec.burn_threshold
                    and burn_slow > spec.burn_threshold
                )
                budget_remaining = max(0.0, 1.0 - burn_slow)
                status = SloStatus(
                    name=spec.name,
                    state="firing" if firing else "ok",
                    burn_fast=burn_fast,
                    burn_slow=burn_slow,
                    error_budget=spec.error_budget,
                    budget_remaining=budget_remaining,
                    window_total=slow_total,
                    window_errors=slow_errors,
                )
                statuses.append(status)
                self._statuses[spec.name] = status
                was_firing = self._firing[spec.name]
                if firing != was_firing:
                    self._firing[spec.name] = firing
                    verb = "firing" if firing else "resolved"
                    transitions.append(Alert(
                        ts=ts,
                        slo=spec.name,
                        state=verb,
                        burn_fast=burn_fast,
                        burn_slow=burn_slow,
                        budget_remaining=budget_remaining,
                        window_total=slow_total,
                        window_errors=slow_errors,
                        message=(
                            f"{spec.name} {verb}: burn fast={burn_fast:.2f} "
                            f"slow={burn_slow:.2f} (threshold "
                            f"{spec.burn_threshold:g}, budget "
                            f"{spec.error_budget:g})"
                        ),
                    ))
        for alert in transitions:
            self.alert_log.append(alert)
        return statuses

    def tick(self, now: float | None = None) -> list[SloStatus]:
        """One collector-cadence step: sample then evaluate."""
        ts = self._clock() if now is None else now
        self.sample(ts)
        return self.evaluate(ts)

    # -- reporting ----------------------------------------------------------------

    def statuses(self) -> list[SloStatus]:
        """The most recent evaluation per SLO (spec order; empty before any)."""
        with self._lock:
            return [
                self._statuses[spec.name]
                for spec in self.specs
                if spec.name in self._statuses
            ]

    def to_dict(self) -> dict[str, Any]:
        """The ``GET /alerts`` payload: specs, live statuses, recent alerts."""
        return {
            "slos": [spec.to_dict() for spec in self.specs],
            "statuses": [status.to_dict() for status in self.statuses()],
            "alerts": [alert.to_dict() for alert in self.alert_log.recent()],
        }
