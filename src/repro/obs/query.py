"""Offline telemetry queries over the serve daemon's on-disk artifacts.

``upcc serve`` leaves three JSON-lines trails behind: the access log
(``--access-log``, plus rotated ``.1 .. .N`` generations), the
slow-request capture directory (``--slow-dir``, one span-tree JSONL per
capture), and the SLO alert ring (``--alert-log``).  This module is the
read side: filter any of them by trace id, request id, status code (or a
``4xx``/``5xx`` class), and time window -- the ``upcc obs query``
subcommand, so chasing "what happened to trace X?" works after the
daemon is gone, with nothing but the files.

All readers are tolerant: malformed lines are skipped (and counted),
missing files yield empty results rather than raising, and rotated
access-log generations are read oldest-first so output stays in
chronological order.
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "access_log_paths",
    "parse_when",
    "query_access_log",
    "query_alerts",
    "query_slow_captures",
    "read_jsonl",
    "status_matches",
    "main",
]


def parse_when(text: str | None) -> float | None:
    """A CLI time bound: unix seconds or ISO-8601; ``None`` passes through.

    Naive ISO timestamps are taken as UTC -- the access log's ``ts`` is
    ``time.time()``, so bounds must live on the same clock.
    """
    if text is None:
        return None
    try:
        return float(text)
    except ValueError:
        pass
    try:
        moment = datetime.fromisoformat(text)
    except ValueError:
        raise ValueError(
            f"not a unix timestamp or ISO-8601 instant: {text!r}"
        ) from None
    if moment.tzinfo is None:
        moment = moment.replace(tzinfo=timezone.utc)
    return moment.timestamp()


def status_matches(status: Any, pattern: str) -> bool:
    """True when ``status`` matches ``pattern`` (exact code or ``4xx``/``5xx``)."""
    code = str(status)
    if pattern.endswith("xx") and len(pattern) == 3:
        return len(code) == 3 and code[0] == pattern[0]
    return code == pattern


def read_jsonl(path: str | Path) -> Iterator[dict[str, Any]]:
    """Parsed objects from a JSON-lines file; malformed lines are skipped."""
    path = Path(path)
    try:
        handle = path.open("r", encoding="utf-8")
    except OSError:
        return
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record


def access_log_paths(path: str | Path) -> list[Path]:
    """The live access log plus rotated generations, oldest first.

    Rotation shifts ``name -> name.1 -> name.2``, so chronological order
    is highest generation first, live file last.
    """
    path = Path(path)
    generations = []
    for candidate in path.parent.glob(f"{path.name}.*"):
        suffix = candidate.name[len(path.name) + 1:]
        if suffix.isdigit():
            generations.append((int(suffix), candidate))
    ordered = [p for _n, p in sorted(generations, reverse=True)]
    if path.exists():
        ordered.append(path)
    return ordered


def _record_matches(
    record: dict[str, Any],
    *,
    trace_id: str | None,
    request_id: str | None,
    status: str | None,
    since: float | None,
    until: float | None,
    ts_key: str = "ts",
) -> bool:
    if trace_id is not None and record.get("trace_id") != trace_id:
        return False
    if request_id is not None and record.get("request_id") != request_id:
        return False
    if status is not None and not status_matches(record.get("status", ""), status):
        return False
    ts = record.get(ts_key)
    if since is not None and (not isinstance(ts, (int, float)) or ts < since):
        return False
    if until is not None and (not isinstance(ts, (int, float)) or ts > until):
        return False
    return True


def query_access_log(
    path: str | Path,
    *,
    trace_id: str | None = None,
    request_id: str | None = None,
    status: str | None = None,
    since: float | None = None,
    until: float | None = None,
    limit: int | None = None,
) -> list[dict[str, Any]]:
    """Matching access-log records (rotated generations included), in order."""
    matches: list[dict[str, Any]] = []
    for file_path in access_log_paths(path):
        for record in read_jsonl(file_path):
            if _record_matches(
                record, trace_id=trace_id, request_id=request_id,
                status=status, since=since, until=until,
            ):
                matches.append(record)
    return matches[-limit:] if limit else matches


def query_slow_captures(
    directory: str | Path,
    *,
    trace_id: str | None = None,
    request_id: str | None = None,
    status: str | None = None,
    since: float | None = None,
    until: float | None = None,
    limit: int | None = None,
) -> list[dict[str, Any]]:
    """Summaries of captured slow requests matching the filters.

    Each ``slow-*.jsonl`` span-tree file yields one summary built from
    its root span: request id (from the filename), trace id and endpoint
    (root attributes), status, duration, span count, and the file name
    for drill-down with ``upcc trace``.
    """
    directory = Path(directory)
    summaries: list[dict[str, Any]] = []
    for file_path in sorted(directory.glob("slow-*.jsonl")):
        spans = list(read_jsonl(file_path))
        roots = [s for s in spans if s.get("parent_id") is None]
        if not roots:
            continue
        root = roots[0]
        attributes = root.get("attributes", {})
        # slow-<seq>-<request id>.jsonl
        parts = file_path.stem.split("-", 2)
        summary = {
            "request_id": parts[2] if len(parts) == 3 else "",
            "trace_id": attributes.get("trace_id", ""),
            "endpoint": attributes.get("endpoint", ""),
            "status": attributes.get("status"),
            "duration_ms": root.get("duration_ms"),
            "spans": len(spans),
            # Spans carry durations, not wall-clock instants; the file's
            # mtime is the capture moment and serves as the record ts.
            "ts": round(file_path.stat().st_mtime, 3),
            "jsonl": file_path.name,
        }
        if _record_matches(
            summary, trace_id=trace_id or None, request_id=request_id,
            status=status, since=since, until=until,
        ):
            summaries.append(summary)
    return summaries[-limit:] if limit else summaries


def query_alerts(
    path: str | Path,
    *,
    slo: str | None = None,
    state: str | None = None,
    since: float | None = None,
    until: float | None = None,
    limit: int | None = None,
) -> list[dict[str, Any]]:
    """Matching alert-ring records (``--alert-log`` JSONL), in order."""
    matches: list[dict[str, Any]] = []
    for record in read_jsonl(path):
        if slo is not None and record.get("slo") != slo:
            continue
        if state is not None and record.get("state") != state:
            continue
        ts = record.get("ts")
        if since is not None and (not isinstance(ts, (int, float)) or ts < since):
            continue
        if until is not None and (not isinstance(ts, (int, float)) or ts > until):
            continue
        matches.append(record)
    return matches[-limit:] if limit else matches


def main(argv: list[str] | None = None) -> int:
    """CLI: ``upcc obs query`` -- filter serve telemetry files offline."""
    parser = argparse.ArgumentParser(
        prog="upcc obs query",
        description="filter serve access logs, slow captures, and alert "
        "rings by trace id, request id, status, or time window",
    )
    parser.add_argument("--access-log", metavar="FILE", help="access log JSONL (rotated generations are included)")
    parser.add_argument("--slow-dir", metavar="DIR", help="slow-request capture directory")
    parser.add_argument("--alerts", metavar="FILE", help="SLO alert ring JSONL")
    parser.add_argument("--trace-id", help="exact 32-hex W3C trace id")
    parser.add_argument("--request-id", help="exact request id")
    parser.add_argument("--status", help="exact status code (e.g. 503) or class (4xx, 5xx)")
    parser.add_argument("--slo", help="alert filter: SLO name")
    parser.add_argument("--state", choices=["firing", "resolved"], help="alert filter: state")
    parser.add_argument("--since", metavar="WHEN", help="lower time bound (unix seconds or ISO-8601, UTC)")
    parser.add_argument("--until", metavar="WHEN", help="upper time bound (unix seconds or ISO-8601, UTC)")
    parser.add_argument("--limit", type=int, default=0, metavar="N", help="keep only the newest N matches per source")
    parser.add_argument("--json", action="store_true", help="emit one JSON document instead of JSON lines")
    args = parser.parse_args(argv)

    if not (args.access_log or args.slow_dir or args.alerts):
        print(
            "error: nothing to query -- pass --access-log, --slow-dir, "
            "and/or --alerts",
            file=sys.stderr,
        )
        return 2
    try:
        since = parse_when(args.since)
        until = parse_when(args.until)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    limit = args.limit or None
    results: dict[str, list[dict[str, Any]]] = {}
    if args.access_log:
        results["access"] = query_access_log(
            args.access_log, trace_id=args.trace_id, request_id=args.request_id,
            status=args.status, since=since, until=until, limit=limit,
        )
    if args.slow_dir:
        results["slow"] = query_slow_captures(
            args.slow_dir, trace_id=args.trace_id, request_id=args.request_id,
            status=args.status, since=since, until=until, limit=limit,
        )
    if args.alerts:
        results["alerts"] = query_alerts(
            args.alerts, slo=args.slo, state=args.state,
            since=since, until=until, limit=limit,
        )

    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True))
    else:
        for source, records in results.items():
            for record in records:
                print(json.dumps({"source": source, **record}, sort_keys=True))
    total = sum(len(records) for records in results.values())
    print(
        f"{total} match(es) across {len(results)} source(s)", file=sys.stderr
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
