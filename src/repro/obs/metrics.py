"""A process-wide metrics registry: counters, gauges and histogram timers.

Instruments are created lazily and keyed by ``name`` plus sorted labels
(``validation.rule_ms{rule=UPCC-P01}``), so instrumented code never has to
pre-register anything::

    from repro.obs.metrics import counter, histogram

    counter("xsdgen.schemas_generated").inc()
    with histogram("validation.rule_ms", rule=code).time():
        run_rule()

Every instrument carries its *own* lock, so two counters incremented from
different serve worker threads never contend with each other; the
registry lock is only taken on first-creation and while snapshotting.
Histograms additionally bucket every observation into a fixed log-scale
latency ladder (:data:`DEFAULT_BUCKETS`, milliseconds), from which
``to_dict()`` derives p50/p90/p99 estimates and
:meth:`MetricsRegistry.render_prometheus` builds a cumulative
``_bucket{le=...}`` exposition (see :mod:`repro.obs.export`).

The registry is thread-safe, always on (increments are two dict lookups
and an integer add -- cheap enough to leave enabled permanently), and
exposes :meth:`MetricsRegistry.snapshot` / ``render_text`` /
``render_json`` / ``render_prometheus`` for reporting.  Snapshots are
deterministic: keys are sorted, histogram aggregates are rounded.
Registering the same name as two different instrument kinds raises
instead of silently shadowing one with the other.
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Iterator

#: Fixed log-scale latency bucket upper bounds, in milliseconds.  A
#: 1-2.5-5 ladder from 50 microseconds to 10 seconds: wide enough for
#: everything from a warm cache hit to a cold 200-document validate, and
#: fixed so two processes' bucket counts can be merged sample by sample.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

#: Characters that would make ``name{key=value,...}`` keys ambiguous if
#: they appeared raw inside a label value.
_LABEL_ESCAPES = {
    "\\": "\\\\",
    "=": "\\=",
    ",": "\\,",
    "{": "\\{",
    "}": "\\}",
    "\n": "\\n",
    "\r": "\\r",
}
_LABEL_ESCAPE_TABLE = str.maketrans(_LABEL_ESCAPES)
_LABEL_SPECIALS = tuple(_LABEL_ESCAPES)


def escape_label_value(value: Any) -> str:
    """``value`` as a string with key-structural characters backslash-escaped.

    ``=``, ``,``, ``{``, ``}``, newlines and the backslash itself would
    make ``name{key=value}`` keys ambiguous (two different label sets
    could collide on one key, corrupting both series); escaping keeps the
    key unambiguous *and* reversible.
    """
    text = str(value)
    for special in _LABEL_SPECIALS:
        if special in text:
            return text.translate(_LABEL_ESCAPE_TABLE)
    return text


#: Human-readable descriptions keyed by *base* metric name (the dotted
#: name, without labels).  Process-wide rather than per-registry because a
#: description explains what a metric name *means* — that meaning does not
#: change when tests swap in a fresh registry.  Rendered as ``# HELP``
#: lines by :mod:`repro.obs.export`.
_DESCRIPTIONS: dict[str, str] = {}


def describe(name: str, text: str) -> None:
    """Attach a human-readable description to metric ``name``.

    Modules that own a metric call this once at import time; the
    Prometheus exposition then emits the text as the family's ``# HELP``
    line instead of the generic fallback.
    """
    _DESCRIPTIONS[name] = text


def description_of(name: str) -> str | None:
    """The registered description for ``name``, or ``None``."""
    return _DESCRIPTIONS.get(name)


def _metric_key(name: str, labels: dict[str, Any]) -> str:
    if not labels:
        return name
    if len(labels) == 1:
        [(key, value)] = labels.items()
        return f"{name}{{{key}={escape_label_value(value)}}}"
    rendered = ",".join(
        f"{key}={escape_label_value(labels[key])}" for key in sorted(labels)
    )
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "base_name", "labels", "value", "_lock")

    def __init__(self, name: str, base_name: str | None = None,
                 labels: dict[str, Any] | None = None) -> None:
        self.name = name
        self.base_name = base_name if base_name is not None else name
        self.labels = dict(labels or {})
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1)."""
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, memo size, ...)."""

    __slots__ = ("name", "base_name", "labels", "value", "_lock")

    def __init__(self, name: str, base_name: str | None = None,
                 labels: dict[str, Any] | None = None) -> None:
        self.name = name
        self.base_name = base_name if base_name is not None else name
        self.labels = dict(labels or {})
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Overwrite the current value."""
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1)."""
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` (default 1)."""
        self.inc(-amount)


class Exemplar:
    """One traced observation pinned to a histogram bucket.

    Links an aggregate bucket count back to a concrete request: the
    OpenMetrics exposition renders it after the ``_bucket`` sample as
    ``# {trace_id="...",request_id="..."} value timestamp`` so a scrape
    of a p99 bucket names a trace that can be looked up in ``/slow``.
    """

    __slots__ = ("trace_id", "request_id", "value", "ts")

    def __init__(self, trace_id: str, request_id: str, value: float,
                 ts: float | None = None) -> None:
        self.trace_id = trace_id
        self.request_id = request_id
        self.value = value
        self.ts = time.time() if ts is None else ts

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (``/slow`` lookups, telemetry queries)."""
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "value": round(self.value, 6),
            "ts": round(self.ts, 6),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Exemplar(trace_id={self.trace_id!r}, "
            f"request_id={self.request_id!r}, value={self.value!r})"
        )


class Histogram:
    """Aggregates observations into count/sum/min/max plus log-scale buckets.

    Observations (milliseconds for timers) land in the fixed
    :data:`DEFAULT_BUCKETS` ladder; the final slot counts everything above
    the last bound (the ``+Inf`` bucket of the Prometheus exposition).
    Quantiles are estimated by linear interpolation inside the target
    bucket, clamped to the observed min/max so a single observation
    reports itself exactly.

    Buckets optionally carry an :class:`Exemplar`: when ``observe`` is
    handed one, the target bucket keeps the *most recent* traced
    observation, giving every populated latency bucket a concrete
    trace/request to chase.
    """

    __slots__ = (
        "name", "base_name", "labels", "count", "total", "min", "max",
        "bucket_counts", "exemplars", "_lock",
    )

    #: Upper bounds shared by every histogram (fixed => mergeable).
    buckets: tuple[float, ...] = DEFAULT_BUCKETS

    def __init__(self, name: str, base_name: str | None = None,
                 labels: dict[str, Any] | None = None) -> None:
        self.name = name
        self.base_name = base_name if base_name is not None else name
        self.labels = dict(labels or {})
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        #: Per-bucket (non-cumulative) observation counts; the extra
        #: trailing slot is the overflow (+Inf) bucket.
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        #: Most recent traced observation per bucket (None when untraced).
        self.exemplars: list[Exemplar | None] = [None] * (len(self.buckets) + 1)
        self._lock = threading.Lock()

    def observe(self, value: float, exemplar: Exemplar | None = None) -> None:
        """Record one observation, optionally pinning an exemplar to its bucket."""
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            index = bisect_left(self.buckets, value)
            self.bucket_counts[index] += 1
            if exemplar is not None:
                self.exemplars[index] = exemplar

    def bucket_exemplars(self) -> list[tuple[float, "Exemplar | None"]]:
        """``(upper bound, exemplar-or-None)`` per bucket, ending with ``+Inf``.

        Index-aligned with :meth:`cumulative_buckets`, so renderers can
        zip the two without re-deriving bucket edges.
        """
        with self._lock:
            snapshot = list(self.exemplars)
        bounds = list(self.buckets) + [float("inf")]
        return list(zip(bounds, snapshot))

    @contextmanager
    def time(self) -> Iterator[None]:
        """Time the enclosed block and observe its wall time in ms."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe((time.perf_counter() - start) * 1000.0)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper bound, cumulative count)`` pairs ending with ``(inf, count)``.

        This is exactly the Prometheus ``_bucket{le=...}`` series shape:
        each count includes every smaller bucket, and the final ``inf``
        entry equals the total observation count.
        """
        with self._lock:
            counts = list(self.bucket_counts)
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.buckets, counts):
            running += bucket_count
            pairs.append((bound, running))
        pairs.append((float("inf"), running + counts[-1]))
        return pairs

    def quantile(self, q: float) -> float:
        """Estimated q-th percentile (q in 0..100) from the bucket counts.

        Linear interpolation inside the bucket containing the target
        rank, clamped to the observed min/max.  0.0 when empty.
        """
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if not self.count:
            return 0.0
        assert self.min is not None and self.max is not None
        target = max(1e-12, q / 100.0) * self.count
        cumulative = 0
        lower = 0.0
        for index, bucket_count in enumerate(self.bucket_counts):
            upper = (
                self.buckets[index] if index < len(self.buckets) else self.max
            )
            if bucket_count and cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
            lower = upper
        return self.max

    def to_dict(self) -> dict[str, float | int]:
        """Deterministic aggregate view of the distribution.

        Includes the bucket-derived p50/p90/p99 estimates so ``/stats``
        and ``--metrics-out`` consumers see tails, not just the mean.
        """
        with self._lock:
            return {
                "count": self.count,
                "sum": round(self.total, 3),
                "min": round(self.min, 3) if self.min is not None else 0.0,
                "max": round(self.max, 3) if self.max is not None else 0.0,
                "mean": round(self.mean, 3),
                "p50": round(self._quantile_locked(50.0), 3),
                "p90": round(self._quantile_locked(90.0), 3),
                "p99": round(self._quantile_locked(99.0), 3),
            }


class MetricsRegistry:
    """Lazily creates and holds every instrument, keyed by name+labels.

    The registry lock guards only instrument creation and snapshotting;
    each instrument synchronizes its own updates, so increments on
    different instruments never serialize against each other.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument accessors -----------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for ``name`` + labels, created on first use."""
        key = _metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                self._check_kind(key, "counter", self._counters)
                instrument = self._counters.setdefault(
                    key, Counter(key, name, labels)
                )
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for ``name`` + labels, created on first use."""
        key = _metric_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                self._check_kind(key, "gauge", self._gauges)
                instrument = self._gauges.setdefault(key, Gauge(key, name, labels))
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram for ``name`` + labels, created on first use."""
        key = _metric_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                self._check_kind(key, "histogram", self._histograms)
                instrument = self._histograms.setdefault(
                    key, Histogram(key, name, labels)
                )
        return instrument

    def _check_kind(self, key: str, kind: str, own: dict[str, Any]) -> None:
        """Reject a key already registered as a *different* instrument kind.

        Without this, a counter and a gauge sharing one name would
        silently shadow each other in :meth:`snapshot` (the later
        ``merged.update`` wins and the other kind's data disappears).
        Called with the registry lock held, just before creation.
        """
        for other_kind, instruments in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if instruments is not own and key in instruments:
                raise ValueError(
                    f"metric {key!r} is already registered as a {other_kind}; "
                    f"it cannot also be a {kind} (one name, one kind)"
                )

    # -- reporting ----------------------------------------------------------------

    def instruments(self) -> tuple[list[Counter], list[Gauge], list[Histogram]]:
        """Stable copies of the instrument lists (for exposition renderers)."""
        with self._lock:
            return (
                list(self._counters.values()),
                list(self._gauges.values()),
                list(self._histograms.values()),
            )

    def snapshot(self) -> dict[str, Any]:
        """All instruments as one sorted, JSON-ready mapping.

        Counters map to ints, gauges to floats, histograms to their
        aggregate dicts.  Calling twice without interleaved updates yields
        an identical object.  A key registered under two instrument kinds
        raises (the creation path already forbids it; this backstops
        registries assembled by hand).
        """
        counters, gauges, histograms = self.instruments()
        merged: dict[str, Any] = {c.name: c.value for c in counters}
        for gauge_ in gauges:
            if gauge_.name in merged:
                raise ValueError(
                    f"metric {gauge_.name!r} is registered as both a counter "
                    f"and a gauge; refusing to shadow one with the other"
                )
            merged[gauge_.name] = gauge_.value
        for histogram_ in histograms:
            if histogram_.name in merged:
                raise ValueError(
                    f"metric {histogram_.name!r} is registered as both a "
                    f"histogram and a counter/gauge; refusing to shadow one "
                    f"with the other"
                )
            merged[histogram_.name] = histogram_.to_dict()
        return {key: merged[key] for key in sorted(merged)}

    def render_text(self) -> str:
        """The snapshot as aligned ``name value`` lines for terminals."""
        snapshot = self.snapshot()
        if not snapshot:
            return "(no metrics recorded)"
        width = max(len(key) for key in snapshot)
        lines = []
        for key, value in snapshot.items():
            if isinstance(value, dict):
                rendered = (
                    f"count={value['count']} sum={value['sum']}ms "
                    f"min={value['min']}ms max={value['max']}ms "
                    f"mean={value['mean']}ms p50={value['p50']}ms "
                    f"p90={value['p90']}ms p99={value['p99']}ms"
                )
            else:
                rendered = str(value)
            lines.append(f"{key.ljust(width)}  {rendered}")
        return "\n".join(lines)

    def render_json(self, indent: int | None = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_prometheus(self, *, openmetrics: bool = False) -> str:
        """The registry in Prometheus text exposition format.

        HELP/TYPE lines per family, cumulative ``_bucket{le=...}`` series
        plus ``_sum``/``_count`` for histograms, label values escaped per
        the format spec.  ``openmetrics=True`` selects the OpenMetrics
        variant (exemplars, ``# EOF``).  See
        :func:`repro.obs.export.render_prometheus`.
        """
        from repro.obs.export import render_prometheus

        return render_prometheus(self, openmetrics=openmetrics)

    def reset(self) -> None:
        """Drop every instrument (tests and fresh CLI runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-global registry used by all pipeline instrumentation.
_global_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _global_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-global registry; returns the previous one."""
    global _global_registry
    previous = _global_registry
    _global_registry = registry
    return previous


def counter(name: str, **labels: Any) -> Counter:
    """Shortcut: a counter on the global registry."""
    return _global_registry.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    """Shortcut: a gauge on the global registry."""
    return _global_registry.gauge(name, **labels)


def histogram(name: str, **labels: Any) -> Histogram:
    """Shortcut: a histogram on the global registry."""
    return _global_registry.histogram(name, **labels)
